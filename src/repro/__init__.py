"""StreamWorks reproduction: continuous subgraph matching over dynamic graphs.

This package reproduces the system described in "StreamWorks: A System for
Dynamic Graph Search" (Choudhury et al., SIGMOD 2013): users register graph
queries against a stream of timestamped, typed edges and are notified the
moment a matching subgraph emerges, via an incremental matching algorithm
built around the SJ-Tree query-decomposition data structure.

High-level entry points
-----------------------
:class:`repro.core.engine.StreamWorksEngine`
    Register continuous queries, feed edges, receive match events.
:class:`repro.core.sharded.ShardedStreamEngine`
    The same contract with queries partitioned across N shards (serial or
    multiprocessing), emitting the identical event stream.
:class:`repro.query.builder.QueryBuilder` / :func:`repro.query.parser.parse_query`
    Construct query graphs programmatically or from text.
:mod:`repro.workloads`
    Synthetic cyber / news / social stream generators used by the examples,
    tests and benchmarks.
"""

from .graph import DynamicGraph, Edge, PropertyGraph, TimeWindow, Vertex
from .isomorphism import Match, SubgraphMatcher
from .query import QueryBuilder, QueryGraph, parse_query

__version__ = "1.0.0"

__all__ = [
    "DynamicGraph",
    "Edge",
    "Match",
    "PropertyGraph",
    "QueryBuilder",
    "QueryGraph",
    "SubgraphMatcher",
    "TimeWindow",
    "Vertex",
    "parse_query",
    "__version__",
]
