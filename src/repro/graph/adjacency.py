"""Adjacency indexes for label-aware neighbourhood lookups.

StreamWorks performs a *local search* around every incoming edge (paper
section 4.1): given a new edge, the engine looks for nearby edges whose type
matches the next query edge of a search primitive.  To keep that lookup
proportional to the size of the local neighbourhood -- and never a scan of the
whole graph -- the graph store maintains an :class:`AdjacencyIndex` keyed by
``(vertex, direction, edge label)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .types import Direction, Edge, EdgeId, Timestamp, VertexId

__all__ = ["AdjacencyIndex", "EdgeTimeRuns"]


class EdgeTimeRuns:
    """Sorted-array timestamp sidecar over one insertion-ordered edge bucket.

    Parallel ``times`` / ``ids`` arrays mirror a bucket's insertion order, so
    while the times are non-decreasing (the overwhelmingly common case -- the
    engine's batched fast path ingests non-decreasing runs) a timestamp range
    resolves to one contiguous slice via binary search, *in insertion order*.
    The moment an out-of-order append lands, :attr:`is_sorted` trips and
    range queries return ``None`` -- the caller falls back to the plain
    linear enumeration, which is always correct -- until a compaction finds
    the surviving entries sorted again.  Removals are lazy (a dead counter;
    liveness is re-checked against the owning bucket at query time) with
    periodic compaction so the arrays track the live bucket's size.
    """

    __slots__ = ("times", "ids", "is_sorted", "dead")

    def __init__(self) -> None:
        self.times: List[Timestamp] = []
        self.ids: List[EdgeId] = []
        self.is_sorted = True
        self.dead = 0

    @classmethod
    def from_bucket(
        cls, bucket: Iterable[EdgeId], resolve_ts: Callable[[EdgeId], Timestamp]
    ) -> "EdgeTimeRuns":
        """Build a sidecar from an existing bucket (lazy first-query path)."""
        runs = cls()
        for edge_id in bucket:
            runs.append(edge_id, resolve_ts(edge_id))
        return runs

    def append(self, edge_id: EdgeId, timestamp: Timestamp) -> None:
        """Mirror a bucket insertion."""
        if self.times and timestamp < self.times[-1]:
            self.is_sorted = False
        self.times.append(timestamp)
        self.ids.append(edge_id)

    def discard(self, live: Iterable[EdgeId]) -> None:
        """Mirror a bucket removal; ``live`` is the bucket's surviving ids."""
        self.dead += 1
        if self.dead * 2 > len(self.ids):
            self.compact(live)

    def compact(self, live: Iterable[EdgeId]) -> None:
        """Drop dead entries (and re-detect sortedness of the survivors)."""
        live_set = live if isinstance(live, (dict, set, frozenset)) else set(live)
        pairs = [
            (timestamp, edge_id)
            for timestamp, edge_id in zip(self.times, self.ids)
            if edge_id in live_set
        ]
        self.times = [timestamp for timestamp, _ in pairs]
        self.ids = [edge_id for _, edge_id in pairs]
        self.dead = 0
        self.is_sorted = all(
            earlier <= later for earlier, later in zip(self.times, self.times[1:])
        )

    def range_ids(self, low: Timestamp, high: Timestamp) -> Optional[List[EdgeId]]:
        """Ids with ``low <= ts <= high`` in insertion order; ``None`` = unsorted.

        May include ids already removed from the bucket -- callers filter by
        bucket membership.  Inclusive on both bounds (callers use this as a
        superset prefilter ahead of an exact span check).
        """
        if not self.is_sorted:
            return None
        start = bisect_left(self.times, low)
        stop = bisect_right(self.times, high)
        return self.ids[start:stop]


class AdjacencyIndex:
    """Index of incident edge ids per vertex, direction and edge label.

    The index stores only edge identifiers; the caller resolves them through
    the owning graph.  Removal is supported so that the sliding-window store
    can evict expired edges.

    Edge ids are held in insertion-ordered dictionaries (used as ordered
    sets), so incident edges always enumerate in ingest order.  This is a
    correctness property, not a nicety: the sharded engine compares and
    merges matches across engines whose edge ids differ (each shard numbers
    its own ingest stream), and hash-ordered ``set`` iteration would make
    the enumeration order -- and therefore the emitted event order -- depend
    on the numeric ids rather than on the stream.
    """

    def __init__(self) -> None:
        # vertex -> direction -> label -> ordered set (dict) of edge ids
        self._by_vertex: Dict[VertexId, Dict[str, Dict[str, Dict[EdgeId, None]]]] = {}
        # vertex -> total incident edge count (in + out, self loops count twice)
        self._degree: Dict[VertexId, int] = defaultdict(int)
        # lazily-built timestamp sidecars for range-scanned slots, keyed
        # vertex -> (direction, label); a sidecar only exists for slots the
        # columnar hot path has actually range-queried, so the common ingest
        # path pays at most one empty-dict probe per endpoint
        self._times: Dict[VertexId, Dict[Tuple[str, str], EdgeTimeRuns]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, edge: Edge) -> None:
        """Register ``edge`` under both of its endpoints."""
        self._slot(edge.source, Direction.OUT, edge.label)[edge.id] = None
        self._slot(edge.target, Direction.IN, edge.label)[edge.id] = None
        self._degree[edge.source] += 1
        self._degree[edge.target] += 1
        if self._times:
            self._times_append(edge.source, Direction.OUT, edge)
            self._times_append(edge.target, Direction.IN, edge)

    def remove_edge(self, edge: Edge) -> None:
        """Remove ``edge`` from the index; missing entries are ignored."""
        self._discard(edge.source, Direction.OUT, edge.label, edge.id)
        self._discard(edge.target, Direction.IN, edge.label, edge.id)
        for endpoint in (edge.source, edge.target):
            if endpoint in self._degree:
                self._degree[endpoint] -= 1
                if self._degree[endpoint] <= 0:
                    del self._degree[endpoint]
        if self._times:
            self._times_discard(edge.source, Direction.OUT, edge.label)
            self._times_discard(edge.target, Direction.IN, edge.label)

    def remove_vertex(self, vertex_id: VertexId) -> None:
        """Drop all index entries rooted at ``vertex_id``.

        The caller is responsible for removing the corresponding entries from
        the opposite endpoints (normally by removing the edges first).
        """
        self._by_vertex.pop(vertex_id, None)
        self._degree.pop(vertex_id, None)
        self._times.pop(vertex_id, None)

    def clear(self) -> None:
        """Remove every entry from the index."""
        self._by_vertex.clear()
        self._degree.clear()
        self._times.clear()

    def _times_append(self, vertex_id: VertexId, direction: str, edge: Edge) -> None:
        per_slot = self._times.get(vertex_id)
        if per_slot is None:
            return
        runs = per_slot.get((direction, edge.label))
        if runs is not None:
            runs.append(edge.id, edge.timestamp)

    def _times_discard(self, vertex_id: VertexId, direction: str, label: str) -> None:
        per_slot = self._times.get(vertex_id)
        if per_slot is None:
            return
        runs = per_slot.get((direction, label))
        if runs is None:
            return
        bucket = self._bucket(vertex_id, direction, label)
        if bucket is None:
            # the slot emptied out entirely; the sidecar dies with it (a
            # recreated slot gets a fresh lazy build on its next range query)
            del per_slot[(direction, label)]
            if not per_slot:
                del self._times[vertex_id]
        else:
            runs.discard(bucket)

    def _bucket(
        self, vertex_id: VertexId, direction: str, label: str
    ) -> Optional[Dict[EdgeId, None]]:
        per_direction = self._by_vertex.get(vertex_id)
        if not per_direction:
            return None
        per_label = per_direction.get(direction)
        if not per_label:
            return None
        return per_label.get(label)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def incident_edge_ids(
        self,
        vertex_id: VertexId,
        direction: str = Direction.BOTH,
        label: Optional[str] = None,
    ) -> Iterator[EdgeId]:
        """Yield ids of edges incident to ``vertex_id``.

        Parameters
        ----------
        vertex_id:
            The anchor vertex.
        direction:
            ``Direction.OUT`` for edges leaving the vertex, ``Direction.IN``
            for edges entering it, ``Direction.BOTH`` for either.
        label:
            When given, only edges with this label are returned.
        """
        per_direction = self._by_vertex.get(vertex_id)
        if not per_direction:
            return
        if direction == Direction.BOTH:
            directions: Tuple[str, ...] = (Direction.OUT, Direction.IN)
        else:
            directions = (direction,)
        for d in directions:
            per_label = per_direction.get(d)
            if not per_label:
                continue
            if label is None:
                for edge_ids in per_label.values():
                    yield from edge_ids
            else:
                yield from per_label.get(label, ())

    def incident_ids_in_range(
        self,
        vertex_id: VertexId,
        direction: str,
        label: str,
        low: Timestamp,
        high: Timestamp,
        resolve_ts: Callable[[EdgeId], Timestamp],
    ) -> Optional[List[EdgeId]]:
        """Ids of ``label`` edges at ``vertex_id`` with timestamp in ``[low, high]``.

        The sorted-array fast path for timestamp-bounded adjacency
        enumeration: per (direction, label) slot a lazily-built
        :class:`EdgeTimeRuns` sidecar answers the range with binary search
        over one contiguous slice, preserving the slot's insertion order
        exactly.  ``Direction.BOTH`` concatenates OUT then IN -- the same
        order :meth:`incident_edge_ids` enumerates.  Returns ``None`` when
        any touched sidecar is unsorted (heavily disordered ingest at this
        slot); the caller must fall back to the plain enumeration.
        ``resolve_ts`` resolves an edge id to its timestamp for the lazy
        first build (the index itself stores only ids).
        """
        if direction == Direction.BOTH:
            directions: Tuple[str, ...] = (Direction.OUT, Direction.IN)
        else:
            directions = (direction,)
        result: List[EdgeId] = []
        for d in directions:
            bucket = self._bucket(vertex_id, d, label)
            if not bucket:
                continue
            per_slot = self._times.setdefault(vertex_id, {})
            runs = per_slot.get((d, label))
            if runs is None:
                runs = EdgeTimeRuns.from_bucket(bucket, resolve_ts)
                per_slot[(d, label)] = runs
            ids = runs.range_ids(low, high)
            if ids is None:
                return None
            result.extend(edge_id for edge_id in ids if edge_id in bucket)
        return result

    def degree(self, vertex_id: VertexId) -> int:
        """Return the total number of incident edges (in + out)."""
        return self._degree.get(vertex_id, 0)

    def out_degree(self, vertex_id: VertexId) -> int:
        """Return the number of outgoing edges."""
        return self._count(vertex_id, Direction.OUT)

    def in_degree(self, vertex_id: VertexId) -> int:
        """Return the number of incoming edges."""
        return self._count(vertex_id, Direction.IN)

    def labels_at(self, vertex_id: VertexId, direction: str = Direction.BOTH) -> Set[str]:
        """Return the set of edge labels incident to ``vertex_id``."""
        per_direction = self._by_vertex.get(vertex_id)
        if not per_direction:
            return set()
        if direction == Direction.BOTH:
            directions: Tuple[str, ...] = (Direction.OUT, Direction.IN)
        else:
            directions = (direction,)
        labels: Set[str] = set()
        for d in directions:
            per_label = per_direction.get(d)
            if per_label:
                labels.update(key for key, ids in per_label.items() if ids)
        return labels

    def vertices(self) -> Iterable[VertexId]:
        """Return the vertices currently known to the index."""
        return self._by_vertex.keys()

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._by_vertex

    def __len__(self) -> int:
        return len(self._by_vertex)

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def label_order_state(self) -> List[Tuple[VertexId, str, List[str]]]:
        """Return the per-(vertex, direction) *label key order* of the index.

        Rebuilding the index by re-adding the live edges in ingest order
        reproduces every per-label bucket exactly, but not necessarily the
        order of the label keys themselves: a label bucket keeps its
        original slot as long as one live edge holds it open, even after
        the edge that *created* it was evicted, so the key order is a
        function of the full ingest/evict history, not of the surviving
        edges.  ``incident_edge_ids`` with ``label=None`` iterates buckets
        in key order -- which feeds local-search enumeration and therefore
        match emission order -- so a byte-exact restore must capture it.
        Only slots with two or more labels are recorded (singletons cannot
        be mis-ordered).
        """
        orders: List[Tuple[VertexId, str, List[str]]] = []
        for vertex_id, per_direction in self._by_vertex.items():
            for direction, per_label in per_direction.items():
                if len(per_label) > 1:
                    orders.append((vertex_id, direction, list(per_label)))
        return orders

    def apply_label_order(self, orders: Iterable[Tuple[VertexId, str, List[str]]]) -> None:
        """Re-impose a label key order captured by :meth:`label_order_state`.

        Must be called after the index has been rebuilt with the same live
        edges; labels present in the stored order but absent from the
        rebuilt slot are skipped (and vice versa keep their rebuilt
        positions after the ordered prefix).
        """
        for vertex_id, direction, labels in orders:
            per_direction = self._by_vertex.get(vertex_id)
            if not per_direction:
                continue
            per_label = per_direction.get(direction)
            if not per_label:
                continue
            reordered = {
                label: per_label[label] for label in labels if label in per_label
            }
            for label, bucket in per_label.items():
                if label not in reordered:
                    reordered[label] = bucket
            per_direction[direction] = reordered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _slot(self, vertex_id: VertexId, direction: str, label: str) -> Dict[EdgeId, None]:
        per_direction = self._by_vertex.setdefault(vertex_id, {})
        per_label = per_direction.setdefault(direction, {})
        return per_label.setdefault(label, {})

    def _discard(self, vertex_id: VertexId, direction: str, label: str, edge_id: EdgeId) -> None:
        per_direction = self._by_vertex.get(vertex_id)
        if not per_direction:
            return
        per_label = per_direction.get(direction)
        if not per_label:
            return
        edge_ids = per_label.get(label)
        if not edge_ids:
            return
        edge_ids.pop(edge_id, None)
        if not edge_ids:
            del per_label[label]
        if not per_label:
            del per_direction[direction]
        if not per_direction:
            del self._by_vertex[vertex_id]

    def _count(self, vertex_id: VertexId, direction: str) -> int:
        per_direction = self._by_vertex.get(vertex_id)
        if not per_direction:
            return 0
        per_label = per_direction.get(direction)
        if not per_label:
            return 0
        return sum(len(ids) for ids in per_label.values())
