"""Dynamic (streaming, windowed) multi-relational graph store.

A :class:`DynamicGraph` wraps a :class:`~repro.graph.property_graph.PropertyGraph`
and adds the temporal behaviour StreamWorks relies on:

* edges arrive from a stream in (approximately) timestamp order and carry the
  current *stream time* forward;
* edges older than the retention window are evicted so memory stays bounded;
* vertices that lose their last incident edge are optionally evicted too.

The retention window defaults to the query window ``tW`` -- an edge that has
aged out of the query window can never contribute to a new match, so keeping
it would only slow the local searches down.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional

from .property_graph import PropertyGraph
from .types import Direction, Edge, EdgeId, Timestamp, Vertex, VertexId
from .window import ExpiryQueue, TimeWindow

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A sliding-window view over a stream of timestamped edges.

    Parameters
    ----------
    window:
        Retention window.  ``None`` keeps the full history (useful for the
        repeated-search baseline and for tests).
    evict_isolated_vertices:
        When ``True`` (default) vertices with no remaining incident edges are
        removed during eviction.
    out_of_order_tolerance:
        Maximum allowed lateness (in time units) for an incoming edge.  Edges
        older than ``current_time - tolerance`` are rejected with
        ``ValueError`` to protect the monotone-eviction invariant; ``None``
        accepts any lateness (the stream time never moves backwards).
    """

    def __init__(
        self,
        window: Optional[TimeWindow] = None,
        evict_isolated_vertices: bool = True,
        out_of_order_tolerance: Optional[float] = None,
    ) -> None:
        self.graph = PropertyGraph()
        self.window = window if window is not None else TimeWindow(None)
        self.evict_isolated_vertices = evict_isolated_vertices
        self.out_of_order_tolerance = out_of_order_tolerance
        # rebuilt from the retained edges on from_state (see state_dict)
        self._expiry: ExpiryQueue[EdgeId] = ExpiryQueue()  # repro-lint: ignore[snapshot-coverage]
        self._current_time: float = float("-inf")
        self._edges_ingested = 0
        self._edges_evicted = 0
        # plain callables, deliberately not restored (see from_state)
        self._eviction_listeners: List[Callable[[Edge], None]] = []  # repro-lint: ignore[snapshot-coverage]

    # ------------------------------------------------------------------
    # stream time
    # ------------------------------------------------------------------
    @property
    def current_time(self) -> float:
        """Return the largest timestamp ingested so far (``-inf`` when empty)."""
        return self._current_time

    def advance_time(self, now: Timestamp) -> None:
        """Advance the stream clock to ``now`` without ingesting or evicting.

        A no-op when ``now`` is behind the current clock.  The sharded
        engine uses this to pin a shard graph's clock to the *global*
        stream time: a shard only ingests the records routed to it, so its
        own clock lags whenever newer records went elsewhere, and a lagging
        clock makes the eviction inside :meth:`ingest` keep a
        dead-on-arrival late edge (one already outside the retention
        horizon) that the single engine would have evicted before matching
        it.  Eviction itself stays the caller's move (:meth:`evict_expired`).
        """
        if now > self._current_time:
            self._current_time = float(now)

    @property
    def edges_ingested(self) -> int:
        """Total number of edges ever ingested."""
        return self._edges_ingested

    @property
    def edges_evicted(self) -> int:
        """Total number of edges evicted by the window."""
        return self._edges_evicted

    def add_eviction_listener(self, listener: Callable[[Edge], None]) -> None:
        """Register a callback invoked with every evicted edge.

        The continuous-query matcher uses this to drop partial matches that
        reference evicted edges.
        """
        self._eviction_listeners.append(listener)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        source: VertexId,
        target: VertexId,
        label: str,
        timestamp: Timestamp,
        attrs: Optional[Mapping[str, Any]] = None,
        source_label: str = "node",
        target_label: str = "node",
        source_attrs: Optional[Mapping[str, Any]] = None,
        target_attrs: Optional[Mapping[str, Any]] = None,
        evict: bool = True,
    ) -> Edge:
        """Ingest a single raw edge and return the stored :class:`Edge`.

        Advances stream time, stores the edge, then evicts anything that has
        fallen out of the retention window.  ``source_attrs`` / ``target_attrs``
        are merged into the endpoint vertices (created if missing), which is
        how streams convey vertex attributes such as a keyword's topic label.

        ``evict=False`` defers the eviction sweep: the engine's batched ingest
        fast path ingests a whole batch before matching any of its edges, and
        evicting eagerly against the *latest* timestamp of the batch would
        remove edges that earlier edges of the same batch can still legally
        match against.  Callers deferring eviction must call
        :meth:`evict_expired` themselves once the batch has been processed.
        """
        timestamp = float(timestamp)
        if source_attrs:
            self.graph.add_vertex(source, source_label, source_attrs)
        if target_attrs:
            self.graph.add_vertex(target, target_label, target_attrs)
        if self.out_of_order_tolerance is not None and self._current_time != float("-inf"):
            if timestamp < self._current_time - self.out_of_order_tolerance:
                raise ValueError(
                    f"edge timestamp {timestamp} is older than the allowed lateness "
                    f"({self._current_time} - {self.out_of_order_tolerance})"
                )
        edge = self.graph.add_edge(
            source,
            target,
            label,
            timestamp,
            attrs,
            source_label=source_label,
            target_label=target_label,
        )
        self._edges_ingested += 1
        if timestamp > self._current_time:
            self._current_time = timestamp
        self._expiry.push(timestamp, edge.id)
        if evict:
            self.evict_expired()
        return edge

    def ingest_edge(self, edge: Edge, source_label: str = "node", target_label: str = "node") -> Edge:
        """Ingest a pre-built :class:`Edge` (its id may be reassigned)."""
        return self.ingest(
            edge.source,
            edge.target,
            edge.label,
            edge.timestamp,
            edge.attrs,
            source_label=source_label,
            target_label=target_label,
        )

    def ingest_many(self, edges: Iterable[Edge]) -> List[Edge]:
        """Ingest a batch of pre-built edges, returning the stored copies."""
        return [self.ingest_edge(edge) for edge in edges]

    def add_vertex(
        self, vertex_id: VertexId, label: str, attrs: Optional[Mapping[str, Any]] = None
    ) -> Vertex:
        """Add (or update) a vertex out of band of the edge stream."""
        return self.graph.add_vertex(vertex_id, label, attrs)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict_expired(self, now: Optional[Timestamp] = None) -> List[Edge]:
        """Evict edges older than the retention window and return them."""
        if not self.window.bounded:
            return []
        if now is None:
            now = self._current_time
        threshold = self.window.expiry_threshold(now)
        evicted: List[Edge] = []
        # strict window: an edge exactly at the threshold has span == tW which
        # is inadmissible, so it is evicted when ``strict`` is set.
        for edge_id in self._expiry.pop_expired(threshold, inclusive=self.window.strict):
            if not self.graph.has_edge(edge_id):
                continue
            edge = self.graph.remove_edge(edge_id)
            evicted.append(edge)
            self._edges_evicted += 1
            if self.evict_isolated_vertices:
                for endpoint in edge.endpoints:
                    if self.graph.has_vertex(endpoint) and self.graph.degree(endpoint) == 0:
                        self.graph.remove_vertex(endpoint)
        if evicted:
            for listener in self._eviction_listeners:
                for edge in evicted:
                    listener(edge)
        return evicted

    # ------------------------------------------------------------------
    # read API (delegation to the underlying property graph)
    # ------------------------------------------------------------------
    def has_vertex(self, vertex_id: VertexId) -> bool:
        """Return ``True`` when the vertex is currently retained."""
        return self.graph.has_vertex(vertex_id)

    def vertex(self, vertex_id: VertexId) -> Vertex:
        """Return a retained vertex."""
        return self.graph.vertex(vertex_id)

    def has_edge(self, edge_id: EdgeId) -> bool:
        """Return ``True`` when the edge is currently retained."""
        return self.graph.has_edge(edge_id)

    def edge(self, edge_id: EdgeId) -> Edge:
        """Return a retained edge."""
        return self.graph.edge(edge_id)

    def edges(self, label: Optional[str] = None) -> Iterator[Edge]:
        """Iterate over retained edges."""
        return self.graph.edges(label)

    def vertices(self, label: Optional[str] = None) -> Iterator[Vertex]:
        """Iterate over retained vertices."""
        return self.graph.vertices(label)

    def edges_in_range(self, label: str, low: float, high: float) -> Optional[List[Edge]]:
        """Sorted-array label range scan (see :meth:`PropertyGraph.edges_in_range`)."""
        return self.graph.edges_in_range(label, low, high)

    def incident_edges_in_range(
        self,
        vertex_id: VertexId,
        direction: str,
        label: str,
        low: float,
        high: float,
    ) -> Optional[List[Edge]]:
        """Timestamp-bounded adjacency scan (see :meth:`PropertyGraph.incident_edges_in_range`)."""
        return self.graph.incident_edges_in_range(vertex_id, direction, label, low, high)

    def range_scan_stats(self) -> Dict[str, int]:
        """Return the store's columnar range-scan counters."""
        return self.graph.range_scan_stats()

    def incident_edges(
        self,
        vertex_id: VertexId,
        direction: str = Direction.BOTH,
        label: Optional[str] = None,
    ) -> Iterator[Edge]:
        """Iterate over retained edges incident to a vertex."""
        return self.graph.incident_edges(vertex_id, direction, label)

    def degree(self, vertex_id: VertexId) -> int:
        """Return the retained degree of a vertex."""
        return self.graph.degree(vertex_id)

    def vertex_count(self, label: Optional[str] = None) -> int:
        """Return the number of retained vertices."""
        return self.graph.vertex_count(label)

    def edge_count(self, label: Optional[str] = None) -> int:
        """Return the number of retained edges."""
        return self.graph.edge_count(label)

    def snapshot(self) -> PropertyGraph:
        """Return an independent copy of the currently retained graph."""
        return self.graph.copy()

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serialise the windowed store (graph + clock + counters).

        The expiry queue is not serialised: it is rebuilt from the retained
        edges on :meth:`from_state`.  Stale heap entries (edges already
        evicted out of band) are dropped by the rebuild, which is
        behaviour-preserving -- ``pop_expired`` skips them anyway -- and the
        rebuilt tie-break order (push order = ingest order of the live
        edges) matches the original's for every edge that can still expire.
        """
        return {
            "graph": self.graph.state_dict(),
            "window": {
                "duration": self.window.duration if self.window.bounded else None,
                "strict": self.window.strict,
            },
            "evict_isolated_vertices": self.evict_isolated_vertices,
            "out_of_order_tolerance": self.out_of_order_tolerance,
            "current_time": self._current_time,
            "edges_ingested": self._edges_ingested,
            "edges_evicted": self._edges_evicted,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DynamicGraph":
        """Rebuild a windowed store from :meth:`state_dict` output.

        Eviction listeners are *not* restored (they are plain callables);
        the owning engine re-attaches its own after restore when it uses
        any.
        """
        window_state = state["window"]
        graph = cls(
            window=TimeWindow(window_state["duration"], strict=window_state["strict"]),
            evict_isolated_vertices=state["evict_isolated_vertices"],
            out_of_order_tolerance=state["out_of_order_tolerance"],
        )
        graph.graph = PropertyGraph.from_state(state["graph"])
        graph._current_time = float(state["current_time"])
        graph._edges_ingested = state["edges_ingested"]
        graph._edges_evicted = state["edges_evicted"]
        for edge in graph.graph.edges():
            graph._expiry.push(edge.timestamp, edge.id)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGraph(|V|={self.vertex_count()}, |E|={self.edge_count()}, "
            f"t={self._current_time}, window={self.window})"
        )
