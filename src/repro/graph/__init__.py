"""Dynamic multi-relational property-graph substrate.

This package provides the storage layer StreamWorks runs on: a typed,
attributed, timestamped directed multigraph (:class:`PropertyGraph`), its
sliding-window streaming wrapper (:class:`DynamicGraph`), label-aware
adjacency indexes and window/expiry utilities.
"""

from .adjacency import AdjacencyIndex
from .dynamic_graph import DynamicGraph
from .property_graph import PropertyGraph
from .types import (
    Direction,
    DuplicateEdgeError,
    DuplicateVertexError,
    Edge,
    EdgeId,
    EdgeNotFoundError,
    GraphError,
    Timestamp,
    Vertex,
    VertexId,
    VertexNotFoundError,
    edges_span,
)
from .window import ExpiryQueue, TimeWindow

__all__ = [
    "AdjacencyIndex",
    "Direction",
    "DuplicateEdgeError",
    "DuplicateVertexError",
    "DynamicGraph",
    "Edge",
    "EdgeId",
    "EdgeNotFoundError",
    "ExpiryQueue",
    "GraphError",
    "PropertyGraph",
    "Timestamp",
    "TimeWindow",
    "Vertex",
    "VertexId",
    "VertexNotFoundError",
    "edges_span",
]
