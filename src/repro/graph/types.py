"""Core value types for the dynamic multi-relational property graph.

StreamWorks models its data as a *dynamic multi-relational graph*: vertices
and edges carry a type (label), arbitrary attributes, and every edge carries
a timestamp.  These are the plain value objects shared by every other layer
(storage, query, matching, statistics).

The objects are intentionally light-weight: ``Vertex`` and ``Edge`` are
``slots``-based classes so that streams of tens of thousands of edges remain
cheap to create and hash, which matters for the streaming benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Tuple

__all__ = [
    "VertexId",
    "EdgeId",
    "Timestamp",
    "Vertex",
    "Edge",
    "Direction",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "DuplicateVertexError",
    "DuplicateEdgeError",
]

# Type aliases used throughout the code base.  Vertex identifiers are any
# hashable value (IP addresses, article URIs, integers...), edge identifiers
# are integers assigned by the graph store, and timestamps are floats
# (seconds, but any monotone unit works).
VertexId = Hashable
EdgeId = int
Timestamp = float


class GraphError(Exception):
    """Base class for all graph-layer errors."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not stored."""


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not stored."""


class DuplicateVertexError(GraphError, ValueError):
    """Raised when adding a vertex whose id already exists with a different label."""


class DuplicateEdgeError(GraphError, ValueError):
    """Raised when adding an edge whose id already exists."""


class Direction:
    """Edge direction constants used by adjacency lookups.

    ``OUT`` follows edges from their source, ``IN`` follows edges into their
    target and ``BOTH`` ignores orientation.  Plain strings are used (instead
    of an Enum) to keep dictionary keys cheap in the hot adjacency path.
    """

    OUT = "out"
    IN = "in"
    BOTH = "both"

    ALL = (OUT, IN, BOTH)

    @staticmethod
    def reverse(direction: str) -> str:
        """Return the opposite direction (``BOTH`` maps to itself)."""
        if direction == Direction.OUT:
            return Direction.IN
        if direction == Direction.IN:
            return Direction.OUT
        if direction == Direction.BOTH:
            return Direction.BOTH
        raise ValueError(f"unknown direction: {direction!r}")


def _freeze_attrs(attrs: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Normalise an attribute mapping into a plain (possibly empty) dict."""
    if attrs is None:
        return {}
    return dict(attrs)


class Vertex:
    """A typed, attributed vertex.

    Parameters
    ----------
    vertex_id:
        Application-level identifier.  Must be hashable and unique within a
        graph.
    label:
        The vertex type, e.g. ``"IP"``, ``"Article"`` or ``"Keyword"``.
    attrs:
        Optional attribute mapping (e.g. ``{"country": "US"}``).
    """

    __slots__ = ("id", "label", "attrs")

    def __init__(self, vertex_id: VertexId, label: str, attrs: Optional[Mapping[str, Any]] = None):
        self.id = vertex_id
        self.label = label
        self.attrs = _freeze_attrs(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vertex({self.id!r}, label={self.label!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return self.id == other.id and self.label == other.label and self.attrs == other.attrs

    def __hash__(self) -> int:
        return hash((self.id, self.label))

    def copy(self) -> "Vertex":
        """Return a shallow copy with a copied attribute dict."""
        return Vertex(self.id, self.label, dict(self.attrs))

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the vertex into a JSON-friendly dictionary."""
        return {"id": self.id, "label": self.label, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Vertex":
        """Inverse of :meth:`to_dict`."""
        return cls(payload["id"], payload["label"], payload.get("attrs"))


class Edge:
    """A typed, timestamped, attributed directed edge.

    Every edge in a dynamic graph carries a timestamp; the temporal extent of
    any subgraph is derived from the timestamps of its edges (paper section
    2.1).  Edges are directed; undirected semantics are expressed at query
    time via :class:`~repro.graph.types.Direction`.

    Parameters
    ----------
    edge_id:
        Identifier unique within a graph.  The graph store assigns monotone
        integers when the caller does not supply one.
    source, target:
        Endpoint vertex identifiers.
    label:
        The edge type, e.g. ``"connectsTo"`` or ``"mentions"``.
    timestamp:
        Event time of the edge.
    attrs:
        Optional attribute mapping (e.g. ``{"bytes": 1400, "port": 53}``).
    """

    __slots__ = ("id", "source", "target", "label", "timestamp", "attrs")

    def __init__(
        self,
        edge_id: EdgeId,
        source: VertexId,
        target: VertexId,
        label: str,
        timestamp: Timestamp = 0.0,
        attrs: Optional[Mapping[str, Any]] = None,
    ):
        self.id = edge_id
        self.source = source
        self.target = target
        self.label = label
        self.timestamp = float(timestamp)
        self.attrs = _freeze_attrs(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Edge({self.id}, {self.source!r}-[{self.label}]->{self.target!r}, "
            f"t={self.timestamp})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (
            self.id == other.id
            and self.source == other.source
            and self.target == other.target
            and self.label == other.label
            and self.timestamp == other.timestamp
            and self.attrs == other.attrs
        )

    def __hash__(self) -> int:
        return hash((self.id, self.source, self.target, self.label))

    @property
    def endpoints(self) -> Tuple[VertexId, VertexId]:
        """Return ``(source, target)``."""
        return (self.source, self.target)

    def other_endpoint(self, vertex_id: VertexId) -> VertexId:
        """Return the endpoint opposite to ``vertex_id``.

        Raises
        ------
        ValueError
            If ``vertex_id`` is not an endpoint of this edge.
        """
        if vertex_id == self.source:
            return self.target
        if vertex_id == self.target:
            return self.source
        raise ValueError(f"{vertex_id!r} is not an endpoint of {self!r}")

    def touches(self, vertex_id: VertexId) -> bool:
        """Return ``True`` when ``vertex_id`` is one of the edge endpoints."""
        return vertex_id == self.source or vertex_id == self.target

    def copy(self) -> "Edge":
        """Return a shallow copy with a copied attribute dict."""
        return Edge(self.id, self.source, self.target, self.label, self.timestamp, dict(self.attrs))

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the edge into a JSON-friendly dictionary."""
        return {
            "id": self.id,
            "source": self.source,
            "target": self.target,
            "label": self.label,
            "timestamp": self.timestamp,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Edge":
        """Inverse of :meth:`to_dict`."""
        return cls(
            payload["id"],
            payload["source"],
            payload["target"],
            payload["label"],
            payload.get("timestamp", 0.0),
            payload.get("attrs"),
        )


def edges_span(edges: Iterable[Edge]) -> float:
    """Return the temporal extent ``τ`` of a collection of edges.

    The span is the difference between the latest and the earliest edge
    timestamp (paper section 2.1).  An empty collection has span ``0.0``.
    """
    timestamps = [edge.timestamp for edge in edges]
    if not timestamps:
        return 0.0
    return max(timestamps) - min(timestamps)
