"""Stream-boundary intern table: labels and attribute names to dense ints.

The columnar fast path wants label routing to be integer compares and
per-batch label columns to be small int arrays instead of repeated string
hashing.  An :class:`InternTable` assigns every distinct string a dense id
in first-seen order, so:

* ids are deterministic for a given admission order (the engine interns
  query labels at registration, then stream labels in ingest order);
* the table round-trips through snapshots (``state_dict`` serialises the
  labels *in id order*; ``from_state`` re-interns them, reproducing the
  exact ids);
* a table restored from a pre-columnar snapshot -- which carries no
  interning section -- is rebuilt deterministically by re-interning the
  restored graph's edges in insertion order, because the property graph
  itself serialises edges in insertion order.

Ids are engine-internal: nothing about event output depends on them, only
internal consistency within one engine's lifetime matters.  The sharded
parent still pushes its query-label ids to every shard at registration
(:meth:`adopt`) so the per-shard tables agree on the hot query labels;
labels admitted mid-stream may receive different ids on different shards,
which is harmless for the same reason.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["InternTable"]


class InternTable:
    """Dense string interner with first-seen-order ids."""

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        # derived index over _labels; from_state rebuilds it by re-interning
        self._ids: Dict[str, int] = {}  # repro-lint: ignore[snapshot-coverage]
        self._labels: List[str] = []

    def intern(self, label: str) -> int:
        """Return the dense id for ``label``, admitting it when unknown."""
        ident = self._ids.get(label)
        if ident is None:
            ident = len(self._labels)
            self._ids[label] = ident
            self._labels.append(label)
        return ident

    def lookup(self, label: str) -> Optional[int]:
        """Return the id for ``label`` without admitting it (``None`` = unknown)."""
        return self._ids.get(label)

    def label(self, ident: int) -> str:
        """Return the label for a dense id (raises ``IndexError`` when unknown)."""
        if ident < 0:
            raise IndexError(f"intern id {ident} out of range")
        return self._labels[ident]

    def intern_all(self, labels: Iterable[str]) -> List[int]:
        """Intern a batch of labels, returning their ids in order."""
        return [self.intern(label) for label in labels]

    def adopt(self, labels: Iterable[str]) -> None:
        """Intern ``labels`` in the given order (parent-to-shard id alignment).

        Called on a fresh (or prefix-consistent) table this reproduces the
        caller's ids exactly; labels already interned keep their ids, so a
        conflicting adoption order surfaces as differing ids rather than
        corruption.
        """
        for label in labels:
            self.intern(label)

    def labels(self) -> List[str]:
        """Return the interned labels in id order (the :meth:`adopt` wire format)."""
        return list(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._ids

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, List[str]]:
        """Serialise the table (labels in id order; ids are implicit)."""
        return {"labels": list(self._labels)}

    @classmethod
    def from_state(cls, state: Mapping[str, List[str]]) -> "InternTable":
        """Rebuild a table from :meth:`state_dict` output, ids preserved."""
        table = cls()
        for label in state["labels"]:
            table.intern(label)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternTable({len(self._labels)} labels)"
