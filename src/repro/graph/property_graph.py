"""In-memory multi-relational property graph store.

This is the static storage substrate used by StreamWorks: a directed
multigraph whose vertices and edges carry labels and attribute maps.  The
dynamic (windowed) behaviour is layered on top in
:mod:`repro.graph.dynamic_graph`.

The store keeps label-aware adjacency indexes (:class:`AdjacencyIndex`) so
that the incremental matcher's local searches stay proportional to the size
of the neighbourhood being explored.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .adjacency import AdjacencyIndex, EdgeTimeRuns
from .types import (
    Direction,
    DuplicateEdgeError,
    Edge,
    EdgeId,
    EdgeNotFoundError,
    Timestamp,
    Vertex,
    VertexId,
    VertexNotFoundError,
)

__all__ = ["PropertyGraph"]


class PropertyGraph:
    """A directed, labelled, attributed multigraph.

    Vertices are identified by arbitrary hashable values; edges are
    identified by integers (assigned automatically when not supplied).
    Multiple parallel edges between the same endpoints are allowed -- a
    netflow stream routinely produces many ``connectsTo`` edges between the
    same pair of hosts.

    The class exposes the read API used by the matcher (vertex/edge lookup,
    label-filtered adjacency) and the write API used by the stream ingester
    (upserts, removal for window eviction).
    """

    def __init__(self) -> None:
        self._vertices: Dict[VertexId, Vertex] = {}
        self._edges: Dict[EdgeId, Edge] = {}
        self._adjacency = AdjacencyIndex()
        # label indexes are insertion-ordered dicts used as ordered sets:
        # label-filtered iteration must follow ingest order, not the hash
        # order of engine-local ids, so that engines fed the same stream
        # enumerate (and emit) in the same order regardless of id numbering
        self._edges_by_label: Dict[str, Dict[EdgeId, None]] = defaultdict(dict)
        self._vertices_by_label: Dict[str, Dict[VertexId, None]] = defaultdict(dict)
        self._next_edge_id: int = 0
        # columnar range-scan sidecars: per-label timestamp arrays, built
        # lazily on first range query and rebuilt the same way after a
        # restore -- deliberately derived state, never serialised
        self._label_times: Dict[str, EdgeTimeRuns] = {}  # repro-lint: ignore[snapshot-coverage]
        #: Range-scan observability (process-local, like wall-clock latency:
        #: reset by construction and restore, not part of the resume contract)
        self.range_scans = 0  # repro-lint: ignore[snapshot-coverage]
        self.range_scan_fallbacks = 0  # repro-lint: ignore[snapshot-coverage]

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        vertex_id: VertexId,
        label: str,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> Vertex:
        """Add or update a vertex and return the stored object.

        Adding an existing vertex id with the same label merges the supplied
        attributes into the stored vertex (last write wins per key); adding it
        with a *different* label raises :class:`DuplicateVertexError` via
        :meth:`upsert_vertex`'s strictness -- in a multi-relational graph a
        vertex identity has exactly one type.
        """
        existing = self._vertices.get(vertex_id)
        if existing is None:
            vertex = Vertex(vertex_id, label, attrs)
            self._vertices[vertex_id] = vertex
            self._vertices_by_label[label][vertex_id] = None
            return vertex
        if existing.label != label:
            from .types import DuplicateVertexError

            raise DuplicateVertexError(
                f"vertex {vertex_id!r} already exists with label {existing.label!r}, "
                f"cannot re-add with label {label!r}"
            )
        if attrs:
            existing.attrs.update(attrs)
        return existing

    def has_vertex(self, vertex_id: VertexId) -> bool:
        """Return ``True`` when ``vertex_id`` is stored."""
        return vertex_id in self._vertices

    def vertex(self, vertex_id: VertexId) -> Vertex:
        """Return the stored :class:`Vertex` or raise :class:`VertexNotFoundError`."""
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def vertices(self, label: Optional[str] = None) -> Iterator[Vertex]:
        """Iterate over stored vertices, optionally restricted to one label."""
        if label is None:
            yield from self._vertices.values()
            return
        for vertex_id in self._vertices_by_label.get(label, ()):
            yield self._vertices[vertex_id]

    def vertex_ids(self, label: Optional[str] = None) -> Iterator[VertexId]:
        """Iterate over stored vertex identifiers."""
        if label is None:
            yield from self._vertices.keys()
        else:
            yield from self._vertices_by_label.get(label, ())

    def vertex_count(self, label: Optional[str] = None) -> int:
        """Return the number of vertices (optionally of a single label)."""
        if label is None:
            return len(self._vertices)
        return len(self._vertices_by_label.get(label, ()))

    def vertex_labels(self) -> Set[str]:
        """Return the set of vertex labels present in the graph."""
        return {label for label, ids in self._vertices_by_label.items() if ids}

    def remove_vertex(self, vertex_id: VertexId) -> Vertex:
        """Remove a vertex and all of its incident edges."""
        vertex = self.vertex(vertex_id)
        incident = list(self._adjacency.incident_edge_ids(vertex_id, Direction.BOTH))
        for edge_id in incident:
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        self._vertices_by_label[vertex.label].pop(vertex_id, None)
        if not self._vertices_by_label[vertex.label]:
            del self._vertices_by_label[vertex.label]
        del self._vertices[vertex_id]
        self._adjacency.remove_vertex(vertex_id)
        return vertex

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(
        self,
        source: VertexId,
        target: VertexId,
        label: str,
        timestamp: Timestamp = 0.0,
        attrs: Optional[Mapping[str, Any]] = None,
        edge_id: Optional[EdgeId] = None,
        source_label: Optional[str] = None,
        target_label: Optional[str] = None,
    ) -> Edge:
        """Add a directed edge and return the stored :class:`Edge`.

        Endpoints must already exist unless ``source_label`` / ``target_label``
        are supplied, in which case missing endpoints are created on the fly
        -- the common case when ingesting a raw edge stream.
        """
        if not self.has_vertex(source):
            if source_label is None:
                raise VertexNotFoundError(source)
            self.add_vertex(source, source_label)
        if not self.has_vertex(target):
            if target_label is None:
                raise VertexNotFoundError(target)
            self.add_vertex(target, target_label)

        if edge_id is None:
            edge_id = self._next_edge_id
            self._next_edge_id += 1
        else:
            if edge_id in self._edges:
                raise DuplicateEdgeError(f"edge id {edge_id} already present")
            self._next_edge_id = max(self._next_edge_id, edge_id + 1)

        edge = Edge(edge_id, source, target, label, timestamp, attrs)
        self._edges[edge_id] = edge
        self._edges_by_label[label][edge_id] = None
        self._adjacency.add_edge(edge)
        if self._label_times:
            runs = self._label_times.get(label)
            if runs is not None:
                runs.append(edge_id, timestamp)
        return edge

    def insert_edge(self, edge: Edge, source_label: str = "node", target_label: str = "node") -> Edge:
        """Insert a pre-built :class:`Edge` object (used by stream replay).

        A fresh edge id is assigned when the supplied one collides with an
        existing edge.
        """
        edge_id: Optional[EdgeId] = edge.id
        if edge_id is None or edge_id in self._edges:
            edge_id = None
        return self.add_edge(
            edge.source,
            edge.target,
            edge.label,
            edge.timestamp,
            edge.attrs,
            edge_id=edge_id,
            source_label=source_label,
            target_label=target_label,
        )

    def has_edge(self, edge_id: EdgeId) -> bool:
        """Return ``True`` when an edge with this id is stored."""
        return edge_id in self._edges

    def edge(self, edge_id: EdgeId) -> Edge:
        """Return the stored :class:`Edge` or raise :class:`EdgeNotFoundError`."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFoundError(edge_id) from None

    def edges(self, label: Optional[str] = None) -> Iterator[Edge]:
        """Iterate over stored edges, optionally restricted to one label."""
        if label is None:
            yield from self._edges.values()
            return
        for edge_id in self._edges_by_label.get(label, ()):
            yield self._edges[edge_id]

    def edge_ids(self, label: Optional[str] = None) -> Iterator[EdgeId]:
        """Iterate over stored edge identifiers."""
        if label is None:
            yield from self._edges.keys()
        else:
            yield from self._edges_by_label.get(label, ())

    def edge_count(self, label: Optional[str] = None) -> int:
        """Return the number of edges (optionally of a single label)."""
        if label is None:
            return len(self._edges)
        return len(self._edges_by_label.get(label, ()))

    def edge_labels(self) -> Set[str]:
        """Return the set of edge labels present in the graph."""
        return {label for label, ids in self._edges_by_label.items() if ids}

    def remove_edge(self, edge_id: EdgeId) -> Edge:
        """Remove an edge by id and return it."""
        edge = self.edge(edge_id)
        del self._edges[edge_id]
        self._edges_by_label[edge.label].pop(edge_id, None)
        if not self._edges_by_label[edge.label]:
            del self._edges_by_label[edge.label]
            self._label_times.pop(edge.label, None)
        elif self._label_times:
            runs = self._label_times.get(edge.label)
            if runs is not None:
                runs.discard(self._edges_by_label[edge.label])
        self._adjacency.remove_edge(edge)
        return edge

    def edges_between(
        self,
        source: VertexId,
        target: VertexId,
        label: Optional[str] = None,
        directed: bool = True,
    ) -> List[Edge]:
        """Return all edges from ``source`` to ``target`` (or either way)."""
        result: List[Edge] = []
        for edge_id in self._adjacency.incident_edge_ids(source, Direction.OUT, label):
            edge = self._edges[edge_id]
            if edge.target == target:
                result.append(edge)
        if not directed:
            for edge_id in self._adjacency.incident_edge_ids(source, Direction.IN, label):
                edge = self._edges[edge_id]
                if edge.source == target:
                    result.append(edge)
        return result

    # ------------------------------------------------------------------
    # columnar range scans
    # ------------------------------------------------------------------
    def edges_in_range(
        self, label: str, low: Timestamp, high: Timestamp
    ) -> Optional[List[Edge]]:
        """Edges with ``label`` and timestamp in ``[low, high]``, insertion order.

        Sorted-array range scan over a lazily-built per-label timestamp
        sidecar: while the label's ingest order is time-sorted (the normal
        case -- the batched fast path ingests non-decreasing runs) the range
        is one binary-searched contiguous slice whose order equals the plain
        ``edges(label)`` enumeration restricted to the range.  Returns
        ``None`` when the sidecar is unsorted (heavily disordered ingest for
        this label); callers fall back to ``edges(label)``, which is always
        correct.  Bounds are inclusive -- callers use the scan as a superset
        prefilter ahead of their exact window checks.
        """
        bucket = self._edges_by_label.get(label)
        if not bucket:
            self.range_scans += 1
            return []
        runs = self._label_times.get(label)
        if runs is None:
            edges = self._edges
            runs = EdgeTimeRuns.from_bucket(bucket, lambda eid: edges[eid].timestamp)
            self._label_times[label] = runs
        ids = runs.range_ids(low, high)
        if ids is None:
            self.range_scan_fallbacks += 1
            return None
        self.range_scans += 1
        edges = self._edges
        return [edges[edge_id] for edge_id in ids if edge_id in bucket]

    def incident_edges_in_range(
        self,
        vertex_id: VertexId,
        direction: str,
        label: str,
        low: Timestamp,
        high: Timestamp,
    ) -> Optional[List[Edge]]:
        """Incident ``label`` edges with timestamp in ``[low, high]``, ingest order.

        Timestamp-bounded adjacency enumeration backed by the adjacency
        index's per-(vertex, direction, label) sorted-array sidecars; order
        and fallback semantics mirror :meth:`edges_in_range` (``None`` =
        unsorted slot, fall back to :meth:`incident_edges`).
        """
        edges = self._edges
        ids = self._adjacency.incident_ids_in_range(
            vertex_id, direction, label, low, high, lambda eid: edges[eid].timestamp
        )
        if ids is None:
            self.range_scan_fallbacks += 1
            return None
        self.range_scans += 1
        return [edges[edge_id] for edge_id in ids]

    def range_scan_stats(self) -> Dict[str, int]:
        """Return the columnar range-scan counters (process-local)."""
        return {
            "range_scans": self.range_scans,
            "range_scan_fallbacks": self.range_scan_fallbacks,
        }

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def incident_edges(
        self,
        vertex_id: VertexId,
        direction: str = Direction.BOTH,
        label: Optional[str] = None,
    ) -> Iterator[Edge]:
        """Iterate over edges incident to ``vertex_id``.

        ``direction`` follows :class:`Direction`; ``label`` filters on the
        edge label.  This is the primitive the local search is built on.
        """
        for edge_id in self._adjacency.incident_edge_ids(vertex_id, direction, label):
            yield self._edges[edge_id]

    def neighbors(
        self,
        vertex_id: VertexId,
        direction: str = Direction.BOTH,
        label: Optional[str] = None,
    ) -> Set[VertexId]:
        """Return the set of neighbouring vertex ids."""
        result: Set[VertexId] = set()
        for edge in self.incident_edges(vertex_id, direction, label):
            result.add(edge.other_endpoint(vertex_id) if edge.source != edge.target else vertex_id)
        return result

    def degree(self, vertex_id: VertexId) -> int:
        """Return the total degree (in + out) of a vertex."""
        return self._adjacency.degree(vertex_id)

    def out_degree(self, vertex_id: VertexId) -> int:
        """Return the out degree of a vertex."""
        return self._adjacency.out_degree(vertex_id)

    def in_degree(self, vertex_id: VertexId) -> int:
        """Return the in degree of a vertex."""
        return self._adjacency.in_degree(vertex_id)

    # ------------------------------------------------------------------
    # whole-graph helpers
    # ------------------------------------------------------------------
    def subgraph(self, edge_ids: Iterable[EdgeId]) -> "PropertyGraph":
        """Return a new graph containing the given edges and their endpoints."""
        result = PropertyGraph()
        for edge_id in edge_ids:
            edge = self.edge(edge_id)
            for endpoint in edge.endpoints:
                vertex = self.vertex(endpoint)
                result.add_vertex(vertex.id, vertex.label, dict(vertex.attrs))
            result.add_edge(
                edge.source,
                edge.target,
                edge.label,
                edge.timestamp,
                dict(edge.attrs),
                edge_id=edge.id,
            )
        return result

    def copy(self) -> "PropertyGraph":
        """Return a deep-ish copy (vertices and edges are copied, attrs are copied)."""
        result = PropertyGraph()
        for vertex in self._vertices.values():
            result.add_vertex(vertex.id, vertex.label, dict(vertex.attrs))
        for edge in self._edges.values():
            result.add_edge(
                edge.source,
                edge.target,
                edge.label,
                edge.timestamp,
                dict(edge.attrs),
                edge_id=edge.id,
            )
        result._next_edge_id = self._next_edge_id
        return result

    def state_dict(self) -> Dict[str, Any]:
        """Serialise the full store into a JSON-friendly state dict.

        Vertices and edges are listed in their *insertion order* (the order
        the store enumerates them in), which is what
        :meth:`from_state` replays to reproduce every internal index --
        including the label buckets, whose iteration order is a correctness
        property of the engines (see :class:`AdjacencyIndex`).  Attribute
        values must be JSON-safe for the state to be writable.
        """
        return {
            "vertices": [
                [vertex.id, vertex.label, dict(vertex.attrs)]
                for vertex in self._vertices.values()
            ],
            "edges": [
                [edge.id, edge.source, edge.target, edge.label, edge.timestamp, dict(edge.attrs)]
                for edge in self._edges.values()
            ],
            "next_edge_id": self._next_edge_id,
            "adjacency_label_order": self._adjacency.label_order_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "PropertyGraph":
        """Rebuild a store from :meth:`state_dict` output (exact indexes)."""
        graph = cls()
        for vertex_id, label, attrs in state["vertices"]:
            graph.add_vertex(vertex_id, label, attrs)
        for edge_id, source, target, label, timestamp, attrs in state["edges"]:
            graph.add_edge(source, target, label, timestamp, attrs, edge_id=edge_id)
        graph._next_edge_id = state["next_edge_id"]
        graph._adjacency.apply_label_order(state.get("adjacency_label_order", ()))
        return graph

    def clear(self) -> None:
        """Remove every vertex and edge."""
        self._vertices.clear()
        self._edges.clear()
        self._adjacency.clear()
        self._edges_by_label.clear()
        self._vertices_by_label.clear()
        self._label_times.clear()
        self._next_edge_id = 0

    def to_networkx(self):  # pragma: no cover - optional interoperability helper
        """Convert to a ``networkx.MultiDiGraph`` when networkx is installed.

        networkx is *not* a dependency of the hot path; this helper exists
        only for ad-hoc analysis and plotting.
        """
        import networkx as nx

        g = nx.MultiDiGraph()
        for vertex in self._vertices.values():
            g.add_node(vertex.id, label=vertex.label, **vertex.attrs)
        for edge in self._edges.values():
            g.add_edge(
                edge.source,
                edge.target,
                key=edge.id,
                label=edge.label,
                timestamp=edge.timestamp,
                **edge.attrs,
            )
        return g

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PropertyGraph(|V|={self.vertex_count()}, |E|={self.edge_count()})"
