"""Sliding time-window bookkeeping for dynamic graphs.

The paper's query semantics (section 2.1) bound the temporal extent of every
reported match by a window ``tW``: an isomorphic subgraph is reported only
when the difference between its latest and earliest edge timestamp is smaller
than ``tW``.  The same window also bounds how much history the dynamic graph
store needs to retain -- an edge older than ``now - tW`` can never participate
in a *new* match, so it may be evicted.

:class:`TimeWindow` captures the policy (window length, strict comparison) and
:class:`ExpiryQueue` tracks stored items in timestamp order so that eviction
is amortised O(1) per item.
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

from .types import Timestamp

__all__ = ["TimeWindow", "ExpiryQueue"]

T = TypeVar("T")


class TimeWindow:
    """A sliding window of length ``duration`` over event time.

    Parameters
    ----------
    duration:
        The window length ``tW``.  ``None`` (or ``float("inf")``) means an
        unbounded window: nothing ever expires and every span is admissible.
    strict:
        When ``True`` (the paper's definition) a subgraph is admissible only
        if its span is *strictly* smaller than ``duration``.
    """

    __slots__ = ("duration", "strict")

    def __init__(self, duration: Optional[float] = None, strict: bool = True):
        if duration is not None and duration < 0:
            raise ValueError("window duration must be non-negative")
        self.duration = float("inf") if duration is None else float(duration)
        self.strict = strict

    @property
    def bounded(self) -> bool:
        """Return ``True`` when the window has a finite duration."""
        return self.duration != float("inf")

    def admits_span(self, span: float) -> bool:
        """Return ``True`` when a subgraph with temporal extent ``span`` is admissible."""
        if not self.bounded:
            return True
        if self.strict:
            return span < self.duration
        return span <= self.duration

    def admits_interval(self, earliest: Timestamp, latest: Timestamp) -> bool:
        """Return ``True`` when the interval ``[earliest, latest]`` fits in the window."""
        return self.admits_span(latest - earliest)

    def expiry_threshold(self, now: Timestamp) -> float:
        """Return the timestamp below which items can no longer join new matches.

        An item with timestamp ``t`` combined with anything at time ``now``
        has span ``now - t``; once that span is inadmissible the item is dead
        weight.  For unbounded windows the threshold is ``-inf``.
        """
        if not self.bounded:
            return float("-inf")
        return now - self.duration

    def is_expired(self, timestamp: Timestamp, now: Timestamp) -> bool:
        """Return ``True`` when an item stamped ``timestamp`` is expired at ``now``."""
        if not self.bounded:
            return False
        span = now - timestamp
        if self.strict:
            return span >= self.duration
        return span > self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = "<" if self.strict else "<="
        return f"TimeWindow(span {op} {self.duration})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeWindow):
            return NotImplemented
        return self.duration == other.duration and self.strict == other.strict

    def __hash__(self) -> int:
        return hash((self.duration, self.strict))


class ExpiryQueue(Generic[T]):
    """Min-heap of ``(timestamp, item)`` pairs supporting bulk expiry.

    The dynamic graph and the SJ-Tree match collections both need to answer
    "which items are now older than the window?" cheaply after every batch.
    Items are pushed with their timestamp; :meth:`pop_expired` pops every item
    whose timestamp is at or before the supplied threshold.

    The queue tolerates logically-removed items: callers that delete items
    out of band can simply ignore stale pops (the queue hands back whatever
    was stored; it does not track liveness).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[Timestamp, int, T]] = []
        self._counter = 0

    def push(self, timestamp: Timestamp, item: T) -> None:
        """Add ``item`` with the given timestamp."""
        heapq.heappush(self._heap, (timestamp, self._counter, item))
        self._counter += 1

    def push_all(self, pairs: Iterable[Tuple[Timestamp, T]]) -> None:
        """Add many ``(timestamp, item)`` pairs."""
        for timestamp, item in pairs:
            self.push(timestamp, item)

    def pop_expired(self, threshold: Timestamp, inclusive: bool = True) -> List[T]:
        """Pop and return every item with ``timestamp <= threshold``.

        With ``inclusive=False`` the comparison is strict (``<``).
        """
        expired: List[T] = []
        while self._heap:
            timestamp, _, item = self._heap[0]
            if timestamp < threshold or (inclusive and timestamp == threshold):
                heapq.heappop(self._heap)
                expired.append(item)
            else:
                break
        return expired

    def peek_oldest(self) -> Optional[Tuple[Timestamp, T]]:
        """Return the oldest ``(timestamp, item)`` without removing it."""
        if not self._heap:
            return None
        timestamp, _, item = self._heap[0]
        return timestamp, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
