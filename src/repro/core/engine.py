"""The StreamWorks engine: register continuous graph queries, feed the stream.

This is the system façade a user of the reproduction interacts with (the
role played by the C++ query engine plus UI in the demo).  It owns

* the shared :class:`~repro.graph.dynamic_graph.DynamicGraph` window store,
* the :class:`~repro.stats.summarizer.StreamSummarizer` that keeps the
  planning statistics fresh (paper section 4.3),
* one :class:`~repro.core.matcher.ContinuousQueryMatcher` per registered
  query, built by the :class:`~repro.core.planner.QueryPlanner`,
* event delivery (sinks / callbacks) and engine-level metrics.

The ingest hot path is indexed: a shared
:class:`~repro.core.dispatch.DispatchIndex` maps edge labels (plus endpoint
vertex-label guards) to the (query, SJ-Tree leaf) pairs that can possibly
bind them, so an edge only pays for the primitives it can affect --
``EngineConfig(use_dispatch_index=False)`` restores the exhaustive
every-leaf-every-edge loop (the two are match-for-match equivalent).
:meth:`StreamWorksEngine.process_batch` additionally amortises work across a
batch: the whole batch is ingested (with eviction deferred), expiry is swept
once per matcher instead of once per edge, and each edge is then dispatched
through the index.  Internally out-of-order batches are split at their
inversion points so the ordered runs keep that fast path, and
``EngineConfig(allowed_lateness=...)`` enables full event-time ingestion: a
bounded-lateness reorder buffer re-sorts disorder inside the lateness
horizon, releases watermark-closed prefixes as in-order fast-path batches,
and applies an explicit late-data policy (drop / process degraded, with
counters) to anything older than the watermark.  The buffer is
multi-source (:mod:`repro.streaming.sources`): records carrying a
``source_id`` get one watermark per collector with min-release across
active sources (``register_source`` declares collectors up front,
``idle_source_timeout`` bounds silent ones), and admission can run off the
matcher's thread via
:class:`~repro.streaming.async_ingest.AsyncIngestFrontend`.

Typical use::

    engine = StreamWorksEngine(default_window=300.0)
    engine.register_query(smurf_query, name="smurf")
    for record in stream:
        events = engine.process_record(record)
        ...
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..graph.dynamic_graph import DynamicGraph
from ..graph.interning import InternTable
from ..graph.types import Edge, Timestamp, VertexId
from ..graph.window import TimeWindow
from ..isomorphism.match import Match
from ..query.compile import referenced_attr_names
from ..query.query_graph import QueryGraph
from ..stats.plan_monitor import PlanMonitor
from ..stats.summarizer import StreamSummarizer
from ..streaming.edge_stream import StreamEdge
from ..streaming.reorder import LatePolicy, ReorderBuffer, ordered_run_slices
from ..streaming.sources import ADAPTIVE_LATENESS, MultiSourceReorderBuffer
from ..streaming.events import (
    CallbackSink,
    CollectingSink,
    EventSink,
    MatchEvent,
    MultiSink,
    QueryFilterSink,
)
from ..streaming.metrics import LatencyRecorder, ThroughputMeter, replan_summary
from .decomposition import Decomposition, Strategy
from .dispatch import DispatchIndex
from .matcher import ContinuousQueryMatcher
from .planner import PlannerConfig, QueryPlan, QueryPlanner

__all__ = ["EngineConfig", "RegisteredQuery", "StreamWorksEngine", "required_retention"]


def intern_query_vocabulary(table: InternTable, query: QueryGraph) -> None:
    """Intern a query's label/attribute vocabulary at the stream boundary.

    Deterministic order -- edge labels, then vertex labels, then predicate
    attribute names in first-mention order -- so every engine that registers
    the same queries in the same order assigns the same dense ids.  The
    sharded parent relies on this when pushing its table to every shard, and
    pre-columnar snapshot restores rely on it to rebuild ids.
    """
    for query_edge in query.edges():
        if query_edge.label is not None:
            table.intern(query_edge.label)
    for query_vertex in query.vertices():
        if query_vertex.label is not None:
            table.intern(query_vertex.label)
    for query_edge in query.edges():
        table.intern_all(referenced_attr_names(query_edge.predicate))
    for query_vertex in query.vertices():
        table.intern_all(referenced_attr_names(query_vertex.predicate))


def _canonical_match_key(match: Match) -> str:
    """Return a plan-independent, cross-process-stable ordering key for a match.

    Within a single trigger edge the *discovery* order of complete matches is
    an artefact of the active plan (leaf iteration and join order), so it
    cannot survive a replan; same-trigger events are ordered by this key
    instead, which depends only on the match content.  Built from sorted
    reprs rather than ``portable_identity()`` because frozenset iteration
    order is hash-seed-dependent and must not leak into event order.
    """
    vertices = sorted(match.vertex_map.items(), key=repr)
    edges = sorted(
        (
            (query_edge, edge.source, edge.target, edge.label, edge.timestamp)
            for query_edge, edge in match.edge_map.items()
        ),
        key=repr,
    )
    return repr((vertices, edges))


def required_retention(
    windows: Iterable[TimeWindow], default_window: Optional[float]
) -> TimeWindow:
    """Return the graph retention implied by a set of query windows.

    A single unbounded query window forces unbounded retention: evicting
    anything could remove edges that query still needs.  Otherwise retention
    is the longest bounded window (folding in the engine-level default).
    The single engine and the sharded engine must agree on this formula --
    shard eviction is pinned to it -- so both call here.
    """
    windows = list(windows)
    if any(not window.bounded for window in windows):
        return TimeWindow(None)
    durations = [window.duration for window in windows if window.bounded]
    if default_window is not None:
        durations.append(float(default_window))
    if not durations:
        return TimeWindow(None)
    return TimeWindow(max(durations))


class EngineConfig:
    """Engine-level tunables (also the per-shard template of the sharded engine).

    Every parameter is validated at construction and raises ``ValueError``
    naming the offending field; the full reference table -- each field, its
    default, and how fields interact -- is ``docs/operations.md``.  The
    headline groups:

    * **storage/semantics**: ``default_window`` (fallback query window,
      drives graph retention), ``dedupe_structural``,
      ``store_complete_matches``;
    * **planning**: ``collect_statistics`` / ``track_triads`` /
      ``triad_sample_cap`` (the statistics the planner consumes),
      ``plan_strategy``, ``primitive_size``, ``auto_replan_interval``;
    * **ingest**: ``use_dispatch_index`` (label-indexed dispatch + the
      batched fast path), ``record_latency`` / ``latency_sample_cap``;
    * **event time**: ``allowed_lateness`` (float, ``"adaptive"``, or
      ``None``), ``late_policy``, ``idle_source_timeout`` -- see the
      per-attribute comments below and
      :class:`~repro.streaming.sources.MultiSourceReorderBuffer`;
    * **persistence**: ``checkpoint_every`` + ``checkpoint_path``
      (batch-cadence autosave).
    """

    def __init__(
        self,
        default_window: Optional[float] = None,
        collect_statistics: bool = True,
        track_triads: bool = True,
        triad_sample_cap: Optional[int] = 32,
        dedupe_structural: bool = False,
        store_complete_matches: bool = True,
        plan_strategy: str = Strategy.SELECTIVITY,
        primitive_size: int = 2,
        record_latency: bool = True,
        auto_replan_interval: Optional[int] = None,
        use_dispatch_index: bool = True,
        latency_sample_cap: Optional[int] = LatencyRecorder.DEFAULT_CAP,
        allowed_lateness: Optional[Union[float, str]] = None,
        late_policy: str = LatePolicy.DROP,
        idle_source_timeout: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        replan_threshold: Optional[float] = None,
        replan_check_every: Optional[int] = None,
        sketch_dispatch: bool = False,
        dedup_memory_budget: Optional[int] = None,
        sketch_stats: bool = False,
        columnar: bool = True,
    ):
        self.default_window = self.validate_default_window(default_window)
        self.collect_statistics = collect_statistics
        self.track_triads = track_triads
        self.triad_sample_cap = triad_sample_cap
        self.dedupe_structural = dedupe_structural
        self.store_complete_matches = store_complete_matches
        self.plan_strategy = plan_strategy
        self.primitive_size = primitive_size
        self.record_latency = record_latency
        #: Route each edge through the shared label dispatch index so only the
        #: (query, leaf) pairs that can bind it are searched.  ``False``
        #: restores the exhaustive per-edge loop over every registered leaf;
        #: the two paths produce identical matches in identical order.  The
        #: flag also gates the :meth:`StreamWorksEngine.process_batch` fast
        #: path (batch ingest + one expiry sweep per matcher per batch).
        self.use_dispatch_index = use_dispatch_index
        #: Reservoir size for the engine's per-edge latency recorder
        #: (``None`` retains every sample -- unbounded, diagnostics only).
        self.latency_sample_cap = latency_sample_cap
        #: Re-plan every registered query after this many ingested edges, using
        #: the statistics collected so far.  ``None`` (default) disables the
        #: behaviour.  This implements the paper's stated future work of
        #: "continuously collecting the statistics information from the data
        #: stream and updating the query decomposition and search strategy".
        if auto_replan_interval is not None and auto_replan_interval <= 0:
            raise ValueError("auto_replan_interval must be positive or None")
        self.auto_replan_interval = auto_replan_interval
        #: Event-time ingestion: when set, the engine owns a
        #: :class:`~repro.streaming.sources.MultiSourceReorderBuffer` with
        #: this lateness horizon (one watermark per record ``source_id``,
        #: released on the minimum across active sources; sourceless streams
        #: behave exactly as a single global watermark).  ``process_record``
        #: / ``process_batch`` then admit records into the buffer and
        #: process watermark-closed prefixes as in-order batches on the
        #: batched fast path; genuinely-late records follow ``late_policy``.
        #: The string ``"adaptive"`` makes each source's horizon track a
        #: running quantile of its own observed displacement instead of a
        #: fixed value.  ``None`` (default) processes records exactly as
        #: they arrive.
        if allowed_lateness is not None and allowed_lateness != ADAPTIVE_LATENESS:
            allowed_lateness = float(allowed_lateness)
            if not allowed_lateness >= 0.0:  # also rejects NaN
                raise ValueError(
                    "allowed_lateness must be >= 0 in stream-time units, "
                    f"{ADAPTIVE_LATENESS!r}, or None to disable event-time reordering"
                )
        self.allowed_lateness = allowed_lateness
        if late_policy not in LatePolicy.ALL:
            raise ValueError(
                f"unknown late policy {late_policy!r}; expected one of {LatePolicy.ALL}"
            )
        #: What to do with a record below the watermark (see
        #: :class:`~repro.streaming.reorder.LatePolicy`): ``"drop"`` discards
        #: and counts it; ``"process_degraded"`` processes it immediately on
        #: the exact per-record path against whatever history is retained.
        self.late_policy = late_policy
        #: Idle-source timeout (stream-time units) for multi-source
        #: event-time ingestion: a source whose clock lags the global
        #: maximum by more than this is excluded from the min-watermark, so
        #: a silent collector cannot freeze the release horizon.  ``None``
        #: (default) waits for slow sources indefinitely.  Requires
        #: ``allowed_lateness``.
        if idle_source_timeout is not None:
            if allowed_lateness is None:
                raise ValueError(
                    "idle_source_timeout requires allowed_lateness (event-time "
                    "ingestion must be enabled for sources to have watermarks)"
                )
            idle_source_timeout = float(idle_source_timeout)
            if not idle_source_timeout > 0.0:  # also rejects NaN
                raise ValueError(
                    "idle_source_timeout must be a positive duration in "
                    "stream-time units (or None to wait for slow sources)"
                )
        self.idle_source_timeout = idle_source_timeout
        #: Batch-cadence autosave: after every N ``process_batch`` calls the
        #: engine checkpoints itself to ``checkpoint_path`` (atomic write,
        #: monotone epoch in the manifest -- a crash mid-save leaves the
        #: previous snapshot intact).  The sharded engine autosaves at the
        #: parent; its shard engines get these fields stripped.  ``None``
        #: (default) disables autosave.
        if checkpoint_every is not None:
            checkpoint_every = int(checkpoint_every)
            if checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be a positive batch count or None")
            if not checkpoint_path:
                raise ValueError("checkpoint_every requires a checkpoint_path to save to")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        #: Adaptive replanning: maximum tolerated relative error between a
        #: plan's recorded selectivity estimates and the live estimates the
        #: current statistics would produce (per primitive; the plan's worst
        #: primitive is scored).  When a query's error exceeds the threshold
        #: at a replan check, the query is re-planned at that quiescent
        #: boundary with live partial-match state migrated -- the match set
        #: and event order are byte-for-byte identical to a never-replanned
        #: engine (``tests/test_replan_conformance.py``).  Requires
        #: ``collect_statistics``; ``None`` (default) disables the monitor's
        #: trigger (``run_replan_check`` then raises).
        if replan_threshold is not None:
            replan_threshold = float(replan_threshold)
            if not replan_threshold > 0.0:  # also rejects NaN
                raise ValueError(
                    "replan_threshold must be a positive relative error (or None "
                    "to disable adaptive replanning)"
                )
            if not collect_statistics:
                raise ValueError(
                    "replan_threshold requires collect_statistics=True: the plan "
                    "monitor scores live selectivity from the stream summarizer"
                )
        self.replan_threshold = replan_threshold
        #: Run an automatic replan check every N ingested edges (at the next
        #: record/batch boundary after the cadence is crossed, so checks never
        #: interrupt a batched run mid-flight).  Requires ``replan_threshold``.
        #: ``None`` leaves checks caller-driven via
        #: :meth:`StreamWorksEngine.run_replan_check` -- the sharded engine
        #: runs in that mode, with the parent driving every shard's cadence
        #: from the *global* record count.
        if replan_check_every is not None:
            if replan_threshold is None:
                raise ValueError(
                    "replan_check_every requires replan_threshold: a check "
                    "cadence without a trigger threshold does nothing"
                )
            replan_check_every = int(replan_check_every)
            if replan_check_every <= 0:
                raise ValueError("replan_check_every must be a positive edge count or None")
        self.replan_check_every = replan_check_every
        #: Front the dispatch index with a counting Bloom filter so edges
        #: whose label binds no registered leaf are rejected before endpoint
        #: vertex labels are resolved or the routing dict is probed.  The
        #: front is exact in the reject direction, so routing -- and
        #: therefore every event -- is byte-identical with the flag on or
        #: off (``tests/test_sketch.py`` differential suite).  Requires
        #: ``use_dispatch_index``.
        self.sketch_dispatch = bool(sketch_dispatch)
        if self.sketch_dispatch and not use_dispatch_index:
            raise ValueError(
                "sketch_dispatch requires use_dispatch_index=True: the Bloom "
                "front guards the dispatch index's negative-lookup path"
            )
        #: Bound each matcher's duplicate-suppression stores to this many
        #: entries (``None`` = unbounded, the historical behaviour).  Entries
        #: expire against the graph retention window regardless; the budget
        #: additionally caps adversarial high-cardinality growth with
        #: deterministic oldest-horizon-first eviction.  Suppression stays
        #: exact whenever the budget covers the identities alive inside the
        #: retention horizon.
        if dedup_memory_budget is not None:
            dedup_memory_budget = int(dedup_memory_budget)
            if dedup_memory_budget <= 0:
                raise ValueError(
                    "dedup_memory_budget must be a positive entry count or None"
                )
        self.dedup_memory_budget = dedup_memory_budget
        #: Back the stream summarizer's label/signature counters with
        #: count-min sketches (bounded memory at high label cardinality)
        #: instead of exact dicts.  Counts become one-sided estimates, which
        #: can only shift *plan choice* -- the emitted event stream is
        #: plan-independent, so conformance is unaffected.  Requires
        #: ``collect_statistics``.
        self.sketch_stats = bool(sketch_stats)
        if self.sketch_stats and not collect_statistics:
            raise ValueError(
                "sketch_stats requires collect_statistics=True: there is no "
                "summarizer to back with sketches otherwise"
            )
        #: Compiled, columnar ingest hot path.  Labels are interned to dense
        #: ints at the stream boundary, each batch run is decomposed into
        #: struct-of-arrays columns whose label-id column drives a vectorized
        #: leaf prefilter (with per-run dispatch memoisation), registered
        #: predicates are compiled once into flat closures, and window-expiry
        #: / adjacency enumeration use sorted-timestamp range scans.  Purely
        #: an execution-strategy switch: ``False`` restores the interpreted
        #: per-record path verbatim, and the two produce byte-identical event
        #: streams (``tests/test_columnar_conformance.py``).
        self.columnar = bool(columnar)

    @staticmethod
    def validate_default_window(value: Optional[float]) -> Optional[float]:
        """Normalise and validate a ``default_window`` value at configuration time.

        A negative (or zero, or NaN) window used to slip through construction
        and only blow up much later inside ``required_retention`` /
        ``TimeWindow`` -- far from the misconfiguration.  Every path that
        assigns ``default_window`` (constructors and the engine-level
        overrides) routes through here instead, so the error names the
        actual mistake.
        """
        if value is None:
            return None
        value = float(value)
        if not value > 0.0:  # also rejects NaN
            raise ValueError(
                f"default_window must be a positive duration in stream-time "
                f"units (or None for unbounded), got {value!r}"
            )
        return value


def _make_reorder_buffer(config: EngineConfig) -> Optional[MultiSourceReorderBuffer]:
    """Build the event-time buffer an :class:`EngineConfig` asks for (or ``None``).

    Shared by the single engine and the sharded parent so both resolve
    ``allowed_lateness`` / ``late_policy`` / ``idle_source_timeout``
    identically.
    """
    if config.allowed_lateness is None:
        return None
    return MultiSourceReorderBuffer(
        config.allowed_lateness,
        late_policy=config.late_policy,
        idle_timeout=config.idle_source_timeout,
    )


class RegisteredQuery:
    """Book-keeping for one continuous query registered with the engine."""

    def __init__(
        self,
        name: str,
        query: QueryGraph,
        window: TimeWindow,
        plan: QueryPlan,
        matcher: ContinuousQueryMatcher,
    ):
        self.name = name
        self.query = query
        self.window = window
        self.plan = plan
        self.matcher = matcher
        self.match_count = 0
        #: Number of times this query has been re-planned since registration
        #: (0 = still on its registration plan); bumped by
        #: :meth:`StreamWorksEngine.replan_query` and persisted through
        #: checkpoints.
        self.plan_version = 0
        #: Event sinks owned by this registration (e.g. the query-filtered
        #: ``on_match`` callback); detached from the engine on unregister.
        self.sinks: List[EventSink] = []

    def describe(self) -> str:
        """Return a one-paragraph description of the registration."""
        return (
            f"Query {self.name!r}: {self.query.edge_count()} edges, window={self.window}, "
            f"strategy={self.plan.strategy}, primitives={self.plan.primitive_count()}, "
            f"plan version={self.plan_version}, matches so far={self.match_count}"
        )


class StreamWorksEngine:
    """Continuous multi-query subgraph matching over a dynamic graph stream."""

    def __init__(
        self,
        default_window: Optional[float] = None,
        config: Optional[EngineConfig] = None,
    ):
        if config is None:
            config = EngineConfig(default_window=default_window)
        elif default_window is not None:
            config.default_window = EngineConfig.validate_default_window(default_window)
        self.config = config
        retention = TimeWindow(config.default_window) if config.default_window else TimeWindow(None)
        self.graph = DynamicGraph(window=retention)
        #: Event-time reorder buffer (``None`` unless
        #: ``EngineConfig(allowed_lateness=...)`` is set).  Always the
        #: multi-source buffer: with no ``source_id`` on the records it is
        #: byte-for-byte the single global watermark (regression-pinned),
        #: and sourced records get per-source watermarks with min-release.
        self.reorder: Optional[ReorderBuffer] = _make_reorder_buffer(config)
        #: Records processed through the batched fast path vs. the exact
        #: per-record path -- the deterministic signal that a workload kept
        #: (or lost) the fast path, independent of wall-clock noise.
        self.records_batched = 0
        self.records_per_record = 0
        #: Per-record-path records evicted by their own ingest (see
        #: :meth:`process_edge`); never matched.
        self.records_dead_on_arrival = 0
        #: Event-time horizon stamped by the event-time machinery: the
        #: reorder buffer's watermark when event-time ingestion is
        #: configured, or the global watermark a sharded parent attaches to
        #: every dispatched :class:`ShardBatch` (which keeps the horizon
        #: visible in per-shard ``metrics()`` even under the pool
        #: scheduler, where shard state lives in the workers).  Stays
        #: ``-inf`` on a plain direct-ingest engine; ``metrics()`` then
        #: reports the engine's own stream clock (largest timestamp
        #: offered) instead, and an end-of-stream ``flush`` can likewise
        #: carry a shard's reported horizon past the stamped watermark.
        self.event_time_watermark = float("-inf")
        self.summarizer: Optional[StreamSummarizer] = None
        if config.collect_statistics:
            self.summarizer = StreamSummarizer(
                track_triads=config.track_triads,
                triad_sample_cap=config.triad_sample_cap,
                sketch_stats=config.sketch_stats,
            )
        self.queries: Dict[str, RegisteredQuery] = {}
        self.dispatch = DispatchIndex(sketch=config.sketch_dispatch)
        #: Stream-boundary intern table: vertex/edge labels and predicate
        #: attribute names to dense ints.  Query vocabulary is interned at
        #: registration (deterministic: label order within the query, then
        #: attribute first-mention order); stream labels are admitted on
        #: first sight by the columnar fast path.  Ids are engine-internal
        #: -- snapshots persist the table, and pre-columnar snapshots
        #: rebuild it deterministically from registration + insertion order.
        self.interning = InternTable()
        #: Columnar hot-path observability: ordered runs decomposed into
        #: struct-of-arrays columns, records rejected by the label-id
        #: prefilter before any matcher work, and per-run dispatch-memo
        #: replays that skipped a full routing probe.
        self.batches_vectorized = 0
        self.records_prefiltered = 0
        self.dispatch_memo_hits = 0
        #: SJ-tree leaves skipped per record because every label-compatible
        #: compiled edge check rejected the record's attrs (local search
        #: over such a leaf provably finds nothing).
        self.leaves_pruned = 0
        self.collector = CollectingSink()
        self._sinks = MultiSink([self.collector])
        self._sequence = 0
        self.edges_processed = 0
        #: ``process_batch`` invocations so far -- the autosave cadence clock.
        self.batches_processed = 0
        #: Monotone snapshot epoch: bumped on every :meth:`checkpoint`, carried
        #: across :meth:`restore`, written into the snapshot manifest so the
        #: newest of several autosaves is identifiable.
        self.checkpoint_epoch = 0
        self.throughput = ThroughputMeter()
        self.latency = LatencyRecorder(cap=config.latency_sample_cap)
        #: Live plan-quality monitor (observed vs planned selectivity per
        #: SJ-Tree join).  Always constructed -- passive when
        #: ``replan_threshold`` is unset -- so ``metrics()["replan"]`` and
        #: snapshots are uniform across configurations.
        self.plan_monitor = PlanMonitor(threshold=config.replan_threshold)
        #: The ``edges_processed`` count at which the next automatic replan
        #: check is due (``None`` = automatic checks disabled).  Checks run at
        #: record/batch boundaries only -- never mid-run -- and the marker is
        #: persisted so a restored engine keeps the exact cadence.
        self._next_replan_check: Optional[int] = (
            config.replan_check_every
            if config.replan_threshold is not None and config.replan_check_every is not None
            else None
        )

    # ------------------------------------------------------------------
    # query registration
    # ------------------------------------------------------------------
    def register_query(
        self,
        query: QueryGraph,
        name: Optional[str] = None,
        window: Optional[float] = None,
        strategy: Optional[str] = None,
        decomposition: Optional[Decomposition] = None,
        on_match: Optional[callable] = None,
        dedupe_structural: Optional[bool] = None,
    ) -> RegisteredQuery:
        """Register a continuous query and return its handle.

        Parameters
        ----------
        query:
            The query graph.
        name:
            Unique name (defaults to the query graph's name).
        window:
            Query time window ``tW`` in stream-time units; falls back to the
            engine's default window; ``None`` means unbounded.
        strategy:
            Decomposition strategy override (see :class:`Strategy`).
        decomposition:
            Fully manual decomposition; overrides ``strategy``.
        on_match:
            Optional callback invoked with each :class:`MatchEvent`.
        dedupe_structural:
            Override the engine-level structural-deduplication setting for
            this query.
        """
        query_name = name or query.name
        if query_name in self.queries:
            raise ValueError(f"a query named {query_name!r} is already registered")
        if self.config.checkpoint_every is not None:
            # fail at registration, not at the Nth batch: an autosaving
            # engine can only hold queries that round-trip through the
            # snapshot (CustomPredicate does not)
            self._check_checkpointable(query, query_name)
        window_duration = window if window is not None else self.config.default_window
        query_window = TimeWindow(window_duration) if window_duration is not None else TimeWindow(None)

        planner = self._make_planner(strategy)
        if decomposition is not None:
            plan = planner.plan(query, primitives=decomposition.primitives)
        else:
            plan = planner.plan(query, strategy=strategy)

        matcher = ContinuousQueryMatcher(
            query=query,
            decomposition=plan.decomposition,
            graph=self.graph,
            window=query_window,
            dedupe_structural=(
                dedupe_structural
                if dedupe_structural is not None
                else self.config.dedupe_structural
            ),
            store_complete_matches=self.config.store_complete_matches,
            dedup_memory_budget=self.config.dedup_memory_budget,
            columnar=self.config.columnar,
        )
        registration = RegisteredQuery(query_name, query, query_window, plan, matcher)
        self.queries[query_name] = registration
        if on_match is not None:
            # filter by query name so the callback only sees this query's
            # events, and track the sink so unregistering detaches it
            sink = QueryFilterSink(query_name, CallbackSink(on_match))
            registration.sinks.append(sink)
            self._sinks.add(sink)
        self.dispatch.register(query_name, matcher.tree.leaves())
        intern_query_vocabulary(self.interning, query)
        self._update_retention()
        return registration

    @staticmethod
    def _check_checkpointable(query: QueryGraph, query_name: str) -> None:
        """Reject queries that cannot survive a checkpoint (autosave engines)."""
        from ..query.serialize import QuerySerializationError, query_to_dict

        try:
            query_to_dict(query)
        except QuerySerializationError as error:
            raise ValueError(
                f"query {query_name!r} cannot be registered on an autosaving "
                f"engine (checkpoint_every is set): {error}"
            ) from error

    def unregister_query(self, name: str) -> None:
        """Remove a registered query (its partial matches are discarded).

        The query's dispatch-index entries and its ``on_match`` callback sink
        are detached as well, so an unregistered query neither consumes ingest
        work nor fires callbacks.
        """
        if name not in self.queries:
            raise KeyError(name)
        registration = self.queries.pop(name)
        for sink in registration.sinks:
            self._sinks.remove(sink)
        registration.sinks.clear()
        self.dispatch.unregister(name)
        self._update_retention()

    def add_sink(self, sink: EventSink) -> None:
        """Attach an additional event sink.

        ``sink.deliver(event)`` is called for every subsequent
        :class:`~repro.streaming.events.MatchEvent`, in emission order,
        after the engine-owned collector.  Sinks are not serialised by
        :meth:`checkpoint`; re-attach them after :meth:`restore`.
        """
        self._sinks.add(sink)

    def _make_planner(self, strategy: Optional[str]) -> QueryPlanner:
        """Build a planner over the current statistics.

        Shared by registration, replanning and the plan monitor so all three
        score selectivity with the *same* estimator construction -- the
        monitor's post-replan error is exactly zero only because its numbers
        reproduce the planner's.
        """
        return QueryPlanner(
            summary=self.summarizer.summary() if self.summarizer else None,
            config=PlannerConfig(
                strategy=strategy or self.config.plan_strategy,
                primitive_size=self.config.primitive_size,
                conditional_ordering=self.config.replan_threshold is not None,
            ),
        )

    def replan_query(self, name: str, strategy: Optional[str] = None) -> RegisteredQuery:
        """Re-plan a registered query using the statistics collected so far.

        The paper leaves "updating the query decomposition and search
        strategy" from continuously collected statistics as future work; this
        method implements the mechanism (and :meth:`run_replan_check` closes
        the loop automatically).  The query's SJ-Tree is rebuilt from the new
        plan and the live partial-match state is **migrated**: every
        admissible partial over the retained window is rebuilt in the new
        tree by replaying the window store through the new plan's leaves (see
        :meth:`_migrate_matcher_state`), so an event that was mid-assembly at
        the moment of re-planning is still detected when its remaining edges
        arrive.  Already-reported matches stay reported (the matcher's
        duplicate-suppression memory carries over), so a replan changes
        neither the match set nor the event order -- only the cost of
        computing it.  Must be called at a quiescent boundary (between
        records or batches), which is the only place the engine itself ever
        replans.
        """
        if name not in self.queries:
            raise KeyError(name)
        registration = self.queries[name]
        planner = self._make_planner(strategy)
        new_plan = planner.plan(registration.query, strategy=strategy)
        old_matcher = registration.matcher
        new_matcher = ContinuousQueryMatcher(
            query=registration.query,
            decomposition=new_plan.decomposition,
            graph=self.graph,
            window=registration.window,
            dedupe_structural=old_matcher.dedupe_structural,
            store_complete_matches=old_matcher.store_complete_matches,
            expiry_min_interval=old_matcher.expiry_min_interval,
            dedup_memory_budget=old_matcher.dedup_memory_budget,
            # matcher construction is the compile point, so a migrated plan
            # always runs on freshly compiled predicate tables -- never the
            # old plan's closures
            columnar=old_matcher.columnar,
        )
        # carry the duplicate-suppression memory (the same store objects) so
        # re-planning never causes an already-delivered event to be delivered
        # again -- the migration replay below relies on this to stay silent
        new_matcher.adopt_dedup_memories(*old_matcher.dedup_memories())
        migrated, dropped = self._migrate_matcher_state(old_matcher, new_matcher)
        registration.plan = new_plan
        registration.matcher = new_matcher
        registration.plan_version += 1
        self.plan_monitor.record_replan(migrated, dropped)
        # the SJ-Tree was rebuilt, so the dispatch index must be re-pointed at
        # the new leaves
        self.dispatch.register(name, new_matcher.tree.leaves())
        return registration

    def _migrate_matcher_state(
        self,
        old_matcher: ContinuousQueryMatcher,
        new_matcher: ContinuousQueryMatcher,
    ) -> tuple:
        """Move live match state from the old SJ-Tree into the new one.

        The new tree's shape need not resemble the old one's, so partials are
        not copied node-for-node; instead the retained window store is
        *replayed* through the new plan's leaves, which rebuilds every
        admissible partial the new tree can hold.  The replay emits nothing:
        every complete match over retained edges was already reported when
        its last edge was dispatched (the engine emits at a completion's last
        edge on both ingest paths), so the carried duplicate-suppression
        memory silences it, and window-inadmissible combinations are
        re-rejected by the same span checks that rejected them live.

        The root collection (complete-match history, when
        ``store_complete_matches`` is on) is copied verbatim first: the root
        subgraph is the full query under *every* plan, and the replay cannot
        rebuild suppressed completions.

        Returns ``(migrated, dropped)``: partials stored in the new tree
        after the replay, and old partials referencing already-evicted edges,
        which cannot be rebuilt.  A dropped partial's earliest edge is older
        than ``now - retention <= now - window``, so on an in-order stream it
        could never have completed anyway; under the ``process_degraded``
        late policy a replan boundary therefore acts as one additional expiry
        sweep (deterministic, and counted in
        ``metrics()["replan"]["partials_dropped"]``).
        """
        dropped = 0
        for node in old_matcher.tree.nodes.values():
            if node.parent_id is None:
                continue
            for match in node.all_matches():
                if any(
                    not self.graph.has_edge(match_edge.id)
                    for match_edge in match.edge_map.values()
                ):
                    dropped += 1
        if new_matcher.store_complete_matches:
            new_root = new_matcher.tree.root
            for match in old_matcher.tree.root.all_matches():
                new_root.store_match(match)
        leaves = new_matcher.tree.leaves()
        for edge in self.graph.edges():
            new_matcher.process_edge_leaves(edge, leaves)
        migrated = sum(
            node.match_count()
            for node in new_matcher.tree.nodes.values()
            if node.parent_id is not None
        )
        # counter continuity: the replay is internal bookkeeping, not stream
        # work, so the matcher keeps the counters it had before the replan
        new_matcher.stats = old_matcher.stats
        return migrated, dropped

    def replan_all(self, strategy: Optional[str] = None) -> None:
        """Re-plan every registered query (see :meth:`replan_query`)."""
        for name in list(self.queries):
            self.replan_query(name, strategy=strategy)

    def run_replan_check(self) -> List[str]:
        """Score every query's plan against live statistics; replan the drifted.

        One *check* scores each registered query: the worst per-primitive
        relative error between the plan's recorded selectivity estimates and
        what the current statistics would estimate (a plan made before any
        statistics existed scores infinite, so it is replaced at the first
        check with data).  Queries whose error exceeds
        ``EngineConfig.replan_threshold`` are re-planned in registration
        order via :meth:`replan_query`.  Only plans produced by the
        selectivity-aware strategies are scored -- the other strategies never
        chose by cardinality, so there is no estimate to drift from.

        Called automatically on the ``replan_check_every`` cadence; public so
        a sharded parent (or an operator) can drive checks explicitly.
        Immediately re-running the check is idempotent: a freshly-replanned
        query re-scores to exactly zero error because the monitor and the
        planner share one estimator construction.  Returns the names of the
        queries replanned.
        """
        if self.config.replan_threshold is None:
            raise RuntimeError(
                "run_replan_check requires EngineConfig(replan_threshold=...): "
                "without a threshold there is nothing to trigger"
            )
        monitor = self.plan_monitor
        monitor.checks_run += 1
        estimator = self._make_planner(None)._estimator()
        if estimator is None:  # no live statistics yet: nothing to compare
            return []
        replanned: List[str] = []
        for name in list(self.queries):
            registration = self.queries[name]
            if registration.plan.strategy not in (Strategy.SELECTIVITY, Strategy.ANTI_SELECTIVE):
                continue
            error = monitor.score(estimator, registration.query, registration.plan)
            monitor.observe_error(name, error)
            if error > monitor.threshold:
                monitor.triggers_fired += 1
                self.replan_query(name)
                replanned.append(name)
        return replanned

    def _maybe_replan_check(self) -> None:
        """Run automatic replan checks the processed-edge cadence has earned.

        Called at record/batch boundaries (the engine's quiescent points --
        a replay-based migration mid-run would race the run's deferred
        emissions).  A batch that crosses several cadence marks runs several
        catch-up checks, so the check count is a deterministic function of
        ``edges_processed`` regardless of how the stream was batched.
        """
        if self._next_replan_check is None:
            return
        while self.edges_processed >= self._next_replan_check:
            self._next_replan_check += self.config.replan_check_every
            self.run_replan_check()

    def _update_retention(self) -> None:
        """Keep the graph retention window at least as long as every query window."""
        self.graph.window = required_retention(
            (q.window for q in self.queries.values()), self.config.default_window
        )

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------
    def register_source(self, source_id: str) -> None:
        """Declare a stream source (collector) before its first record.

        Multi-source event-time only: the release watermark is the minimum
        across the known sources' watermarks, so pre-registering the
        collector set guarantees nothing is released until every collector
        has spoken (or gone idle under ``idle_source_timeout``) -- the
        condition for sorted-merge-exact results regardless of arrival
        interleaving.  Unregistered sources join on their first record
        instead (see
        :meth:`repro.streaming.sources.MultiSourceReorderBuffer.register_source`).
        Raises ``RuntimeError`` when event-time ingestion is not configured.
        """
        if self.reorder is None:
            raise RuntimeError(
                "register_source requires event-time ingestion: set "
                "EngineConfig(allowed_lateness=...) so the engine owns a reorder buffer"
            )
        self.reorder.register_source(source_id)

    def process_edge(
        self,
        source: VertexId,
        target: VertexId,
        label: str,
        timestamp: Timestamp,
        attrs: Optional[Mapping[str, Any]] = None,
        source_label: str = "node",
        target_label: str = "node",
        source_attrs: Optional[Mapping[str, Any]] = None,
        target_attrs: Optional[Mapping[str, Any]] = None,
    ) -> List[MatchEvent]:
        """Ingest one raw edge and run the affected registered queries against it.

        With the dispatch index enabled (the default) only the (query, leaf)
        pairs whose primitives can bind the edge's label and endpoint labels
        are searched; with it disabled every leaf of every query is searched.
        Both paths yield identical events in identical order.

        An edge so late that it falls outside the retention horizon on
        arrival (``timestamp <= stream clock - retention``) is evicted by
        its own ingest and is **not** matched: it is counted in
        ``records_dead_on_arrival`` instead.  Matching it used to be
        erratic -- the evicted edge only found partners when *unrelated*
        edges happened to keep its endpoint vertices alive, and with
        statistics enabled the summarizer crashed on the evicted
        endpoints -- whereas skipping it is deterministic.  Streams that
        genuinely carry such records belong on the event-time path
        (``allowed_lateness`` + late policy), which handles them
        explicitly.
        """
        stopwatch_start = perf_counter() if self.config.record_latency else None
        self.throughput.start()
        self.records_per_record += 1
        edge = self.graph.ingest(
            source,
            target,
            label,
            timestamp,
            attrs,
            source_label=source_label,
            target_label=target_label,
            source_attrs=source_attrs,
            target_attrs=target_attrs,
        )
        events: List[MatchEvent] = []
        if self.graph.has_edge(edge.id):
            if self.summarizer is not None:
                self.summarizer.observe(self.graph, edge)
            found: List = []
            self._collect_matches(edge, found, expire=True)
            # edges_processed is bumped only after matching, so at emission
            # time it is the index of the triggering edge in this engine's
            # ingest stream
            self._emit_trigger(found, edge.timestamp, self.edges_processed, events)
        else:
            # dead on arrival: the ingest's own eviction sweep removed the
            # edge (it is outside the retention horizon), so there is
            # nothing coherent to match it against
            self.records_dead_on_arrival += 1
        self.edges_processed += 1
        self._maybe_auto_replan()
        self.throughput.add(1)
        self.throughput.stop()
        if stopwatch_start is not None:
            self.latency.record(perf_counter() - stopwatch_start)
        return events

    def _collect_matches(
        self, edge: Edge, found: List, expire: bool
    ) -> None:
        """Run the registered queries against one ingested edge.

        Appends ``(registration, match)`` pairs for every new complete match,
        in discovery order; the caller anchors and orders the emission (see
        :meth:`_emit_trigger`).  ``expire=False`` skips the per-matcher
        expiry sweep (the batched path sweeps once per batch instead).
        """
        if self.config.use_dispatch_index:
            if self.dispatch.front_rejects(edge.label):
                # sketch front proved no registered leaf can bind this label;
                # skip endpoint-label resolution and the dict probe entirely
                return
            source_label = (
                self.graph.vertex(edge.source).label if self.graph.has_vertex(edge.source) else None
            )
            target_label = (
                self.graph.vertex(edge.target).label if self.graph.has_vertex(edge.target) else None
            )
            for owner, leaf_ids in self.dispatch.candidates(edge.label, source_label, target_label):
                registration = self.queries.get(owner)
                if registration is None:  # pragma: no cover - defensive
                    continue
                matcher = registration.matcher
                if expire:
                    matcher.expire_partials(edge.timestamp)
                leaves = [matcher.tree.node(leaf_id) for leaf_id in leaf_ids]
                for match in matcher.process_edge_leaves(edge, leaves):
                    found.append((registration, match))
        else:
            for registration in self.queries.values():
                matcher = registration.matcher
                if expire:
                    matches = matcher.process_edge(edge)
                else:
                    matches = matcher.process_edge_leaves(edge, matcher.tree.leaves())
                for match in matches:
                    found.append((registration, match))

    def _emit_trigger(
        self,
        completions: List,
        detected_at: float,
        trigger_index: int,
        events: List[MatchEvent],
    ) -> None:
        """Emit all completions anchored at one trigger edge, canonically ordered.

        Within one trigger the discovery order of completions is an artefact
        of the active plan (leaf iteration and join order), so it cannot
        survive a replan.  Events are ordered by (query registration order,
        canonical match key) -- a pure function of the registered queries and
        the match content -- before sequence numbers are assigned, which
        makes the emitted order identical under every plan of the same
        queries, and therefore invariant under replanning.
        """
        if not completions:
            return
        if len(completions) > 1:
            order = {name: index for index, name in enumerate(self.queries)}
            completions.sort(
                key=lambda item: (order[item[0].name], _canonical_match_key(item[1]))
            )
        for registration, match in completions:
            event = MatchEvent(
                query_name=registration.name,
                match=match,
                detected_at=detected_at,
                sequence=self._sequence,
                trigger_index=trigger_index,
            )
            self._sequence += 1
            registration.match_count += 1
            self._sinks.deliver(event)
            events.append(event)

    def _maybe_auto_replan(self) -> None:
        if (
            self.config.auto_replan_interval is not None
            and self.edges_processed % self.config.auto_replan_interval == 0
        ):
            self.replan_all()

    def expire_all_partials(self, now: float) -> int:
        """Sweep every matcher's stored partial matches against ``now``.

        The batched ingest path runs this sweep (at the batch's expiry
        anchor) for every batch it processes.  The sharded engine calls it
        directly to deliver that same batch-cadence sweep to a shard that
        received *no* records in a batch -- the sweep sequence, not just
        the final clock, determines which partials survive once streams may
        carry late records, so a shard must not skip the sweeps the single
        engine ran.  Returns the number of partials dropped.
        """
        return sum(
            registration.matcher.expire_partials(now)
            for registration in self.queries.values()
        )

    def process_record(self, record: StreamEdge) -> List[MatchEvent]:
        """Ingest one :class:`StreamEdge` record.

        With event-time ingestion configured (``allowed_lateness``) the
        record is admitted into the reorder buffer instead of being
        processed immediately; the returned events belong to whatever
        watermark-closed prefix the admission released (possibly empty, and
        possibly triggered by *earlier* records).  Call :meth:`flush` at end
        of stream to release the tail.
        """
        if self.reorder is not None:
            events = self._process_with_reorder([record])
        else:
            events = self._process_record_direct(record)
        self._maybe_replan_check()
        return events

    def _process_record_direct(self, record: StreamEdge) -> List[MatchEvent]:
        """Run one record through the exact per-record path, bypassing reorder."""
        return self.process_edge(
            record.source,
            record.target,
            record.label,
            record.timestamp,
            record.attrs,
            source_label=record.source_label,
            target_label=record.target_label,
            source_attrs=record.source_attrs,
            target_attrs=record.target_attrs,
        )

    def process_batch(
        self,
        records: Sequence[StreamEdge],
        expiry_anchor: Optional[float] = None,
    ) -> List[MatchEvent]:
        """Ingest a batch of records; returns all events raised by the batch.

        ``expiry_anchor`` overrides the partial-match expiry anchor (step 3
        below) with an *earlier* time.  Expiry is a pruning optimisation --
        anything it drops could never complete -- so an earlier anchor only
        retains more state and never changes the match set.  The sharded
        engine passes the global batch minimum here so a shard sweeping its
        own (later-starting) sub-batch keeps exactly the partials the
        single engine keeps, which matters when later batches may still
        carry late records that could complete them.

        With the dispatch index enabled this takes the batched fast path
        (the paper's section 2.1 formulation is batch-oriented):

        1. the whole batch is ingested into the graph with eviction deferred
           (evicting against the batch's latest timestamp up front could
           remove edges that its earlier edges can still legally match);
        2. the summarizer folds the batch in one call;
        3. partial-match expiry runs **once per matcher per batch**, anchored
           at the batch's earliest timestamp (the conservative anchor: any
           partial it drops would also have been dropped by the per-edge
           path before the first edge of the batch);
        4. every edge is dispatched through the index;
        5. one deferred graph-eviction sweep closes the batch.

        Per-edge latency samples recorded in batch mode time the dispatch
        and matching step only -- ingest, expiry and eviction are amortised
        batch-level work -- so they are not directly comparable with
        :meth:`process_edge` samples, which include ingest.

        Steps 1-5 produce exactly the same events as feeding the records
        through :meth:`process_record` one at a time.  An embedding whose
        edges all lie inside the batch is *discovered* when its first
        dispatched edge seeds a leaf (its remaining edges are already in the
        graph), but its emission is deferred to the dispatch of its last
        in-batch edge -- the edge the per-record path completes it on -- so
        detection timestamps, trigger indices and event order are identical
        to single-edge mode, and independent of both the batching and the
        active plan (see :meth:`_run_fast_path`).

        The equivalence argument requires timestamps to be non-decreasing
        *within* a fast-path run (lateness relative to earlier batches is
        fine): with a disordered run, deferred eviction would let a late
        edge match history that the per-edge path had already evicted.  An
        internally out-of-order batch is therefore split at its inversion
        points into maximal non-decreasing runs, and steps 1-5 execute once
        per run -- the ordered stretches keep the fast path instead of the
        whole batch demoting to the per-record loop (which remains only as
        the ``use_dispatch_index=False`` path).  The contract is
        compositional: processing a disordered batch is *exactly* (event
        for event) processing each of its maximal ordered runs as its own
        batch, in arrival order.  Batch boundaries already carry semantic
        weight once records may be late -- the per-batch expiry sweep
        sequence decides which partials a late record can still complete,
        and eager per-record eviction prunes against the processing-order
        clock -- so, as with any batch split of a late-carrying stream,
        the run-split result can legitimately retain (event-time
        admissible) matches that the per-record path's eager eviction
        would have discarded.  For in-order input the two paths report
        identical match multisets, as before.  Streams whose disorder
        should be *repaired* rather than split around belong on the
        event-time path below.

        With event-time ingestion configured (``allowed_lateness``) the
        batch is admitted into the reorder buffer instead: the
        watermark-closed prefix is released and processed as a single
        in-order fast-path batch, and genuinely-late records follow the
        configured late policy.  ``expiry_anchor`` is reserved for direct
        (unbuffered) ingestion and rejected in that mode.
        """
        records = list(records)
        if self.reorder is not None:
            if expiry_anchor is not None:
                raise ValueError(
                    "expiry_anchor is not supported with event-time ingestion: "
                    "the reorder buffer decides when records are processed"
                )
            events = self._process_with_reorder(records)
        elif not records:
            events = []
        else:
            events = self._process_batch_direct(records, expiry_anchor)
        self._maybe_replan_check()
        self.batches_processed += 1
        self._maybe_autosave()
        return events

    def _maybe_autosave(self) -> None:
        """Checkpoint to the configured path when the batch cadence is due.

        An autosave failure must not look like a processing failure: by the
        time the cadence fires the batch IS fully processed (state mutated,
        events delivered to the collector), so the error is re-raised as a
        :class:`~repro.persistence.snapshot.SnapshotError` that says so --
        the caller recovers the batch's events from :meth:`events` and must
        *not* re-feed the batch.
        """
        if (
            self.config.checkpoint_every is None
            or self.batches_processed % self.config.checkpoint_every != 0
        ):
            return
        from ..persistence.snapshot import SnapshotError

        try:
            self.checkpoint(self.config.checkpoint_path)
        except Exception as error:
            raise SnapshotError(
                f"autosave to {self.config.checkpoint_path!r} failed after batch "
                f"{self.batches_processed}: {error}. The batch itself was fully "
                f"processed -- its events are in engine.events(); do NOT re-feed "
                f"it. Fix the checkpoint target (or unset checkpoint_every) and "
                f"continue."
            ) from error

    def _process_with_reorder(self, records: Sequence[StreamEdge]) -> List[MatchEvent]:
        """Admit records into the reorder buffer; process what it releases.

        The watermark-closed prefix (if any) is processed first as an
        in-order batch on the fast path, then any late records the
        ``process_degraded`` policy handed back run on the exact per-record
        path -- after the prefix, so they see the most history the store
        can still offer.  Under the ``drop`` policy late records are only
        counted (see ``metrics()["reorder"]``).
        """
        late = self.reorder.offer_all(records)
        ready = self.reorder.drain_ready()
        return self._process_released(ready, late, self.reorder.watermark)

    def _process_released(
        self,
        ready: Sequence[StreamEdge],
        late: Sequence[StreamEdge],
        watermark: float,
    ) -> List[MatchEvent]:
        """Process one buffer release: a sorted ready prefix + late hand-backs.

        ``watermark`` is the buffer's watermark at the moment of release --
        passed explicitly (rather than read back from the buffer) so the
        async ingest front-end, whose admission thread may already be ahead,
        stamps exactly the value the synchronous path would have.
        """
        self.event_time_watermark = watermark
        events: List[MatchEvent] = []
        if ready:
            events.extend(self._process_batch_direct(list(ready)))
        for record in late:
            events.extend(self._process_record_direct(record))
        return events

    def _process_flushed(
        self, remainder: List[StreamEdge], watermark: Optional[float] = None
    ) -> List[MatchEvent]:
        """Process the buffer's end-of-stream tail (shared with the async front-end).

        ``watermark`` is accepted for signature parity with the sharded
        engine (the async front-end captures it under its buffer lock) but
        unused here: the synchronous single-engine flush does not stamp a
        watermark, and the async path must match it byte for byte.
        """
        return self._process_batch_direct(remainder)

    def flush(self) -> List[MatchEvent]:
        """Release and process everything still held by the reorder buffer.

        Call at end of stream (nothing will arrive to advance the watermark
        past the buffered tail -- including the tail a min-watermark held
        for a slow source).  Returns the tail's events; a no-op returning
        ``[]`` when event-time ingestion is not configured.
        """
        if self.reorder is None:
            return []
        remainder = self.reorder.flush()
        if not remainder:
            return []
        return self._process_flushed(remainder)

    def _process_batch_direct(
        self,
        records: List[StreamEdge],
        expiry_anchor: Optional[float] = None,
    ) -> List[MatchEvent]:
        """Process a batch immediately: fast path per ordered run (see above)."""
        if not self.config.use_dispatch_index:
            events: List[MatchEvent] = []
            for record in records:
                events.extend(self._process_record_direct(record))
            return events
        self.throughput.start()
        events = []
        for start, end in ordered_run_slices(records):
            self._run_fast_path(records[start:end], expiry_anchor, events)
        self.throughput.add(len(records))
        self.throughput.stop()
        return events

    def _run_fast_path(
        self,
        records: Sequence[StreamEdge],
        expiry_anchor: Optional[float],
        events: List[MatchEvent],
    ) -> None:
        """Steps 1-5 of the batched fast path over one non-decreasing run.

        A record already outside the retention horizon at its ingest point
        (``timestamp`` expired against the running stream clock) is *dead on
        arrival*: it is ingested and immediately evicted -- exactly the
        per-record path's behaviour -- counted in
        ``records_dead_on_arrival``, and never matched or folded into the
        statistics.  The batched path used to keep such records alive
        within their run (deferred eviction) and match them, which made the
        outcome depend on how the stream happened to be batched; a
        checkpoint/restore cycle re-batches the remainder of the stream, so
        resume exactness requires the batching-independent skip.  Within a
        non-decreasing run dead records precede any record that advances
        the clock, so the mid-run eviction sweep removes only them.
        """
        ingested: List[Optional[Edge]] = []
        window = self.graph.window
        for record in records:
            edge = self.graph.ingest(
                record.source,
                record.target,
                record.label,
                record.timestamp,
                record.attrs,
                source_label=record.source_label,
                target_label=record.target_label,
                source_attrs=record.source_attrs,
                target_attrs=record.target_attrs,
                evict=False,
            )
            if window.bounded and window.is_expired(edge.timestamp, self.graph.current_time):
                # dead on arrival: mirror process_edge's ingest-then-evict
                self.graph.evict_expired()
                self.records_dead_on_arrival += 1
                ingested.append(None)
            else:
                ingested.append(edge)
        self.records_batched += len(records)
        if self.summarizer is not None:
            self.summarizer.observe_batch(
                self.graph, [edge for edge in ingested if edge is not None]
            )
        # the expiry anchor is the run's raw minimum (dead records included):
        # the sharded engine anchors at the global run minimum, and single
        # and sharded sweeps must be identical because with late records the
        # sweep sequence decides which partials survive
        batch_start = records[0].timestamp  # the run is non-decreasing
        if expiry_anchor is not None:
            batch_start = min(batch_start, expiry_anchor)
        for registration in self.queries.values():
            registration.matcher.expire_partials(batch_start)
        record_latency = self.config.record_latency
        # Emission anchoring: the run is pre-ingested, so a completion whose
        # edges all lie inside the run is *discovered* at whichever of its
        # edges happens to be dispatched first -- and which edge that is
        # depends on the active plan's leaf partition.  To keep detection
        # plan-independent (and equal to the per-record path), every
        # completion's emission is deferred to the dispatch of its LAST
        # in-run edge -- exactly the edge the per-record path would have
        # completed it on.  Deferral is safe within a run: nothing is
        # evicted mid-run (dead-on-arrival records are removed before any
        # later record is dispatched and can belong to no completion), and
        # the duplicate-suppression memory prevents a deferred match from
        # being rediscovered at its later edges.
        positions: Dict[int, int] = {}
        for index, edge in enumerate(ingested):
            if edge is not None:
                positions[edge.id] = index
        deferred: Dict[int, List] = {}
        start_edges_processed = self.edges_processed
        columnar = self.config.columnar
        if columnar:
            self.batches_vectorized += 1
            interner = self.interning
            graph = self.graph
            dispatch = self.dispatch
            # Struct-of-arrays decomposition of the run: parallel source /
            # target / label-id / timestamp columns (dead-on-arrival slots
            # hold sentinels).  The label-id column drives the leaf
            # prefilter: dispatch fate is resolved once per distinct label
            # id (admitting unseen stream labels into the intern table),
            # then replayed per record.
            src_col: List[Optional[VertexId]] = []
            dst_col: List[Optional[VertexId]] = []
            lid_col: List[int] = []
            ts_col: List[Timestamp] = []
            for edge in ingested:
                if edge is None:
                    src_col.append(None)
                    dst_col.append(None)
                    lid_col.append(-1)
                    ts_col.append(0.0)
                else:
                    src_col.append(edge.source)
                    dst_col.append(edge.target)
                    lid_col.append(interner.intern(edge.label))
                    ts_col.append(edge.timestamp)
            # Per-run dispatch memos, all keyed on dense ints.  Safe because
            # everything they cache is constant between run boundaries:
            # registrations and replans happen only between runs, matching
            # never mutates the graph, and dead-on-arrival evictions all
            # precede the match loop.  Each entry carries the
            # dispatch-counter deltas of the probe it replaces and a hit
            # replays them, so ``metrics()["dispatch"]`` stays byte-identical
            # to the interpreted path.
            front_memo: Dict[int, tuple] = {}
            route_memo: Dict[tuple, tuple] = {}
            vertex_memo: Dict[Optional[VertexId], tuple] = {}
        for index, edge in enumerate(ingested):
            if edge is None:  # dead on arrival: counted, never matched
                self.edges_processed += 1
                continue
            stopwatch_start = perf_counter() if record_latency else None
            found: List = []
            if columnar:
                lid = lid_col[index]
                fate = front_memo.get(lid)
                if fate is None:
                    probes0 = dispatch.front_probes
                    rejections0 = dispatch.front_rejections
                    lookups0 = dispatch.lookups
                    rejected = dispatch.front_rejects(edge.label)
                    fate = (
                        rejected,
                        dispatch.front_probes - probes0,
                        dispatch.front_rejections - rejections0,
                        dispatch.lookups - lookups0,
                    )
                    front_memo[lid] = fate
                else:
                    self.dispatch_memo_hits += 1
                    dispatch.front_probes += fate[1]
                    dispatch.front_rejections += fate[2]
                    dispatch.lookups += fate[3]
                if fate[0]:
                    self.records_prefiltered += 1
                else:
                    src_vertex = src_col[index]
                    entry = vertex_memo.get(src_vertex)
                    if entry is None:
                        if src_vertex is not None and graph.has_vertex(src_vertex):
                            label = graph.vertex(src_vertex).label
                            entry = (
                                interner.intern(label) if label is not None else -1,
                                label,
                            )
                        else:
                            entry = (-1, None)
                        vertex_memo[src_vertex] = entry
                    sid, source_label = entry
                    dst_vertex = dst_col[index]
                    entry = vertex_memo.get(dst_vertex)
                    if entry is None:
                        if dst_vertex is not None and graph.has_vertex(dst_vertex):
                            label = graph.vertex(dst_vertex).label
                            entry = (
                                interner.intern(label) if label is not None else -1,
                                label,
                            )
                        else:
                            entry = (-1, None)
                        vertex_memo[dst_vertex] = entry
                    tid, target_label = entry
                    route_key = (lid, sid, tid)
                    route = route_memo.get(route_key)
                    if route is None:
                        lookups0 = dispatch.lookups
                        matched0 = dispatch.entries_matched
                        skipped0 = dispatch.entries_skipped
                        false0 = dispatch.front_false_positives
                        groups: List = []
                        for owner, leaf_ids in dispatch.candidates(
                            edge.label, source_label, target_label
                        ):
                            owner_registration = self.queries.get(owner)
                            if owner_registration is None:  # pragma: no cover - defensive
                                continue
                            matcher = owner_registration.matcher
                            tree = matcher.tree
                            compiled = matcher.compiled
                            # Per-leaf compiled prefilter plan: the checks of
                            # the leaf's label-compatible query edges.  Local
                            # search only finds embeddings *containing* the
                            # new edge, so a leaf where every such check
                            # rejects the edge's attrs provably yields no
                            # primitive and can be skipped per record.
                            # ``None`` in place of the list = never prunable
                            # (an always-true check, or no compiled table).
                            leaf_checks: List = []
                            for leaf_id in leaf_ids:
                                leaf = tree.node(leaf_id)
                                checks: Optional[List] = None
                                if compiled is not None:
                                    checks = []
                                    for query_edge in leaf.subgraph.edges():
                                        if (
                                            query_edge.label is None
                                            or query_edge.label == edge.label
                                        ):
                                            check = compiled.edge_checks[query_edge.id]
                                            if check is None:
                                                checks = None
                                                break
                                            checks.append(check)
                                leaf_checks.append((leaf, checks))
                            groups.append((owner_registration, leaf_checks))
                        route = (
                            groups,
                            dispatch.lookups - lookups0,
                            dispatch.entries_matched - matched0,
                            dispatch.entries_skipped - skipped0,
                            dispatch.front_false_positives - false0,
                        )
                        route_memo[route_key] = route
                    else:
                        self.dispatch_memo_hits += 1
                        dispatch.lookups += route[1]
                        dispatch.entries_matched += route[2]
                        dispatch.entries_skipped += route[3]
                        dispatch.front_false_positives += route[4]
                    route_groups = route[0]
                    if not route_groups:
                        self.records_prefiltered += 1
                    for owner_registration, leaf_checks in route_groups:
                        matcher = owner_registration.matcher
                        survivors: List = []
                        for leaf, checks in leaf_checks:
                            if checks is None:
                                survivors.append(leaf)
                                continue
                            attrs = edge.attrs
                            for check in checks:
                                if check(attrs):
                                    survivors.append(leaf)
                                    break
                            else:
                                self.leaves_pruned += 1
                        if survivors:
                            for match in matcher.process_edge_leaves(edge, survivors):
                                found.append((owner_registration, match))
                        else:
                            # a fully-pruned visit's only observable effect
                            # is the per-matcher edge counter; replay it so
                            # matcher stats stay byte-identical
                            matcher.stats.edges_processed += 1
            else:
                self._collect_matches(edge, found, expire=False)
            for registration, match in found:
                target = index  # every completion contains the current edge
                for match_edge in match.edge_map.values():
                    position = positions.get(match_edge.id)
                    if position is not None and position > target:
                        target = position
                deferred.setdefault(target, []).append((registration, match))
            due = deferred.pop(index, None)
            if due:
                self._emit_trigger(
                    due,
                    ts_col[index] if columnar else edge.timestamp,
                    self.edges_processed,
                    events,
                )
            self.edges_processed += 1
            if stopwatch_start is not None:
                self.latency.record(perf_counter() - stopwatch_start)
        self.graph.evict_expired()
        # replans happen at run boundaries only: the replay-based migration
        # assumes quiescence, and a mid-run replay would mark the run's
        # still-deferred completions as reported without delivering them.
        # One catch-up replan covers however many cadence marks the run
        # crossed (replanning is idempotent over unchanged statistics).
        interval = self.config.auto_replan_interval
        if (
            interval is not None
            and self.edges_processed // interval > start_edges_processed // interval
        ):
            self.replan_all()

    def process_stream(self, stream: Iterable[StreamEdge]) -> List[MatchEvent]:
        """Ingest an entire stream; returns all events (also kept in ``collector``).

        With event-time ingestion configured the buffered tail is flushed
        once the stream is exhausted, so the returned events are complete.
        """
        events: List[MatchEvent] = []
        for record in stream:
            events.extend(self.process_record(record))
        events.extend(self.flush())
        return events

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> Dict[str, Any]:
        """Write an atomic snapshot of the engine's full state to ``path``.

        The snapshot covers everything the resume contract needs: the
        window store (index iteration orders included), every matcher's
        partial-match collections and duplicate-suppression memory, the
        reorder buffer (contents, watermark, late counters), the stream
        summarizer (sampler RNG state included), registered queries with
        their exact plans, collected events, and all deterministic
        counters.  The write is atomic (temp file + fsync + rename) with a
        monotone ``epoch`` in the manifest, so a crash mid-checkpoint
        leaves the previous snapshot intact.  Returns the manifest.

        ``EngineConfig(checkpoint_every=N, checkpoint_path=...)`` calls
        this automatically every N ``process_batch`` invocations.
        """
        from ..persistence.snapshot import write_snapshot
        from ..persistence.state import ENGINE_KIND, engine_sections

        self.checkpoint_epoch += 1
        return write_snapshot(path, ENGINE_KIND, self.checkpoint_epoch, engine_sections(self))

    @classmethod
    def restore(cls, path: str) -> "StreamWorksEngine":
        """Reconstruct an engine from a :meth:`checkpoint` snapshot.

        The contract is exact resume: ``restore(checkpoint(E))`` followed
        by the remainder of the stream produces byte-for-byte the events
        (matches, order, sequence numbers) and deterministic metrics of the
        uninterrupted run -- the crash-at-every-boundary differential suite
        (``tests/test_checkpoint.py``) holds this at every batch boundary.
        ``on_match`` callbacks and custom sinks are not serialisable and
        must be re-attached (:meth:`add_sink`) after restore.  Raises
        :class:`~repro.persistence.snapshot.SnapshotCorruptError` on any
        torn or damaged snapshot and
        :class:`~repro.persistence.snapshot.SnapshotVersionError` on a
        format-version mismatch -- never a silent partial load.
        """
        from ..persistence.snapshot import read_snapshot
        from ..persistence.state import ENGINE_KIND, load_engine_sections

        manifest, sections = read_snapshot(path, kind=ENGINE_KIND)
        engine = load_engine_sections(sections)
        engine.checkpoint_epoch = manifest["epoch"]
        return engine

    # ------------------------------------------------------------------
    # results and introspection
    # ------------------------------------------------------------------
    def events(self, query_name: Optional[str] = None) -> List[MatchEvent]:
        """Return the full collected event history, in emission order.

        ``query_name`` filters to one registered query's events; ``None``
        (default) returns everything.  The collector is append-only (and is
        carried through checkpoints whole); long-running deployments that
        drain events downstream should ``collector.clear()`` periodically.
        """
        if query_name is None:
            return list(self.collector.events)
        return self.collector.for_query(query_name)

    def match_counts(self) -> Dict[str, int]:
        """Return ``{query name: complete matches emitted so far}`` for every
        registered query (zero entries included)."""
        return {name: registration.match_count for name, registration in self.queries.items()}

    def statistics_summary(self):
        """Return the current :class:`GraphSummary` (``None`` when statistics are off)."""
        if self.summarizer is None:
            return None
        return self.summarizer.summary()

    def metrics(self) -> Dict[str, Any]:
        """Return engine metrics: throughput, latency percentiles, store sizes."""
        result: Dict[str, Any] = {
            "edges_processed": self.edges_processed,
            "events_emitted": self._sequence,
            "graph_vertices": self.graph.vertex_count(),
            "graph_edges": self.graph.edge_count(),
            "edges_evicted": self.graph.edges_evicted,
            "throughput": self.throughput.summary(),
            "latency": self.latency.summary(),
            "dispatch": self.dispatch.stats(),
            "ingest_paths": {
                "batched_fast_path": self.records_batched,
                "per_record_path": self.records_per_record,
                "dead_on_arrival": self.records_dead_on_arrival,
            },
            # on the direct ingest path nothing stamps the attribute, so the
            # horizon is the stream clock itself (largest timestamp offered);
            # a stamped value (reorder path, or a sharded parent's dispatch)
            # is always >= this engine's own clock
            "event_time_watermark": max(self.event_time_watermark, self.graph.current_time)
            if self.reorder is None
            else self.event_time_watermark,
            "reorder": self.reorder.stats() if self.reorder is not None else None,
            "queries": {
                name: registration.matcher.stats.to_dict()
                for name, registration in self.queries.items()
            },
            "stored_partial_matches": {
                name: registration.matcher.stored_partial_matches()
                for name, registration in self.queries.items()
            },
            "replan": replan_summary(
                self.plan_monitor,
                enabled=self._next_replan_check is not None,
                threshold=self.config.replan_threshold,
                check_every=self.config.replan_check_every,
                plan_versions={
                    name: registration.plan_version
                    for name, registration in self.queries.items()
                },
            ),
            "sketch": self._sketch_metrics(),
            "columnar": self._columnar_metrics(),
        }
        return result

    def _columnar_metrics(self) -> Dict[str, Any]:
        """Aggregate columnar hot-path counters for ``metrics()["columnar"]``.

        Always present (zeros when ``EngineConfig(columnar=False)``) so
        dashboards and the sharded parent's rollup see a uniform shape.
        ``range_scans`` / ``range_scan_fallbacks`` are process-local like
        the latency samples: they restart from zero after a restore.
        """
        range_stats = self.graph.range_scan_stats()
        compiled_checks = sum(
            registration.matcher.compiled.compiled_checks
            for registration in self.queries.values()
            if registration.matcher.compiled is not None
        )
        return {
            "enabled": self.config.columnar,
            "interned_labels": len(self.interning),
            "compiled_queries": sum(
                1
                for registration in self.queries.values()
                if registration.matcher.compiled is not None
            ),
            "compiled_checks": compiled_checks,
            "batches_vectorized": self.batches_vectorized,
            "records_prefiltered": self.records_prefiltered,
            "dispatch_memo_hits": self.dispatch_memo_hits,
            "leaves_pruned": self.leaves_pruned,
            "range_scans": range_stats["range_scans"],
            "range_scan_fallbacks": range_stats["range_scan_fallbacks"],
        }

    def _sketch_metrics(self) -> Dict[str, Any]:
        """Aggregate sketch counters for ``metrics()["sketch"]``.

        Always present (zeros when the sketches are off) so dashboards and
        the sharded parent's rollup see a uniform shape.  Dedup counters sum
        the identity and structural stores across every registered matcher;
        the per-store split is diagnostic-only and not surfaced.
        """
        dedup: Dict[str, Any] = {
            "budget": self.config.dedup_memory_budget,
            "entries": 0,
            "peak_entries": 0,
            "probes": 0,
            "front_negatives": 0,
            "front_false_positives": 0,
            "confirms": 0,
            "evictions_budget": 0,
            "evictions_horizon": 0,
        }
        for registration in self.queries.values():
            for memory in registration.matcher.dedup_memories():
                stats = memory.stats()
                for key in dedup:
                    if key == "budget":
                        continue
                    dedup[key] += stats[key]
        return {
            "dispatch_front": {
                "enabled": self.dispatch.sketch_enabled,
                "probes": self.dispatch.front_probes,
                "rejections": self.dispatch.front_rejections,
                "false_positives": self.dispatch.front_false_positives,
            },
            "dedup_memory": dedup,
            "stats_backend": "countmin" if self.config.sketch_stats else "exact",
        }

    def describe(self) -> str:
        """Return a human-readable status report of the engine."""
        lines = [
            f"StreamWorksEngine: {len(self.queries)} queries, "
            f"{self.edges_processed} edges processed, {self._sequence} events emitted",
            f"  graph: {self.graph.vertex_count()} vertices / {self.graph.edge_count()} edges "
            f"(retention {self.graph.window})",
        ]
        for registration in self.queries.values():
            lines.append("  " + registration.describe())
        return "\n".join(lines)
