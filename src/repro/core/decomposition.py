"""Query decomposition into search primitives.

Paper section 4.1: the query graph is decomposed into small, selective
*search primitives*; the decomposition determines the SJ-Tree's leaves and,
through their order, the join order.  The goals are

* primitives stay small (one or two edges by default) so the local search
  around each incoming edge is cheap;
* the most selective primitive sits lowest in the tree, gating the creation
  of partial matches (section 3.1, intuition 3);
* consecutive primitives share vertices, so every join has a non-empty cut
  and never degenerates into a cross product.

Several strategies are provided because experiment E5/E8 compares them:

``selectivity``
    Greedy pairing of edges into connected two-edge primitives ranked by
    estimated cardinality, most selective first (the paper's approach).
``anti_selective``
    Same primitives, least selective first -- the worst-case ordering used to
    show how much the join order matters.
``edge_by_edge``
    Single-edge primitives in arbitrary (query definition) order -- the
    simplistic strategy of section 3.1 that the paper argues against.
``balanced_pairs``
    Two-edge primitives joined in a balanced (bushy) tree instead of a
    left-deep chain.
``manual``
    Caller-supplied primitives, validated but otherwise untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..query.query_graph import QueryEdge, QueryGraph
from ..stats.selectivity import SelectivityEstimator
from .sjtree import SJTree

__all__ = [
    "Decomposition",
    "DecompositionError",
    "Strategy",
    "decompose",
    "enumerate_pair_primitives",
    "order_primitives_by_conditional_selectivity",
    "order_primitives_by_connectivity",
]


class DecompositionError(ValueError):
    """Raised when a decomposition is invalid for its query."""


class Strategy:
    """String constants naming the built-in decomposition strategies."""

    SELECTIVITY = "selectivity"
    ANTI_SELECTIVE = "anti_selective"
    EDGE_BY_EDGE = "edge_by_edge"
    BALANCED_PAIRS = "balanced_pairs"
    MANUAL = "manual"

    ALL = (SELECTIVITY, ANTI_SELECTIVE, EDGE_BY_EDGE, BALANCED_PAIRS, MANUAL)


class Decomposition:
    """An ordered, edge-disjoint cover of the query graph by search primitives."""

    def __init__(
        self,
        query: QueryGraph,
        primitives: Sequence[QueryGraph],
        strategy: str = Strategy.MANUAL,
        tree_shape: str = SJTree.LEFT_DEEP,
        estimates: Optional[Dict[str, float]] = None,
    ):
        self.query = query
        self.primitives = list(primitives)
        self.strategy = strategy
        self.tree_shape = tree_shape
        #: Optional ``{primitive name: estimated cardinality}`` recorded by the planner.
        self.estimates = estimates or {}
        self.validate()

    def validate(self) -> None:
        """Check that the primitives are an edge-disjoint cover of the query."""
        if not self.primitives:
            raise DecompositionError("decomposition has no primitives")
        covered: Set[int] = set()
        for primitive in self.primitives:
            edge_ids = primitive.edge_ids()
            if not edge_ids:
                raise DecompositionError(f"primitive {primitive.name!r} has no edges")
            unknown = edge_ids - self.query.edge_ids()
            if unknown:
                raise DecompositionError(
                    f"primitive {primitive.name!r} references unknown query edges {sorted(unknown)}"
                )
            overlap = covered & edge_ids
            if overlap:
                raise DecompositionError(
                    f"primitive {primitive.name!r} overlaps earlier primitives on edges {sorted(overlap)}"
                )
            if not primitive.is_connected():
                raise DecompositionError(f"primitive {primitive.name!r} is not connected")
            covered |= edge_ids
        missing = self.query.edge_ids() - covered
        if missing:
            raise DecompositionError(f"query edges {sorted(missing)} are not covered by any primitive")

    def primitive_count(self) -> int:
        """Return the number of search primitives."""
        return len(self.primitives)

    def build_tree(self) -> SJTree:
        """Materialise the SJ-Tree for this decomposition."""
        return SJTree(self.query, self.primitives, shape=self.tree_shape)

    def describe(self) -> str:
        """Return a human-readable listing of the primitives and their order."""
        lines = [
            f"Decomposition of {self.query.name!r} "
            f"({self.strategy}, {self.tree_shape}, {len(self.primitives)} primitives)"
        ]
        for index, primitive in enumerate(self.primitives):
            edges = ", ".join(
                self.query.edge(edge_id).describe() for edge_id in sorted(primitive.edge_ids())
            )
            estimate = self.estimates.get(primitive.name)
            suffix = f"  [est. {estimate:.1f}]" if estimate is not None else ""
            lines.append(f"  {index}: {edges}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Decomposition({self.query.name!r}, strategy={self.strategy!r}, "
            f"primitives={len(self.primitives)})"
        )


# ----------------------------------------------------------------------
# primitive enumeration and ordering helpers
# ----------------------------------------------------------------------
def enumerate_pair_primitives(query: QueryGraph) -> List[QueryGraph]:
    """Return every connected two-edge subgraph (wedge) of the query.

    These are the candidate primitives the selectivity-driven strategies pick
    from; single edges are added later for whatever remains uncovered.
    """
    edges = sorted(query.edges(), key=lambda edge: edge.id)
    primitives: List[QueryGraph] = []
    for i in range(len(edges)):
        for j in range(i + 1, len(edges)):
            first, second = edges[i], edges[j]
            if set(first.endpoints) & set(second.endpoints):
                primitives.append(
                    query.edge_subgraph([first.id, second.id], name=f"pair({first.id},{second.id})")
                )
    return primitives


def _greedy_pair_cover(
    query: QueryGraph,
    ranked_pairs: List[Tuple[QueryGraph, float]],
) -> List[Tuple[QueryGraph, float]]:
    """Pick non-overlapping pair primitives greedily from a ranked list.

    Remaining uncovered edges become single-edge primitives with their own
    estimates appended by the caller.
    """
    chosen: List[Tuple[QueryGraph, float]] = []
    covered: Set[int] = set()
    for primitive, estimate in ranked_pairs:
        if primitive.edge_ids() & covered:
            continue
        chosen.append((primitive, estimate))
        covered |= primitive.edge_ids()
    return chosen


def order_primitives_by_connectivity(
    query: QueryGraph,
    scored_primitives: List[Tuple[QueryGraph, float]],
    most_selective_first: bool = True,
) -> List[Tuple[QueryGraph, float]]:
    """Order primitives so each one connects to the union of its predecessors.

    The first primitive is the most (or least) selective overall; each
    subsequent pick is the most (or least) selective primitive sharing at
    least one query vertex with the already-ordered set, so every SJ-Tree
    join has a non-empty cut.  If no primitive connects (disconnected query),
    the best remaining one is taken anyway.
    """
    remaining = list(scored_primitives)
    key: Callable[[Tuple[QueryGraph, float]], float] = lambda pair: pair[1]
    remaining.sort(key=key, reverse=not most_selective_first)
    ordered: List[Tuple[QueryGraph, float]] = []
    covered_vertices: Set[str] = set()
    while remaining:
        connected_choices = [
            pair for pair in remaining if not covered_vertices or covered_vertices & pair[0].vertex_names()
        ]
        pool = connected_choices if connected_choices else remaining
        best = pool[0]
        ordered.append(best)
        remaining.remove(best)
        covered_vertices |= best[0].vertex_names()
    return ordered


def order_primitives_by_conditional_selectivity(
    query: QueryGraph,
    scored_primitives: List[Tuple[QueryGraph, float]],
    estimator: SelectivityEstimator,
    most_selective_first: bool = True,
) -> List[Tuple[QueryGraph, float]]:
    """Order primitives greedily by *conditional* selectivity.

    Like :func:`order_primitives_by_connectivity`, but each pick re-scores
    the connected candidates given the vertices already bound by earlier
    primitives (:meth:`SelectivityEstimator.conditional_estimate`) instead of
    trusting the marginal ranking — PAPERS.md "Exploiting Correlations for
    Expensive Predicate Evaluation".  A primitive whose marginal cardinality
    looks large may still be the cheapest join step when its shared vertices
    are already pinned; the marginal ordering systematically penalises such
    primitives.  Ties keep the marginal (most-selective-first) order, so the
    output is deterministic and degrades to the connectivity ordering when
    conditioning changes nothing.

    The returned pairs keep their *marginal* estimates: those are what the
    plan records and what :class:`~repro.stats.plan_monitor.PlanMonitor`
    later re-scores against live statistics.
    """
    remaining = list(scored_primitives)
    key: Callable[[Tuple[QueryGraph, float]], float] = lambda pair: pair[1]
    remaining.sort(key=key, reverse=not most_selective_first)
    ordered: List[Tuple[QueryGraph, float]] = []
    covered_vertices: Set[str] = set()
    while remaining:
        connected_choices = [
            pair for pair in remaining if not covered_vertices or covered_vertices & pair[0].vertex_names()
        ]
        pool = connected_choices if connected_choices else remaining
        best = pool[0]
        best_score = estimator.conditional_estimate(query, best[0], covered_vertices, marginal=best[1])
        for pair in pool[1:]:
            score = estimator.conditional_estimate(query, pair[0], covered_vertices, marginal=pair[1])
            if (score < best_score) if most_selective_first else (score > best_score):
                best, best_score = pair, score
        ordered.append(best)
        remaining.remove(best)
        covered_vertices |= best[0].vertex_names()
    return ordered


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def _selectivity_primitives(
    query: QueryGraph,
    estimator: SelectivityEstimator,
    primitive_size: int,
) -> List[Tuple[QueryGraph, float]]:
    scored: List[Tuple[QueryGraph, float]] = []
    covered: Set[int] = set()
    if primitive_size >= 2:
        pairs = enumerate_pair_primitives(query)
        ranked_pairs = estimator.rank_primitives(query, pairs)
        chosen_pairs = _greedy_pair_cover(query, ranked_pairs)
        scored.extend(chosen_pairs)
        for primitive, _ in chosen_pairs:
            covered |= primitive.edge_ids()
    for edge in sorted(query.edges(), key=lambda e: e.id):
        if edge.id in covered:
            continue
        primitive = query.edge_subgraph([edge.id], name=f"edge({edge.id})")
        scored.append((primitive, estimator.estimate_primitive(query, primitive)))
        covered.add(edge.id)
    return scored


def decompose(
    query: QueryGraph,
    strategy: str = Strategy.SELECTIVITY,
    estimator: Optional[SelectivityEstimator] = None,
    primitive_size: int = 2,
    primitives: Optional[Sequence[QueryGraph]] = None,
    conditional_ordering: bool = False,
) -> Decomposition:
    """Decompose ``query`` into an ordered set of search primitives.

    Parameters
    ----------
    query:
        The query graph to decompose.
    strategy:
        One of :class:`Strategy`'s constants.
    estimator:
        Required for the selectivity-aware strategies.  When omitted, a
        neutral estimator (every primitive equally likely) is emulated by
        falling back to primitive size + edge id ordering, which keeps the
        function usable before any statistics exist.
    primitive_size:
        Maximum primitive size for the selectivity strategies (1 or 2).
    primitives:
        Explicit primitives for ``Strategy.MANUAL``.
    conditional_ordering:
        Order the selectivity strategies' primitives by *conditional* (given
        already-bound vertices) rather than marginal selectivity.  Requires
        an estimator; ignored without one.
    """
    if strategy == Strategy.MANUAL:
        if primitives is None:
            raise DecompositionError("manual decomposition requires explicit primitives")
        return Decomposition(query, primitives, strategy=Strategy.MANUAL)

    if strategy == Strategy.EDGE_BY_EDGE:
        singles = [
            query.edge_subgraph([edge.id], name=f"edge({edge.id})")
            for edge in sorted(query.edges(), key=lambda e: e.id)
        ]
        ordered = order_primitives_by_connectivity(
            query, [(primitive, float(index)) for index, primitive in enumerate(singles)]
        )
        return Decomposition(
            query,
            [primitive for primitive, _ in ordered],
            strategy=Strategy.EDGE_BY_EDGE,
        )

    if strategy not in (Strategy.SELECTIVITY, Strategy.ANTI_SELECTIVE, Strategy.BALANCED_PAIRS):
        raise DecompositionError(f"unknown decomposition strategy {strategy!r}")

    if estimator is None:
        # neutral scoring: all primitives equal, ties broken by edge ids
        scored = []
        covered: Set[int] = set()
        for primitive in enumerate_pair_primitives(query):
            if primitive.edge_ids() & covered:
                continue
            scored.append((primitive, float(min(primitive.edge_ids()))))
            covered |= primitive.edge_ids()
        for edge in sorted(query.edges(), key=lambda e: e.id):
            if edge.id not in covered:
                scored.append((query.edge_subgraph([edge.id], name=f"edge({edge.id})"), float(edge.id)))
                covered.add(edge.id)
    else:
        scored = _selectivity_primitives(query, estimator, primitive_size)

    most_selective_first = strategy != Strategy.ANTI_SELECTIVE
    if conditional_ordering and estimator is not None:
        ordered = order_primitives_by_conditional_selectivity(
            query, scored, estimator, most_selective_first
        )
    else:
        ordered = order_primitives_by_connectivity(query, scored, most_selective_first)
    tree_shape = SJTree.BALANCED if strategy == Strategy.BALANCED_PAIRS else SJTree.LEFT_DEEP
    return Decomposition(
        query,
        [primitive for primitive, _ in ordered],
        strategy=strategy,
        tree_shape=tree_shape,
        estimates={primitive.name: estimate for primitive, estimate in ordered},
    )
