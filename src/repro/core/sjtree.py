"""The Subgraph Join Tree (SJ-Tree), the paper's central data structure.

Definition 4.1.1 of the paper: an SJ-Tree ``T`` is a binary tree whose nodes
each correspond to a subgraph of the query graph, with

* **Property 1** -- the root's subgraph is the query graph itself;
* **Property 2** -- every internal node's subgraph is the join (vertex union
  + edge union) of its children's subgraphs;
* **Property 3** -- every node maintains a collection of matching data
  subgraphs (partial matches) for its query subgraph;
* **Property 4** -- every internal node stores a *cut subgraph*: the
  intersection of its children's subgraphs.  With an edge-disjoint
  decomposition the cut consists of the shared query vertices, and it is the
  join key on which child matches are combined.

The leaves carry the *search primitives* produced by query decomposition;
only leaves are searched against the stream (via local search around each
new edge), and partial matches climb the tree through joins.

Match collections are hash-indexed by the projection of the match onto the
parent's cut vertices so that the sibling probe during a join is a dictionary
lookup, not a scan.  Each node also keeps an expiry queue so partial matches
older than the query window can be swept out cheaply.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.window import ExpiryQueue, TimeWindow
from ..isomorphism.match import Match
from ..query.query_graph import QueryGraph

__all__ = ["SJTreeNode", "SJTree", "SJTreeInvariantError"]

MatchKey = Tuple


class SJTreeInvariantError(AssertionError):
    """Raised by :meth:`SJTree.validate` when a structural property is violated."""


class SJTreeNode:
    """One node of an SJ-Tree: a query subgraph plus its match collection."""

    def __init__(self, node_id: int, subgraph: QueryGraph):
        self.id = node_id
        self.subgraph = subgraph
        # structure (parent/left/right/cuts/keys) is rebuilt from the
        # decomposition before load_state runs, never snapshotted
        self.parent_id: Optional[int] = None  # repro-lint: ignore[snapshot-coverage]
        self.left_id: Optional[int] = None  # repro-lint: ignore[snapshot-coverage]
        self.right_id: Optional[int] = None  # repro-lint: ignore[snapshot-coverage]
        #: Cut vertices shared by the two children (internal nodes only,
        #: Property 4).  Sorted so projection keys are canonical.
        self.cut_vertices: Tuple[str, ...] = ()  # repro-lint: ignore[snapshot-coverage]
        #: Vertices on which *this* node's matches are keyed, i.e. the cut of
        #: the parent node.  Empty for the root.
        self.key_vertices: Tuple[str, ...] = ()  # repro-lint: ignore[snapshot-coverage]
        # key -> {match identity -> Match}
        self._matches: Dict[MatchKey, Dict[Tuple, Match]] = {}
        # the expiry queue and its counter are rebuilt by store_match
        # during load_state re-insertion
        self._expiry: ExpiryQueue[Tuple[MatchKey, Tuple]] = ExpiryQueue()  # repro-lint: ignore[snapshot-coverage]
        self._match_count = 0  # repro-lint: ignore[snapshot-coverage]
        self.total_inserted = 0
        self.total_expired = 0

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """Return ``True`` when the node has no children."""
        return self.left_id is None and self.right_id is None

    @property
    def is_root(self) -> bool:
        """Return ``True`` when the node has no parent."""
        return self.parent_id is None

    # ------------------------------------------------------------------
    # match collection (Property 3)
    # ------------------------------------------------------------------
    def match_key(self, match: Match) -> MatchKey:
        """Return the join key of a match: its projection onto the key vertices."""
        return match.projection_key(self.key_vertices)

    def store_match(self, match: Match) -> bool:
        """Insert a partial match; returns ``False`` when it was already stored."""
        key = self.match_key(match)
        bucket = self._matches.setdefault(key, {})
        identity = match.identity()
        if identity in bucket:
            return False
        bucket[identity] = match
        self._expiry.push(match.earliest, (key, identity))
        self._match_count += 1
        self.total_inserted += 1
        return True

    def has_match(self, match: Match) -> bool:
        """Return ``True`` when an identical match is already stored."""
        bucket = self._matches.get(self.match_key(match))
        return bool(bucket) and match.identity() in bucket

    def matches_for_key(self, key: MatchKey) -> List[Match]:
        """Return the stored matches whose projection equals ``key``."""
        bucket = self._matches.get(key)
        if not bucket:
            return []
        return list(bucket.values())

    def all_matches(self) -> Iterator[Match]:
        """Iterate over every stored match."""
        for bucket in self._matches.values():
            yield from bucket.values()

    def match_count(self) -> int:
        """Return the number of currently stored matches."""
        return self._match_count

    def expire_matches(self, window: TimeWindow, now: float) -> int:
        """Drop matches that can no longer participate in a new in-window match.

        A partial match with earliest edge timestamp ``t`` is dead once
        ``now - t`` is no longer admissible: any future edge only increases
        the span.  Returns the number of matches dropped.
        """
        if not window.bounded:
            return 0
        threshold = window.expiry_threshold(now)
        oldest = self._expiry.peek_oldest()
        if oldest is None or oldest[0] > threshold:
            # nothing stored is old enough -- skip without touching the heap
            return 0
        dropped = 0
        for key, identity in self._expiry.pop_expired(threshold, inclusive=window.strict):
            bucket = self._matches.get(key)
            if not bucket:
                continue
            if identity in bucket:
                del bucket[identity]
                dropped += 1
                self._match_count -= 1
                self.total_expired += 1
            if not bucket:
                del self._matches[key]
        return dropped

    def drop_matches_with_edge(self, edge_id: int) -> int:
        """Remove every stored match that binds the given data edge id.

        Used when the caller wants eager consistency with graph-store
        eviction (e.g. deletion semantics rather than window expiry).
        Returns the number of matches dropped.
        """
        dropped = 0
        for key in list(self._matches.keys()):
            bucket = self._matches[key]
            stale = [identity for identity, match in bucket.items() if match.uses_data_edge(edge_id)]
            for identity in stale:
                del bucket[identity]
                dropped += 1
                self._match_count -= 1
            if not bucket:
                del self._matches[key]
        return dropped

    def clear_matches(self) -> None:
        """Remove every stored match (used by tests and by plan switching)."""
        self._matches.clear()
        self._expiry = ExpiryQueue()
        self._match_count = 0

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serialise the node's match collection and lifetime counters.

        Matches are listed bucket by bucket in the collection's iteration
        order.  That order is load-bearing: ``matches_for_key`` feeds join
        candidate enumeration, which decides the order same-trigger events
        emit in, so :meth:`load_state` re-inserts in exactly this order.
        """
        return {
            "matches": [
                match.state_dict()
                for bucket in self._matches.values()
                for match in bucket.values()
            ],
            "total_inserted": self.total_inserted,
            "total_expired": self.total_expired,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore the match collection captured by :meth:`state_dict`.

        The node must be freshly built (keys assigned, no matches stored):
        re-inserting through :meth:`store_match` reproduces the bucket
        layout and the expiry queue's tie-break order.
        """
        from ..isomorphism.match import Match

        for payload in state["matches"]:
            self.store_match(Match.from_state(payload))
        self.total_inserted = state["total_inserted"]
        self.total_expired = state["total_expired"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else ("root" if self.is_root else "internal")
        return (
            f"SJTreeNode(id={self.id}, {kind}, edges={sorted(self.subgraph.edge_ids())}, "
            f"matches={self._match_count})"
        )


class SJTree:
    """A binary join tree over an edge-disjoint decomposition of a query graph.

    Parameters
    ----------
    query:
        The full query graph (becomes the root's subgraph, Property 1).
    leaf_subgraphs:
        The ordered search primitives.  Order matters: with ``shape="left_deep"``
        the first two primitives join first, then each subsequent primitive
        joins the accumulated partial match (the paper's recommended layout,
        with the most selective primitive first).
    shape:
        ``"left_deep"`` (default) or ``"balanced"``.
    """

    LEFT_DEEP = "left_deep"
    BALANCED = "balanced"

    def __init__(
        self,
        query: QueryGraph,
        leaf_subgraphs: Sequence[QueryGraph],
        shape: str = LEFT_DEEP,
    ):
        if not leaf_subgraphs:
            raise ValueError("an SJ-Tree needs at least one leaf primitive")
        if shape not in (self.LEFT_DEEP, self.BALANCED):
            raise ValueError(f"unknown SJ-Tree shape {shape!r}")
        self.query = query
        self.shape = shape
        self.nodes: Dict[int, SJTreeNode] = {}
        # leaf_ids/root_id/_next_id are assigned by the deterministic tree
        # build that precedes load_state, so they are not snapshotted
        self.leaf_ids: List[int] = []  # repro-lint: ignore[snapshot-coverage]
        self.root_id: int = -1  # repro-lint: ignore[snapshot-coverage]
        self._next_id = 0  # repro-lint: ignore[snapshot-coverage]
        #: Stream time of the last expiry sweep (cadence hook, see
        #: :meth:`expire_matches`).
        self._last_expiry_sweep: Optional[float] = None
        self._build(list(leaf_subgraphs), shape)
        self._assign_key_vertices()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self, subgraph: QueryGraph) -> SJTreeNode:
        node = SJTreeNode(self._next_id, subgraph)
        self.nodes[node.id] = node
        self._next_id += 1
        return node

    def _join_nodes(self, left: SJTreeNode, right: SJTreeNode) -> SJTreeNode:
        parent = self._new_node(left.subgraph.union(right.subgraph))
        parent.left_id = left.id
        parent.right_id = right.id
        left.parent_id = parent.id
        right.parent_id = parent.id
        parent.cut_vertices = tuple(
            sorted(left.subgraph.vertex_intersection(right.subgraph))
        )
        return parent

    def _build(self, leaf_subgraphs: List[QueryGraph], shape: str) -> None:
        leaves = [self._new_node(subgraph) for subgraph in leaf_subgraphs]
        self.leaf_ids = [leaf.id for leaf in leaves]
        if len(leaves) == 1:
            self.root_id = leaves[0].id
            return
        if shape == self.LEFT_DEEP:
            current = leaves[0]
            for leaf in leaves[1:]:
                current = self._join_nodes(current, leaf)
            self.root_id = current.id
        else:  # balanced
            level: List[SJTreeNode] = leaves
            while len(level) > 1:
                next_level: List[SJTreeNode] = []
                for i in range(0, len(level) - 1, 2):
                    next_level.append(self._join_nodes(level[i], level[i + 1]))
                if len(level) % 2 == 1:
                    next_level.append(level[-1])
                level = next_level
            self.root_id = level[0].id

    def _assign_key_vertices(self) -> None:
        for node in self.nodes.values():
            if node.parent_id is None:
                node.key_vertices = ()
            else:
                node.key_vertices = self.nodes[node.parent_id].cut_vertices

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    @property
    def root(self) -> SJTreeNode:
        """Return the root node."""
        return self.nodes[self.root_id]

    def node(self, node_id: int) -> SJTreeNode:
        """Return a node by id."""
        return self.nodes[node_id]

    def leaves(self) -> List[SJTreeNode]:
        """Return the leaf nodes in decomposition order."""
        return [self.nodes[node_id] for node_id in self.leaf_ids]

    def parent(self, node: SJTreeNode) -> Optional[SJTreeNode]:
        """Return the parent node or ``None`` for the root."""
        if node.parent_id is None:
            return None
        return self.nodes[node.parent_id]

    def sibling(self, node: SJTreeNode) -> Optional[SJTreeNode]:
        """Return the sibling node or ``None`` for the root."""
        parent = self.parent(node)
        if parent is None:
            return None
        sibling_id = parent.right_id if parent.left_id == node.id else parent.left_id
        return self.nodes[sibling_id] if sibling_id is not None else None

    def internal_nodes(self) -> List[SJTreeNode]:
        """Return the non-leaf nodes (including the root when it has children)."""
        return [node for node in self.nodes.values() if not node.is_leaf]

    def depth(self) -> int:
        """Return the number of levels in the tree (single node -> 1)."""

        def node_depth(node_id: int) -> int:
            node = self.nodes[node_id]
            if node.is_leaf:
                return 1
            children = [c for c in (node.left_id, node.right_id) if c is not None]
            return 1 + max(node_depth(child) for child in children)

        return node_depth(self.root_id)

    def total_stored_matches(self) -> int:
        """Return the total number of partial matches currently stored in all nodes."""
        return sum(node.match_count() for node in self.nodes.values())

    def match_counts_by_node(self) -> Dict[int, int]:
        """Return ``{node id: stored match count}`` (a Fig. 7-style progress snapshot)."""
        return {node.id: node.match_count() for node in self.nodes.values()}

    def clear_matches(self) -> None:
        """Drop every stored partial match (query structure is kept)."""
        for node in self.nodes.values():
            node.clear_matches()
        self._last_expiry_sweep = None

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serialise every node's match collection (structure is rebuilt, not stored).

        The tree *structure* is deterministic given the decomposition, so
        only the per-node collections and the expiry-cadence clock are
        captured; :meth:`load_state` targets a tree freshly built from the
        same decomposition (node ids match by construction).
        """
        return {
            "nodes": [[node_id, self.nodes[node_id].state_dict()] for node_id in self.nodes],
            "last_expiry_sweep": self._last_expiry_sweep,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore per-node collections captured by :meth:`state_dict`."""
        for node_id, node_state in state["nodes"]:
            self.nodes[node_id].load_state(node_state)
        self._last_expiry_sweep = state["last_expiry_sweep"]

    # ------------------------------------------------------------------
    # invariants (Properties 1, 2, 4 and decomposition sanity)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Verify the structural SJ-Tree properties; raise :class:`SJTreeInvariantError` otherwise."""
        root = self.root
        if not root.subgraph.same_structure(self.query):
            raise SJTreeInvariantError(
                "Property 1 violated: root subgraph differs from the query graph"
            )
        for node in self.nodes.values():
            if node.is_leaf:
                continue
            if node.left_id is None or node.right_id is None:
                raise SJTreeInvariantError(
                    f"internal node {node.id} must have exactly two children"
                )
            left = self.nodes[node.left_id]
            right = self.nodes[node.right_id]
            joined = left.subgraph.union(right.subgraph)
            if not node.subgraph.same_structure(joined):
                raise SJTreeInvariantError(
                    f"Property 2 violated at node {node.id}: subgraph is not the "
                    "join of its children"
                )
            expected_cut = tuple(sorted(left.subgraph.vertex_intersection(right.subgraph)))
            if node.cut_vertices != expected_cut:
                raise SJTreeInvariantError(
                    f"Property 4 violated at node {node.id}: cut vertices "
                    f"{node.cut_vertices} != {expected_cut}"
                )
        # leaves must partition the query edges (edge-disjoint cover)
        covered: Set[int] = set()
        for leaf in self.leaves():
            leaf_edges = leaf.subgraph.edge_ids()
            if covered & leaf_edges:
                raise SJTreeInvariantError("leaf primitives overlap on query edges")
            covered |= leaf_edges
        if covered != self.query.edge_ids():
            raise SJTreeInvariantError("leaf primitives do not cover every query edge")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def expire_matches(self, window: TimeWindow, now: float, min_interval: float = 0.0) -> int:
        """Expire partial matches in every node; return the total dropped.

        ``min_interval`` is the expiry *cadence* hook used by batched ingest:
        when positive, a sweep is skipped unless stream time has advanced at
        least that far since the previous sweep.  Skipping sweeps is always
        safe -- expired partials are rejected by the window check at join and
        emit time -- it only trades a little memory for less heap churn.
        """
        if not window.bounded:
            return 0
        if (
            min_interval > 0.0
            and self._last_expiry_sweep is not None
            and now - self._last_expiry_sweep < min_interval
        ):
            return 0
        self._last_expiry_sweep = now
        return sum(node.expire_matches(window, now) for node in self.nodes.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SJTree(query={self.query.name!r}, leaves={len(self.leaf_ids)}, "
            f"shape={self.shape!r}, stored={self.total_stored_matches()})"
        )
