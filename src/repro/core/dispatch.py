"""Cross-query edge-dispatch index for the multi-query ingest hot path.

The paper's headline claim -- sustaining 10^5+ edges/sec with many
continuous queries registered -- requires that an incoming edge only pay
for the queries it can actually affect.  The naive hot loop runs a local
search for *every* SJ-Tree leaf of *every* registered query on *every*
edge, so per-edge cost grows linearly with the total number of registered
primitives even when almost none of them can bind the edge.

The :class:`DispatchIndex` removes that linear factor.  At registration
time every SJ-Tree leaf primitive is compiled into a
:class:`LeafDispatchEntry` capturing the *necessary* conditions for the
leaf's local search to produce any seed at all:

* the set of edge labels its query edges accept (a query edge with
  ``label=None`` is a wildcard and keeps the entry in the wildcard list);
* per query edge, the endpoint vertex-label constraints ``(source label,
  edge label, target label, directed)``; an undirected query edge admits
  both orientations.

At ingest time :meth:`DispatchIndex.candidates` looks up
``index[edge.label]`` (plus the wildcard entries), applies the vertex-label
guards against the *stored* endpoint labels of the new edge, and returns
the (query, leaf) pairs that can possibly match -- grouped by query in
registration order and, within a query, in SJ-Tree leaf order, so the
engine's event order is bit-identical to the unindexed loop.  An edge
whose label appears in no registered primitive skips matching entirely.

The guards are deliberately *necessary but not sufficient*: attribute
predicates are dynamic and stay in the local search.  Filtering here can
therefore never change the match set, only skip work that would have
produced zero seeds -- the same discipline as incremental view maintenance
under updates (only touch the work an update can affect).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..query.query_graph import QueryGraph
from ..sketch import CountingBloomFilter

__all__ = ["LeafDispatchEntry", "DispatchIndex"]


class LeafDispatchEntry:
    """Compiled dispatch constraints for one SJ-Tree leaf primitive.

    Parameters
    ----------
    owner:
        Name of the registered query the leaf belongs to.
    leaf_id:
        SJ-Tree node id of the leaf (used by the matcher's per-leaf entry
        point).
    order:
        ``(registration sequence, leaf index)`` -- total order preserving
        the unindexed loop's iteration order.
    primitive:
        The leaf's query subgraph; its edges are compiled into guards.
    """

    __slots__ = ("owner", "leaf_id", "order", "labels", "has_wildcard", "guards")

    def __init__(
        self,
        owner: str,
        leaf_id: int,
        order: Tuple[int, int],
        primitive: QueryGraph,
    ):
        self.owner = owner
        self.leaf_id = leaf_id
        self.order = order
        labels = set()
        self.has_wildcard = False
        #: ``(edge label, source vertex label, target vertex label, directed)``
        #: per query edge; ``None`` components are wildcards.
        self.guards: Tuple[Tuple[Optional[str], Optional[str], Optional[str], bool], ...] = tuple(
            (
                edge.label,
                primitive.vertex(edge.source).label,
                primitive.vertex(edge.target).label,
                edge.directed,
            )
            for edge in primitive.edges()
        )
        for edge_label, _, _, _ in self.guards:
            if edge_label is None:
                self.has_wildcard = True
            else:
                labels.add(edge_label)
        self.labels = frozenset(labels)

    def admits(
        self,
        edge_label: str,
        source_label: Optional[str],
        target_label: Optional[str],
    ) -> bool:
        """Return ``True`` when some query edge of the leaf could bind the data edge.

        ``source_label`` / ``target_label`` are the *stored* vertex labels of
        the data edge's endpoints; ``None`` skips the corresponding guard
        (callers that cannot resolve endpoint labels still get correct label
        routing, just without the vertex filter).
        """
        for qlabel, slabel, tlabel, directed in self.guards:
            if qlabel is not None and qlabel != edge_label:
                continue
            if self._endpoints_admit(slabel, tlabel, source_label, target_label):
                return True
            if not directed and self._endpoints_admit(slabel, tlabel, target_label, source_label):
                return True
        return False

    @staticmethod
    def _endpoints_admit(
        qsource: Optional[str],
        qtarget: Optional[str],
        source_label: Optional[str],
        target_label: Optional[str],
    ) -> bool:
        if qsource is not None and source_label is not None and qsource != source_label:
            return False
        if qtarget is not None and target_label is not None and qtarget != target_label:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = sorted(self.labels) + (["*"] if self.has_wildcard else [])
        return f"LeafDispatchEntry({self.owner!r}, leaf={self.leaf_id}, labels={labels})"


class DispatchIndex:
    """Shared edge-label -> (query, leaf) routing table for all registered queries.

    The index is owned by the engine: :meth:`register` is called whenever a
    query is registered (or re-planned, which rebuilds its SJ-Tree) and
    :meth:`unregister` when it is removed.  :meth:`candidates` is the hot-path
    lookup.

    Counters (``lookups``, ``entries_matched``, ``entries_skipped``) expose
    how much work the index saved; the engine surfaces them in
    :meth:`~repro.core.engine.StreamWorksEngine.metrics`.

    With ``sketch=True`` a counting Bloom front guards the negative path:
    :meth:`front_rejects` answers "this label binds nothing" from a few
    cache-resident counter cells *before* the caller resolves endpoint
    vertex labels or probes the dict, which is where the high-cardinality
    negative-lookup win comes from.  The front is exact-by-construction in
    the reject direction (a label is only rejected when its counting cells
    are empty, and every registered entry-label pair increments its cells),
    so sketch-on routing returns byte-identical candidates.  Unregistration
    decrements the same cells; skipping a decrement leaves stale cells that
    show up as ``front_false_positives`` instead of ``front_rejections``.
    """

    def __init__(
        self,
        sketch: bool = False,
        sketch_bits: int = 2048,
        sketch_seed: int = 47,
    ) -> None:
        self._by_label: Dict[str, List[LeafDispatchEntry]] = {}
        self._wildcard: List[LeafDispatchEntry] = []
        self._by_owner: Dict[str, List[LeafDispatchEntry]] = {}
        self._registration_seq = 0
        self._front: Optional[CountingBloomFilter] = (
            CountingBloomFilter(bits=sketch_bits, seed=sketch_seed) if sketch else None
        )
        self.lookups = 0
        self.entries_matched = 0
        self.entries_skipped = 0
        self.front_probes = 0
        self.front_rejections = 0
        self.front_false_positives = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, owner: str, leaves: Iterable) -> None:
        """Index every SJ-Tree leaf of a query.

        ``leaves`` is an iterable of SJ-Tree leaf nodes (objects with ``id``
        and ``subgraph`` attributes) in decomposition order.  Re-registering
        an owner (after a re-plan) replaces its entries but keeps the owner's
        original position in the dispatch order, so indexed and unindexed
        event order stay identical across re-plans.
        """
        existing = self._by_owner.get(owner)
        if existing:
            seq = existing[0].order[0]
            self.unregister(owner)
        else:
            seq = self._registration_seq
            self._registration_seq += 1
        entries: List[LeafDispatchEntry] = []
        front = self._front
        for index, leaf in enumerate(leaves):
            entry = LeafDispatchEntry(owner, leaf.id, (seq, index), leaf.subgraph)
            entries.append(entry)
            for label in entry.labels:
                self._by_label.setdefault(label, []).append(entry)
                if front is not None:
                    # one counting-cell increment per (entry, label) pair,
                    # mirroring the _by_label appends so unregister's
                    # decrements restore the cells exactly
                    front.add(label.encode("utf-8"))
            if entry.has_wildcard:
                self._wildcard.append(entry)
        self._by_owner[owner] = entries

    def unregister(self, owner: str) -> None:
        """Drop every entry belonging to ``owner`` (no-op when unknown)."""
        entries = self._by_owner.pop(owner, None)
        if not entries:
            return
        front = self._front
        if front is not None:
            # symmetric counting-cell decrements: one per (entry, label)
            # pair added at registration time
            for entry in entries:
                for label in entry.labels:
                    front.remove(label.encode("utf-8"))
        dropped = set(id(entry) for entry in entries)
        # insertion-ordered dedupe: bucket rewrites below mutate _by_label,
        # whose key order is observable (stats, wildcard rebuilds), so the
        # visit order must not depend on PYTHONHASHSEED
        for label in dict.fromkeys(label for entry in entries for label in entry.labels):
            bucket = [e for e in self._by_label[label] if id(e) not in dropped]
            if bucket:
                self._by_label[label] = bucket
            else:
                del self._by_label[label]
        if any(entry.has_wildcard for entry in entries):
            self._wildcard = [e for e in self._wildcard if id(e) not in dropped]

    def registered_owners(self) -> List[str]:
        """Return the names of the queries currently indexed."""
        return list(self._by_owner)

    def entry_count(self) -> int:
        """Return the total number of indexed leaf entries."""
        return sum(len(entries) for entries in self._by_owner.values())

    # ------------------------------------------------------------------
    # hot-path lookup
    # ------------------------------------------------------------------
    def front_rejects(self, edge_label: str) -> bool:
        """Return ``True`` when the sketch front proves ``edge_label`` binds nothing.

        Called by the engine *before* it resolves the edge's endpoint vertex
        labels: a front rejection skips both graph probes and the full
        :meth:`candidates` call.  Rejection is only claimed when the label's
        counting cells are empty -- impossible for any registered label -- so
        the short-circuit is exact.  Wildcard entries disable the front
        (every label can bind), and a rejected probe still counts as a
        ``lookups`` tick so sketch-on and sketch-off counter streams agree.
        """
        front = self._front
        if front is None or self._wildcard:
            return False
        self.front_probes += 1
        if front.might_contain(edge_label.encode("utf-8")):
            return False
        self.front_rejections += 1
        self.lookups += 1
        return True

    @property
    def sketch_enabled(self) -> bool:
        """``True`` when the counting Bloom front is active."""
        return self._front is not None

    def candidates(
        self,
        edge_label: str,
        source_label: Optional[str] = None,
        target_label: Optional[str] = None,
    ) -> List[Tuple[str, List[int]]]:
        """Return ``[(owner, [leaf ids])]`` that could bind the described edge.

        Owners appear in registration order and leaf ids in SJ-Tree leaf
        order, matching the iteration order of the unindexed per-edge loop so
        the engine's event order is unchanged.
        """
        self.lookups += 1
        labelled = self._by_label.get(edge_label)
        if not labelled and not self._wildcard:
            if self._front is not None:
                # the front said "maybe" (otherwise front_rejects would have
                # short-circuited this call) but the exact table disagrees
                self.front_false_positives += 1
            return []
        matched: List[LeafDispatchEntry] = []
        if self._wildcard:
            # an entry can sit in both a label bucket and the wildcard list
            # (primitive with one labelled and one wildcard edge) -- dedupe
            seen: set = set()
            for bucket in (labelled or ()), self._wildcard:
                for entry in bucket:
                    key = id(entry)
                    if key in seen:
                        continue
                    seen.add(key)
                    if entry.admits(edge_label, source_label, target_label):
                        matched.append(entry)
                    else:
                        self.entries_skipped += 1
        else:
            for entry in labelled:
                if entry.admits(edge_label, source_label, target_label):
                    matched.append(entry)
                else:
                    self.entries_skipped += 1
        if not matched:
            return []
        self.entries_matched += len(matched)
        matched.sort(key=lambda entry: entry.order)
        grouped: List[Tuple[str, List[int]]] = []
        for entry in matched:
            if grouped and grouped[-1][0] == entry.owner:
                grouped[-1][1].append(entry.leaf_id)
            else:
                grouped.append((entry.owner, [entry.leaf_id]))
        return grouped

    def stats(self) -> Dict[str, int]:
        """Return the lookup counters as a plain dict."""
        return {
            "indexed_queries": len(self._by_owner),
            "indexed_leaves": self.entry_count(),
            "lookups": self.lookups,
            "entries_matched": self.entries_matched,
            "entries_skipped": self.entries_skipped,
            "front_probes": self.front_probes,
            "front_rejections": self.front_rejections,
            "front_false_positives": self.front_false_positives,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DispatchIndex(queries={len(self._by_owner)}, leaves={self.entry_count()}, "
            f"labels={len(self._by_label)}, wildcard={len(self._wildcard)})"
        )
