"""The paper's primary contribution: SJ-Tree based incremental graph search.

Contents:

* :class:`SJTree` -- the Subgraph Join Tree (Definition 4.1.1).
* :mod:`~repro.core.decomposition` -- query decomposition strategies.
* :class:`QueryPlanner` -- statistics-driven plan construction (section 4.1).
* :class:`LocalSearcher` -- primitive search around new edges (section 4.1).
* :class:`ContinuousQueryMatcher` -- the incremental execution loop (4.2).
* :class:`StreamWorksEngine` -- the multi-query system façade.
"""

from .decomposition import Decomposition, DecompositionError, Strategy, decompose
from .dispatch import DispatchIndex, LeafDispatchEntry
from .engine import EngineConfig, RegisteredQuery, StreamWorksEngine
from .join import joined_span, try_join
from .local_search import LocalSearcher, find_primitive_matches
from .matcher import ContinuousQueryMatcher, MatcherStats
from .planner import PlannerConfig, QueryPlan, QueryPlanner
from .sharded import ShardConfig, ShardedQuery, ShardedStreamEngine
from .sjtree import SJTree, SJTreeInvariantError, SJTreeNode

__all__ = [
    "ContinuousQueryMatcher",
    "Decomposition",
    "DecompositionError",
    "DispatchIndex",
    "EngineConfig",
    "LeafDispatchEntry",
    "LocalSearcher",
    "MatcherStats",
    "PlannerConfig",
    "QueryPlan",
    "QueryPlanner",
    "RegisteredQuery",
    "SJTree",
    "SJTreeInvariantError",
    "SJTreeNode",
    "ShardConfig",
    "ShardedQuery",
    "ShardedStreamEngine",
    "Strategy",
    "StreamWorksEngine",
    "decompose",
    "find_primitive_matches",
    "joined_span",
    "try_join",
]
