"""Query-sharded parallel engine: N shard engines behind one façade.

The single :class:`~repro.core.engine.StreamWorksEngine` already makes
multi-query ingest sub-linear in the number of registered queries (the
shared dispatch index only touches the (query, leaf) pairs an edge can
bind).  The next scaling axis is *parallelism*: registered queries are
partitioned across N shards, each shard owning a full private engine --
graph window store, summarizer, dispatch index, matchers -- so shards share
no mutable state and can run on separate cores.

Correctness is by construction:

* **Partitioning** is greedy balance over estimated plan cost
  (:func:`repro.stats.plan_cost.plan_cost` over the
  :class:`~repro.core.planner.QueryPlanner`'s plan), so heavy standing
  queries spread across shards instead of piling onto one.
* **Routing**: a merged label->shard map
  (:class:`~repro.streaming.partition.BatchRouter`) fans each incoming
  batch out only to the shards whose queries could bind it; a record no
  query can bind is dropped before any shard sees it.  Every shard receives
  *every* record its own queries could match, so no shard needs another
  shard's state.
* **Merging**: every emitted event carries the local index of the edge that
  triggered it (:attr:`~repro.streaming.events.MatchEvent.trigger_index`);
  the router tags each routed record with its global stream index, so the
  per-shard event streams merge back into exactly the order the single
  engine would have produced -- (global trigger index, query registration
  order, per-shard emission order) -- and are then renumbered with global
  sequence numbers.  Feeding the same batches to a sharded engine (any
  shard count) and to a single engine yields identical event lists.

Event-time ingestion composes with sharding at the parent: when the
:class:`EngineConfig` template sets ``allowed_lateness``, one
:class:`~repro.streaming.reorder.ReorderBuffer` lives in front of the
router, re-sorts the *global* stream within the lateness horizon, and fans
watermark-closed prefixes out as in-order batches (shards never buffer
again -- their config copies strip the lateness).  Batches that are
internally out of order without a buffer are split at their global
inversion points and every shard processes per-run segments on the batched
fast path; see :func:`_execute_sub_batch` for why the segment boundaries
must follow the global runs.

Two schedulers are provided, selected by :class:`ShardConfig`:

* ``workers=0`` (default): shards execute serially in-process -- zero
  dependencies, deterministic, what the conformance tests run;
* ``workers=N``: shards execute in a pool of N persistent worker processes
  (``multiprocessing``, fork-based where available), one message round-trip
  per worker per batch with pickle-safe :class:`StreamEdge` sub-batches.
  Register every query *before* the first batch; the pool is started
  lazily on first use and shard state then lives in the workers.

Conformance envelope: routing by label is necessary-condition filtering and
never changes the match set, given the data model's rule that a vertex
identity has exactly one type -- a stream that names the same vertex id
with *different* vertex labels on different records is malformed (the
explicit ``add_vertex`` path rejects it), and under label routing the
shards and the single engine may resolve such a conflict to different
first writers.  The one in-model caveat is vertex *attributes*: they are
shared mutable state conveyed by whichever records carry
``source_attrs``/``target_attrs``.  Those records are broadcast to every
shard, but a shard may still evict a vertex (with its merged attributes)
earlier than the single engine would if the vertex's only remaining edges
were never routed to that shard.  Queries whose predicates read vertex
attributes written by records *outside* their own label set should use
``routing="broadcast"``, which gives every shard the full stream and makes
shard state bit-identical to the single engine's.
"""

from __future__ import annotations

import copy
import multiprocessing
import traceback
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.interning import InternTable
from ..graph.window import TimeWindow
from ..query.query_graph import QueryGraph
from ..stats.plan_cost import plan_cost
from ..streaming.batching import batch_by_count
from ..streaming.edge_stream import StreamEdge
from ..streaming.events import (
    CallbackSink,
    CollectingSink,
    EventSink,
    MatchEvent,
    MultiSink,
    QueryFilterSink,
)
from ..streaming.metrics import ThroughputMeter
from ..streaming.partition import (
    BatchRouter,
    Routing,
    ShardBatch,
    greedy_partition,
    least_loaded_shard,
)
from ..streaming.reorder import ReorderBuffer, ordered_run_slices
from .engine import (
    EngineConfig,
    StreamWorksEngine,
    _make_reorder_buffer,
    intern_query_vocabulary,
    required_retention,
)
from .planner import PlannerConfig, QueryPlanner

__all__ = ["ShardConfig", "ShardedQuery", "ShardedStreamEngine"]


class ShardConfig:
    """Tunables of the sharded engine.

    Parameters
    ----------
    shard_count:
        Number of query shards (each owns a private engine).
    workers:
        ``0`` runs every shard serially in-process; ``N > 0`` runs the
        shards inside ``min(N, shard_count)`` persistent worker processes
        (round-robin shard ownership).
    routing:
        :attr:`Routing.LABELS` (default) or :attr:`Routing.BROADCAST`; see
        the module docstring for the conformance envelope of each.
    engine:
        :class:`EngineConfig` template applied to every shard engine (each
        shard gets its own shallow copy).  ``auto_replan_interval`` must be
        unset: per-shard re-planning would be driven by shard-local edge
        counts and silently diverge from the single-engine event order.
        ``replan_threshold`` / ``replan_check_every`` (selectivity-drift
        replanning) ARE supported: the parent paces the checks on the
        global record count and each shard applies them at its post-batch
        boundary (see :class:`~repro.streaming.partition.ShardBatch`).
    default_window:
        Convenience override for ``engine.default_window``.
    """

    def __init__(
        self,
        shard_count: int = 1,
        workers: int = 0,
        routing: str = Routing.LABELS,
        engine: Optional[EngineConfig] = None,
        default_window: Optional[float] = None,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if routing not in Routing.ALL:
            raise ValueError(f"unknown routing mode {routing!r}")
        if engine is None:
            engine = EngineConfig(default_window=default_window)
        elif default_window is not None:
            # never mutate a caller-owned config: it may also drive an
            # unrelated engine
            engine = copy.copy(engine)
            engine.default_window = EngineConfig.validate_default_window(default_window)
        if engine.auto_replan_interval is not None:
            raise ValueError(
                "auto_replan_interval is not supported on sharded engines: "
                "per-shard replans trigger on shard-local edge counts and would "
                "diverge from the single-engine event order"
            )
        self.shard_count = shard_count
        self.workers = workers
        self.routing = routing
        self.engine = engine


class ShardedQuery:
    """Registration handle for one query on the sharded engine.

    The parent-side record of where a query lives and how it is accounted:
    its assigned ``shard_id``, the global registration ``order`` (which
    ties merged event ordering to single-engine query iteration order),
    the plan ``cost`` used for greedy balancing, its resolved ``window``,
    and the running ``match_count``.  Obtained from
    :meth:`ShardedStreamEngine.register_query`; not constructed directly.
    """

    def __init__(
        self,
        name: str,
        query: QueryGraph,
        shard_id: int,
        order: int,
        cost: float,
        window: Optional[TimeWindow] = None,
    ):
        self.name = name
        self.query = query
        #: Query time window (as resolved by the owning shard engine).
        self.window = window if window is not None else TimeWindow(None)
        #: Shard the query was assigned to.
        self.shard_id = shard_id
        #: Global registration order (ties the merged event order to the
        #: order the unsharded engine would iterate its queries in).
        self.order = order
        #: Estimated plan cost used for greedy balancing.
        self.cost = cost
        self.match_count = 0
        #: Parent-level sinks owned by this registration (``on_match``).
        self.sinks: List[EventSink] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedQuery({self.name!r}, shard={self.shard_id}, "
            f"cost={self.cost:.1f}, matches={self.match_count})"
        )


def _execute_sub_batch(
    engine: StreamWorksEngine,
    records: List[StreamEdge],
    per_record: bool,
    clock,
    watermark: float = float("-inf"),
    replan_checks: int = 0,
) -> List[MatchEvent]:
    """Run one routed sub-batch through a shard engine, mirroring the parent.

    ``clock`` aligns the shard's eviction horizon with the *global* stream
    time the single engine would be at: a shard only sees the records routed
    to it, so its own ``current_time`` can lag behind the stream whenever
    the newest records were routed elsewhere, and a lagging eviction horizon
    would let a late edge match history the single engine had already
    evicted.  In batched mode ``clock`` is a
    ``(pre, [(count, anchor, post), ...])`` pair: ``pre`` (global time
    before the parent batch) catches the shard up on the end-of-batch
    sweeps it missed while the stream went to other shards, and each
    subsequent entry describes one *ordered run* of the parent batch (the
    parent splits internally out-of-order batches at their global inversion
    points).  ``count`` is how many of this shard's records fall inside the
    run -- the shard processes that segment with the batched fast path, or,
    when the run routed it nothing, still sweeps every matcher's partials
    (the single engine sweeps all matchers once per run, and with late
    records legal across batches the sweep *sequence* decides what
    survives).  ``anchor`` is the run's global minimum timestamp (where the
    single engine anchors that sweep) and ``post`` the global running
    maximum after the run (the deferred eviction the single engine applies
    there).  Aligning shard segments to the global run boundaries -- rather
    than re-splitting the shard's own sub-batch, which is often *coarser*
    because routing removed the inverting records -- is what keeps events
    byte-identical: a coarser segment would pre-ingest edges across a
    global run boundary and detect cross-run matches on earlier trigger
    edges than the single engine does.  In per-record mode ``clock`` is one
    global running-maximum per record, applied before the record so the
    store matches what the single engine would hold at that record's
    matching step.

    ``watermark`` is the parent's event-time horizon at dispatch (the
    reorder buffer's watermark, or the global stream clock without one);
    it is stamped onto the shard engine so per-shard ``metrics()`` expose
    it even when shard state lives in a worker process.

    ``replan_checks`` is the number of selectivity-drift checks the parent's
    *global* cadence (``EngineConfig.replan_check_every`` against the global
    record count) declares due at the end of this sub-batch.  The shard runs
    them itself against its own monitor and statistics -- parent decides
    when, shards apply -- at the same quiescent post-batch boundary the
    single engine uses, so any replan the check triggers migrates state
    between complete batches, never mid-run.
    """
    engine.event_time_watermark = watermark
    if per_record:
        events: List[MatchEvent] = []
        for record, record_clock in zip(records, clock):
            if record_clock != float("-inf"):
                engine.graph.evict_expired(record_clock)
                # pin the shard's stream clock to the global one BEFORE the
                # record ingests: the single engine's ingest-time eviction
                # runs at the global clock, so a dead-on-arrival late record
                # (already outside retention) dies there before matching --
                # a shard whose own clock lags (its newest records were
                # routed elsewhere) would otherwise keep it and report
                # matches the single engine never emits
                engine.graph.advance_time(record_clock)
            events.extend(engine.process_record(record))
    else:
        pre_clock, run_slices = clock
        if pre_clock != float("-inf"):
            engine.graph.evict_expired(pre_clock)
        events = []
        offset = 0
        run_start_clock = pre_clock
        for count, anchor, post_clock in run_slices:
            segment = records[offset : offset + count]
            offset += count
            if run_start_clock != float("-inf"):
                # pin the shard's stream clock to the global clock at the
                # run's start: the batched path's dead-on-arrival skip
                # (records already outside retention at ingest) tests
                # against the stream clock, and a shard whose own clock
                # lags (its newest records were routed elsewhere) would
                # keep -- and match -- a record the single engine kills.
                # Within a run deadness depends only on the run-start
                # clock (in-run predecessors are themselves non-decreasing
                # and cannot make a successor dead), so pinning per run
                # reproduces the single engine's determination exactly.
                engine.graph.advance_time(run_start_clock)
            if segment:
                events.extend(engine.process_batch(segment, expiry_anchor=anchor))
            else:
                engine.expire_all_partials(anchor)
            engine.graph.evict_expired(post_clock)
            run_start_clock = post_clock
    for _ in range(replan_checks):
        engine.run_replan_check()
    # the parent's collector is authoritative; dropping the shard-local copy
    # keeps shard memory bounded
    engine.collector.clear()
    return events


def _shard_worker_main(conn, engines: Dict[int, StreamWorksEngine]) -> None:
    """Worker-process loop: own a set of shard engines, serve batch requests.

    Messages from the parent are tuples tagged by their first element:
    ``("batch", per_record, [ShardBatch, ...])`` processes each shard batch
    and replies ``("events", [(shard id, events), ...])``;
    ``("metrics",)`` replies with every owned shard's metrics;
    ``("state",)`` replies with every owned shard's serialised engine state
    (snapshot section payloads, used by parent-level checkpointing);
    ``("stop",)`` acknowledges and exits.  Any exception is reported back as
    ``("error", traceback)`` instead of killing the worker silently.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        kind = message[0]
        try:
            if kind == "batch":
                per_record = message[1]
                replies: List[Tuple[int, List[MatchEvent]]] = []
                for batch in message[2]:
                    events = _execute_sub_batch(
                        engines[batch.shard_id],
                        batch.records(),
                        per_record,
                        batch.clock,
                        batch.watermark,
                        batch.replan_checks,
                    )
                    replies.append((batch.shard_id, events))
                conn.send(("events", replies))
            elif kind == "metrics":
                conn.send(
                    ("metrics", {shard_id: engine.metrics() for shard_id, engine in engines.items()})
                )
            elif kind == "state":
                from ..persistence.state import engine_sections

                conn.send(
                    ("state", {shard_id: engine_sections(engine) for shard_id, engine in engines.items()})
                )
            elif kind == "stop":
                conn.send(("stopped",))
                return
            else:
                conn.send(("error", f"unknown message kind {kind!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class _WorkerHandle:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


class ShardedStreamEngine:
    """Continuous multi-query matching with queries partitioned across shards.

    Mirrors the :class:`StreamWorksEngine` surface (``register_query`` /
    ``process_record`` / ``process_batch`` / ``process_stream`` / ``events``
    / ``metrics``) and produces, batch for batch, the identical event list a
    single engine would -- same matches, same order, same sequence numbers,
    same detection timestamps.

    Usable as a context manager; :meth:`close` shuts the worker pool down
    (a no-op for the serial scheduler).
    """

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        shard_count: Optional[int] = None,
        workers: Optional[int] = None,
        default_window: Optional[float] = None,
        routing: Optional[str] = None,
    ):
        if config is None:
            config = ShardConfig(
                shard_count=shard_count if shard_count is not None else 1,
                workers=workers if workers is not None else 0,
                routing=routing if routing is not None else Routing.LABELS,
                default_window=default_window,
            )
        else:
            if shard_count is not None and shard_count != config.shard_count:
                raise ValueError("pass shard_count either via config or directly, not both")
            if workers is not None and workers != config.workers:
                raise ValueError("pass workers either via config or directly, not both")
            if default_window is not None:
                engine_config = copy.copy(config.engine)
                engine_config.default_window = EngineConfig.validate_default_window(
                    default_window
                )
                config = ShardConfig(
                    shard_count=config.shard_count,
                    workers=config.workers,
                    routing=config.routing,
                    engine=engine_config,
                )
            if routing is not None and routing != config.routing:
                raise ValueError("pass routing either via config or directly, not both")
        self.config = config
        #: Event-time ingestion happens once, in the parent, *before*
        #: routing: a single reorder buffer (multi-source: one watermark
        #: per record ``source_id``, min-release across active sources)
        #: re-sorts the global stream and its watermark-closed prefixes fan
        #: out as in-order batches, so the per-shard engines must not
        #: buffer again (their copy of the config has the lateness -- and
        #: the idle-source timeout, which only means anything next to a
        #: buffer -- stripped).
        self.reorder: Optional[ReorderBuffer] = _make_reorder_buffer(config.engine)
        shard_engine_config = copy.copy(config.engine)
        shard_engine_config.allowed_lateness = None
        shard_engine_config.idle_source_timeout = None
        # replan cadence is a parent-level concern: the parent counts the
        # *global* stream and tells each shard how many checks are due per
        # batch (ShardBatch.replan_checks); a shard pacing itself on its own
        # shard-local edge count would drift from the single engine's
        # check boundaries.  The threshold stays: shards own the monitors
        # and score their own queries when told to check.
        shard_engine_config.replan_check_every = None
        # autosave is a parent-level concern: a shard checkpointing itself
        # mid-batch would race the parent's snapshot and clobber its path
        shard_engine_config.checkpoint_every = None
        shard_engine_config.checkpoint_path = None
        #: One private engine per shard (state moves into the worker
        #: processes once a pool scheduler starts).
        self.shards: List[StreamWorksEngine] = [
            StreamWorksEngine(config=copy.copy(shard_engine_config))
            for _ in range(config.shard_count)
        ]
        # with the dispatch index off, the single engine's exhaustive loop
        # touches (and expires) every matcher on every record; mirroring
        # that exactly requires every shard to see the full stream, so
        # label routing is forced to broadcast in that configuration
        routing_mode = config.routing if config.engine.use_dispatch_index else Routing.BROADCAST
        self.router = BatchRouter(config.shard_count, mode=routing_mode)
        self.queries: Dict[str, ShardedQuery] = {}
        #: Parent intern table: the full registered vocabulary, pushed to
        #: every shard at registration (:meth:`InternTable.adopt`) so the
        #: per-shard tables agree on query-label ids regardless of which
        #: shard a query landed on.  Stream labels admitted mid-stream may
        #: still differ per shard -- harmless, ids are engine-internal.
        self.interning = InternTable()
        self._shard_loads: List[float] = [0.0] * config.shard_count
        self._registration_seq = 0
        self.collector = CollectingSink()
        self._sinks = MultiSink([self.collector])
        self._sequence = 0
        self.edges_processed = 0
        #: ``process_batch`` invocations so far (parent-level autosave cadence).
        self.batches_processed = 0
        #: Monotone snapshot epoch (see :attr:`StreamWorksEngine.checkpoint_epoch`).
        self.checkpoint_epoch = 0
        self.throughput = ThroughputMeter()
        #: Records sent to each shard so far -- maps a shard event's
        #: ``trigger_index`` back into the in-flight sub-batch.
        self._records_sent: List[int] = [0] * config.shard_count
        #: Global stream time (largest timestamp offered so far); shards are
        #: evicted against this clock so their windows behave exactly as the
        #: single engine's would, even for records routed elsewhere.
        self._clock = float("-inf")
        #: Global record count at which the next selectivity-drift replan
        #: check is due (None = automatic checks disabled).  Mirrors the
        #: single engine's marker; the parent owns the cadence and attaches
        #: the due check count to every shard batch.
        self._next_replan_check: Optional[int] = (
            config.engine.replan_check_every
            if config.engine.replan_threshold is not None
            and config.engine.replan_check_every is not None
            else None
        )
        self._started = False
        self._closed = False
        self._workers: Optional[List[_WorkerHandle]] = None
        self._worker_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # query registration / partitioning
    # ------------------------------------------------------------------
    def register_query(
        self,
        query: QueryGraph,
        name: Optional[str] = None,
        window: Optional[float] = None,
        strategy: Optional[str] = None,
        on_match: Optional[callable] = None,
        dedupe_structural: Optional[bool] = None,
        shard: Optional[int] = None,
        _cost: Optional[float] = None,
    ) -> ShardedQuery:
        """Register a continuous query, assigning it to a shard.

        The shard is chosen greedily: the query's plan is costed with
        :func:`~repro.stats.plan_cost.plan_cost` and the query goes to the
        currently least-loaded shard (``shard`` overrides the choice).
        ``on_match`` callbacks run in the parent, after the merge, so they
        observe globally ordered events regardless of the scheduler.

        Every query must be registered before the first batch is processed,
        under either scheduler.  Label routing means a shard only holds the
        history *its* queries needed; a query registered mid-stream would
        land on a shard missing the in-window edges routing skipped, and
        silently miss matches the single engine would report.  (The single
        engine supports live registration because its one graph holds
        everything; supporting it here would require a history backfill.)
        """
        query_name = name or query.name
        if query_name in self.queries:
            raise ValueError(f"a query named {query_name!r} is already registered")
        self._check_mutable("register_query")
        # keyed on ingest, not on scheduler state: close() resets _started
        # on serial engines, but the missing-history problem is about
        # records already routed past the new query's shard
        if self.edges_processed > 0:
            raise RuntimeError(
                "register_query is not allowed once the sharded engine has "
                "processed records: the new query's shard would be missing the "
                "graph history that routing skipped for it; register every "
                "query up front (or build a new engine)"
            )
        if shard is not None and not 0 <= shard < self.config.shard_count:
            raise ValueError(f"shard must be in [0, {self.config.shard_count})")
        if self.config.engine.checkpoint_every is not None:
            # parent-level autosave: the shard configs are stripped, so the
            # shard engine's own registration check never fires
            StreamWorksEngine._check_checkpointable(query, query_name)

        if _cost is None:
            _cost = self._plan_cost_of(query, strategy)
        cost = _cost
        if shard is None:
            shard = least_loaded_shard(self._shard_loads)
        shard_registration = self.shards[shard].register_query(
            query,
            name=query_name,
            window=window,
            strategy=strategy,
            dedupe_structural=dedupe_structural,
        )
        self.router.add_query(shard, query)
        # registration precedes any pool start (enforced above), so the
        # shard engines are still in-process: push the parent table to ALL
        # shards, not just the owner, keeping query-label ids aligned
        intern_query_vocabulary(self.interning, query)
        adopted = self.interning.labels()
        for shard_engine in self.shards:
            shard_engine.interning.adopt(adopted)
        registration = ShardedQuery(
            query_name, query, shard, self._registration_seq, cost,
            window=shard_registration.window,
        )
        self._registration_seq += 1
        self._shard_loads[shard] += cost
        self.queries[query_name] = registration
        self._sync_retention()
        if on_match is not None:
            sink = QueryFilterSink(query_name, CallbackSink(on_match))
            registration.sinks.append(sink)
            self._sinks.add(sink)
        return registration

    def register_queries(self, queries: Sequence) -> List[ShardedQuery]:
        """Register several queries at once with offline (LPT) balancing.

        ``queries`` is a sequence of :class:`QueryGraph` objects or
        ``(query, kwargs)`` pairs, where ``kwargs`` are forwarded to
        :meth:`register_query` (``name``, ``window``, ``strategy``,
        ``on_match``, ``dedupe_structural``).  Unlike one-at-a-time
        registration -- which greedily places each arrival on the currently
        lightest shard -- the whole set is costed first and partitioned with
        :func:`~repro.streaming.partition.greedy_partition` (sorted by
        descending cost), which balances skewed cost mixes noticeably
        better.  Event ordering follows the sequence order, exactly as if
        each query had been registered individually.
        """
        allowed_kwargs = {"name", "window", "strategy", "on_match", "dedupe_structural"}
        specs: List[Tuple[QueryGraph, Dict[str, Any]]] = []
        for item in queries:
            if isinstance(item, tuple):
                query, kwargs = item
                kwargs = dict(kwargs)
            else:
                query, kwargs = item, {}
            # validate before registering anything so a bad spec mid-batch
            # cannot leave the batch half-registered
            unknown = set(kwargs) - allowed_kwargs
            if unknown:
                raise ValueError(
                    f"unsupported register_queries kwargs for {kwargs.get('name') or query.name!r}: "
                    f"{sorted(unknown)} (shard assignment is computed by the batch)"
                )
            specs.append((query, kwargs))
        costs: Dict[str, float] = {}
        for query, kwargs in specs:
            query_name = kwargs.get("name") or query.name
            if query_name in costs:
                raise ValueError(f"duplicate query name {query_name!r} in batch registration")
            if query_name in self.queries:
                # check the whole batch up front so a collision cannot leave
                # it half-registered
                raise ValueError(f"a query named {query_name!r} is already registered")
            costs[query_name] = self._plan_cost_of(query, kwargs.get("strategy"))
        # seed the partition with the current loads so batch registration
        # composes with queries that are already registered
        assignment = greedy_partition(
            costs, self.config.shard_count, initial_loads=self._shard_loads
        )
        registered: List[ShardedQuery] = []
        try:
            for query, kwargs in specs:
                query_name = kwargs.get("name") or query.name
                registered.append(
                    self.register_query(
                        query,
                        shard=assignment[query_name],
                        _cost=costs[query_name],
                        **kwargs,
                    )
                )
        except Exception:
            # a per-query rejection (e.g. a bad window value) must not leave
            # the batch half-registered: roll back what already landed
            for handle in registered:
                self.unregister_query(handle.name)
            raise
        return registered

    def _plan_cost_of(self, query: QueryGraph, strategy: Optional[str]) -> float:
        """Plan the query (statistics-free) and score it for balancing.

        The shard engine plans again inside its own ``register_query`` --
        deliberately: forwarding this throwaway plan's decomposition would
        force the shard's plan to record the MANUAL strategy, corrupting
        plan metadata, and registration is not a hot path.
        """
        planner = QueryPlanner(
            config=PlannerConfig(
                strategy=strategy or self.config.engine.plan_strategy,
                primitive_size=self.config.engine.primitive_size,
            ),
        )
        return plan_cost(planner.plan(query, strategy=strategy))

    def unregister_query(self, name: str) -> None:
        """Remove a registered query from its shard (partial matches discarded)."""
        if name not in self.queries:
            raise KeyError(name)
        self._check_mutable("unregister_query")
        registration = self.queries.pop(name)
        self.shards[registration.shard_id].unregister_query(name)
        self.router.remove_query(registration.shard_id, registration.query)
        self._shard_loads[registration.shard_id] -= registration.cost
        self._sync_retention()
        for sink in registration.sinks:
            self._sinks.remove(sink)
        registration.sinks.clear()

    def _sync_retention(self) -> None:
        """Pin every shard's graph retention to the *global* retention window.

        The single engine retains ``max`` over every registered query's
        window (unbounded if any query is unbounded).  Each shard engine
        computes that maximum over its own queries only, which would let a
        shard with short-windowed queries evict -- and on duplicate edges,
        re-create -- graph state earlier than the single engine does.  That
        never changes the match set (admissibility is checked per query
        window) but it perturbs enumeration order and vertex-attribute
        retention, so every shard is pinned to the global window instead,
        computed with the single engine's own formula.
        """
        retention = required_retention(
            (q.window for q in self.queries.values()), self.config.engine.default_window
        )
        for engine in self.shards:
            # pre-fork only by design: register/unregister call _check_mutable
            # first, which refuses once the worker pool has started, so this
            # write never happens after the shards were shipped to workers
            engine.graph.window = retention  # repro-lint: ignore[fork-safety]

    def _check_mutable(self, operation: str) -> None:
        if self._closed:
            raise RuntimeError(f"{operation} is not allowed on a closed sharded engine")
        if self._started and self.config.workers > 0:
            raise RuntimeError(
                f"{operation} is not allowed after the worker pool has started: "
                "shard state lives in the worker processes; close() the engine "
                "and build a new one to change the registered queries"
            )

    def assignments(self) -> Dict[str, int]:
        """Return ``{query name: shard id}`` for every registered query."""
        return {name: registration.shard_id for name, registration in self.queries.items()}

    def shard_loads(self) -> List[float]:
        """Return the summed estimated plan cost assigned to each shard.

        One float per shard id -- the balancing objective the greedy
        assignment minimises the spread of; compare with
        ``metrics()["shards"]`` for how estimates matched reality.
        """
        return list(self._shard_loads)

    def add_sink(self, sink: EventSink) -> None:
        """Attach an additional event sink (delivered merged, in global order).

        Sinks run in the parent after the deterministic merge, so they
        observe the exact single-engine event order under either
        scheduler.  Not serialised by :meth:`checkpoint`; re-attach after
        :meth:`restore`.
        """
        self._sinks.add(sink)

    # ------------------------------------------------------------------
    # scheduler lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def fork_available() -> bool:
        """Return ``True`` when fork-based worker processes are supported."""
        return "fork" in multiprocessing.get_all_start_methods()

    def start(self) -> None:
        """Start the scheduler (lazy; called automatically on first batch).

        The worker pool prefers the ``fork`` start method -- the workers
        inherit the fully-registered shard engines with no pickling.  On
        platforms without fork the engines are pickled to spawned workers.
        """
        if self._closed:
            raise RuntimeError(
                "this sharded engine has been closed: its stream state was "
                "lost with the worker pool; build a new engine"
            )
        if self._started:
            return
        self._started = True
        if self.config.workers <= 0:
            return
        method = "fork" if self.fork_available() else None
        context = multiprocessing.get_context(method)
        worker_count = min(self.config.workers, self.config.shard_count)
        self._worker_of = {
            shard_id: shard_id % worker_count for shard_id in range(self.config.shard_count)
        }
        self._workers = []
        for worker_index in range(worker_count):
            owned = {
                shard_id: self.shards[shard_id]
                for shard_id, owner in self._worker_of.items()
                if owner == worker_index
            }
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, owned),
                daemon=True,
                name=f"shard-worker-{worker_index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process, parent_conn))

    def close(self) -> None:
        """Shut down the worker pool (no-op for the serial scheduler).

        Closing a pool-mode engine (``workers > 0``) makes it unusable --
        whether or not the pool had started -- because a started pool's
        shard state dies with the workers, and allowing reuse of a
        never-started one would silently spawn a fresh pool outside the
        caller's lifecycle management.  Further ingest or metrics calls
        raise.  Serial engines keep all state in-process and stay usable.
        """
        if self.config.workers > 0:
            self._closed = True
        workers, self._workers = self._workers, None
        self._started = False
        if not workers:
            return
        for handle in workers:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in workers:
            try:
                if handle.conn.poll(1.0):
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=1.0)

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------
    def register_source(self, source_id: str) -> None:
        """Declare a stream source on the parent event-time buffer.

        Mirrors :meth:`StreamWorksEngine.register_source`: sources live in
        the parent's multi-source reorder buffer (shards never buffer), so
        registration is a parent-level operation and works under both
        schedulers.  Raises ``RuntimeError`` when event-time ingestion is
        not configured.
        """
        if self.reorder is None:
            raise RuntimeError(
                "register_source requires event-time ingestion: set "
                "allowed_lateness on the ShardConfig's engine template"
            )
        self.reorder.register_source(source_id)

    def process_record(self, record: StreamEdge) -> List[MatchEvent]:
        """Ingest one record (mirrors single-engine ``process_record``)."""
        if self.reorder is not None:
            return self._process_with_reorder([record])
        return self._run_batch([record], per_record=True)

    def process_batch(self, records: Sequence[StreamEdge]) -> List[MatchEvent]:
        """Ingest a batch; returns the merged, globally ordered events.

        Mirrors the single engine exactly.  An internally out-of-order
        batch is split at its *global* inversion points and each shard runs
        the batched fast path over its per-run segments (see
        :func:`_execute_sub_batch`); the parent-level per-record path
        remains only for ``use_dispatch_index=False``, where the single
        engine's exhaustive loop runs per record anyway and routing
        per_record=True through the parent keeps the per-record global
        eviction clocks in play (a shard's own clock lags the stream
        whenever newer records were routed elsewhere).  With event-time
        ingestion configured the batch is admitted into the parent's
        reorder buffer instead, exactly as the single engine does.
        """
        records = list(records)
        if self.reorder is not None:
            events = self._process_with_reorder(records)
        elif not records:
            events = []
        else:
            per_record = not self.config.engine.use_dispatch_index
            events = self._run_batch(records, per_record=per_record)
        self.batches_processed += 1
        self._maybe_autosave()
        return events

    def _maybe_autosave(self) -> None:
        """Parent-level batch-cadence autosave (mirrors the single engine).

        As there, an autosave failure is re-raised as a ``SnapshotError``
        noting that the batch WAS processed (events are in :meth:`events`)
        so the caller does not re-feed it.
        """
        if (
            self.config.engine.checkpoint_every is None
            or self.batches_processed % self.config.engine.checkpoint_every != 0
        ):
            return
        from ..persistence.snapshot import SnapshotError

        try:
            self.checkpoint(self.config.engine.checkpoint_path)
        except Exception as error:
            raise SnapshotError(
                f"autosave to {self.config.engine.checkpoint_path!r} failed after "
                f"batch {self.batches_processed}: {error}. The batch itself was "
                f"fully processed -- its events are in engine.events(); do NOT "
                f"re-feed it. Fix the checkpoint target (or unset "
                f"checkpoint_every) and continue."
            ) from error

    def _process_with_reorder(self, records: List[StreamEdge]) -> List[MatchEvent]:
        """Admit records into the parent reorder buffer; process the releases.

        Mirrors the single engine's event-time path: the watermark-closed
        prefix fans out as one in-order batch, then late records handed
        back by the ``process_degraded`` policy run on the exact per-record
        path in arrival order.
        """
        late = self.reorder.offer_all(records)
        ready = self.reorder.drain_ready()
        return self._process_released(ready, late, self.reorder.watermark)

    def _process_released(
        self,
        ready: Sequence[StreamEdge],
        late: Sequence[StreamEdge],
        watermark: float,
    ) -> List[MatchEvent]:
        """Process one buffer release (shared with the async ingest front-end).

        ``watermark`` is the horizon at release time, passed explicitly so
        shard batches are stamped with the value the synchronous path would
        have used even when an async admission thread has already advanced
        the buffer past it.
        """
        events: List[MatchEvent] = []
        if ready:
            events.extend(
                self._run_batch(
                    list(ready),
                    per_record=not self.config.engine.use_dispatch_index,
                    watermark=watermark,
                )
            )
        for record in late:
            events.extend(self._run_batch([record], per_record=True, watermark=watermark))
        return events

    def _process_flushed(
        self, remainder: List[StreamEdge], watermark: Optional[float] = None
    ) -> List[MatchEvent]:
        """Process the buffer's end-of-stream tail (shared with the async front-end).

        The async front-end passes the ``watermark`` it captured under its
        buffer lock; reading ``self.reorder.watermark`` here instead would
        race the ingest thread (unlocked source-dict iteration) and could
        stamp shard batches with a horizon advanced by post-flush
        admissions.  The synchronous path passes ``None`` and keeps its
        read-at-dispatch behaviour.
        """
        return self._run_batch(
            remainder,
            per_record=not self.config.engine.use_dispatch_index,
            watermark=watermark,
        )

    def flush(self) -> List[MatchEvent]:
        """Release and process the reorder buffer's tail (end of stream).

        A no-op returning ``[]`` when event-time ingestion is not
        configured; mirrors single-engine :meth:`StreamWorksEngine.flush`.
        Returns the tail's events (also collected in :meth:`events`).
        """
        if self.reorder is None:
            return []
        remainder = self.reorder.flush()
        if not remainder:
            return []
        return self._process_flushed(remainder)

    def process_stream(
        self, stream: Iterable[StreamEdge], batch_size: Optional[int] = None
    ) -> List[MatchEvent]:
        """Ingest an entire stream, optionally sliced into count batches.

        With event-time ingestion configured the buffered tail is flushed
        once the stream is exhausted.
        """
        events: List[MatchEvent] = []
        if batch_size is None:
            for record in stream:
                events.extend(self.process_record(record))
        else:
            for batch in batch_by_count(stream, batch_size):
                events.extend(self.process_batch(batch))
        events.extend(self.flush())
        return events

    def _run_batch(
        self,
        records: List[StreamEdge],
        per_record: bool,
        watermark: Optional[float] = None,
    ) -> List[MatchEvent]:
        self.start()
        self.throughput.start()
        base_index = self.edges_processed
        self.edges_processed += len(records)
        # parent decides WHEN replan checks run (global record cadence, same
        # while-loop catch-up as the single engine's _maybe_replan_check);
        # every shard applies that many checks at its quiescent post-batch
        # boundary, including shards this batch routed nothing to -- the
        # single engine checks every registered query regardless of which
        # records arrived.
        replan_checks = 0
        if self._next_replan_check is not None:
            while self.edges_processed >= self._next_replan_check:
                self._next_replan_check += self.config.engine.replan_check_every
                replan_checks += 1
        # global stream clock: shards evict against the whole stream's time,
        # not just the sub-stream routed to them.  For the per-record path
        # each entry is the running maximum *before* that record -- the
        # single engine's store state at the moment the record arrives (its
        # own timestamp joins the eviction horizon only after ingest, which
        # matters for vertex-isolation eviction); the batched path evicts at
        # the running maximum after each ordered run (the deferred sweeps'
        # times).
        clocks: List[float] = []
        pre_batch_clock = self._clock
        clock = self._clock
        for record in records:
            clocks.append(clock)
            if record.timestamp > clock:
                clock = record.timestamp
        self._clock = clock
        per_shard = self.router.route(records, base_index)
        if watermark is None:
            watermark = self.reorder.watermark if self.reorder is not None else self._clock
        batches: List[ShardBatch] = []
        if per_record:
            # with checks due, every shard joins the fan-out: a shard whose
            # queries saw no records still owes its monitor the check
            shard_ids = (
                list(range(self.config.shard_count)) if replan_checks else sorted(per_shard)
            )
            for shard_id in shard_ids:
                entries = per_shard.get(shard_id, [])
                batches.append(
                    ShardBatch(
                        shard_id,
                        entries,
                        watermark=watermark,
                        clock=[clocks[index - base_index] for index, _ in entries],
                        replan_checks=replan_checks,
                    )
                )
        else:
            # split the parent batch at its GLOBAL inversion points; each
            # shard processes its per-run segments with the batched fast
            # path.  The single engine's fast path sweeps EVERY matcher's
            # partials once per run, so every shard joins the fan-out (an
            # empty segment still delivers that sweep -- with late records
            # legal across batches the sweep sequence decides what
            # survives), and the segment boundaries must follow the global
            # runs, not the shard's own (often coarser) inversion structure
            # (see _execute_sub_batch).
            run_meta: List[Tuple[int, float, float]] = []
            post_clock = pre_batch_clock
            for start, end in ordered_run_slices(records):
                if records[end - 1].timestamp > post_clock:
                    post_clock = records[end - 1].timestamp
                run_meta.append((base_index + end, records[start].timestamp, post_clock))
            for shard_id in range(self.config.shard_count):
                entries = per_shard.get(shard_id, [])
                run_slices: List[Tuple[int, float, float]] = []
                pointer = 0
                for end_index, anchor, run_post in run_meta:
                    count = 0
                    while (
                        pointer + count < len(entries)
                        and entries[pointer + count][0] < end_index
                    ):
                        count += 1
                    pointer += count
                    run_slices.append((count, anchor, run_post))
                batches.append(
                    ShardBatch(
                        shard_id,
                        entries,
                        watermark=watermark,
                        clock=(pre_batch_clock, run_slices),
                        replan_checks=replan_checks,
                    )
                )
        #: ``(global trigger index, query registration order, event)``
        tagged: List[Tuple[int, int, MatchEvent]] = []
        if self._workers is None:
            for batch in batches:
                tagged.extend(self._run_shard_serial(batch, per_record))
        else:
            tagged.extend(self._run_shards_pooled(batches, per_record))
        # a query lives in exactly one shard, so events tied on (trigger,
        # registration order) all come from one shard and the stable sort
        # preserves their emission order -- this is precisely the order the
        # single engine emits in
        tagged.sort(key=lambda item: (item[0], item[1]))
        merged: List[MatchEvent] = []
        for _, _, event in tagged:
            event.sequence = self._sequence
            self._sequence += 1
            self.queries[event.query_name].match_count += 1
            self._sinks.deliver(event)
            merged.append(event)
        self.throughput.add(len(records))
        self.throughput.stop()
        return merged

    def _run_shard_serial(
        self, batch: ShardBatch, per_record: bool
    ) -> List[Tuple[int, int, MatchEvent]]:
        engine = self.shards[batch.shard_id]
        local_base = self._records_sent[batch.shard_id]
        self._records_sent[batch.shard_id] += len(batch)
        events = _execute_sub_batch(
            engine, batch.records(), per_record, batch.clock, batch.watermark,
            batch.replan_checks,
        )
        return self._tag_events(events, batch.entries, local_base)

    def _run_shards_pooled(
        self, batches: List[ShardBatch], per_record: bool
    ) -> List[Tuple[int, int, MatchEvent]]:
        by_worker: Dict[int, List[Tuple[ShardBatch, int]]] = {}
        for batch in batches:
            local_base = self._records_sent[batch.shard_id]
            self._records_sent[batch.shard_id] += len(batch)
            by_worker.setdefault(self._worker_of[batch.shard_id], []).append(
                (batch, local_base)
            )
        pending: List[Tuple[int, List[Tuple[ShardBatch, int]]]] = []
        for worker_index in sorted(by_worker):
            items = by_worker[worker_index]
            self._workers[worker_index].conn.send(
                ("batch", per_record, [batch for batch, _ in items])
            )
            pending.append((worker_index, items))
        tagged: List[Tuple[int, int, MatchEvent]] = []
        for worker_index, items in pending:
            reply = self._receive(worker_index)
            for (batch, local_base), (reply_shard, events) in zip(items, reply[1]):
                if reply_shard != batch.shard_id:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"worker {worker_index} replied for shard {reply_shard}, "
                        f"expected {batch.shard_id}"
                    )
                tagged.extend(self._tag_events(events, batch.entries, local_base))
        return tagged

    def _tag_events(
        self,
        events: List[MatchEvent],
        sub_batch: List[Tuple[int, StreamEdge]],
        local_base: int,
    ) -> List[Tuple[int, int, MatchEvent]]:
        tagged = []
        for event in events:
            global_index = sub_batch[event.trigger_index - local_base][0]
            event.trigger_index = global_index
            tagged.append((global_index, self.queries[event.query_name].order, event))
        return tagged

    def _receive(self, worker_index: int):
        try:
            reply = self._workers[worker_index].conn.recv()
        except (EOFError, OSError) as exc:
            self.close()
            raise RuntimeError(f"shard worker {worker_index} died mid-request") from exc
        if reply[0] == "error":
            # other workers may still have replies queued for this request;
            # the pipe protocol is desynchronized, so tear the pool down and
            # leave the engine closed rather than let a later metrics() or
            # process_batch() read a stale reply
            self.close()
            raise RuntimeError(f"shard worker {worker_index} failed:\n{reply[1]}")
        return reply

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> Dict[str, Any]:
        """Write an atomic snapshot of the whole sharded engine to ``path``.

        Captures the parent state (reorder buffer, registrations, clocks,
        counters, collected events) plus a full per-shard engine snapshot
        under one manifest.  With a running worker pool the shard states
        are fetched from the workers, so a pool-mode engine checkpoints
        exactly like a serial one.  Returns the snapshot manifest (monotone
        ``epoch`` included).  See :meth:`restore` for the resume contract.
        """
        from ..persistence.snapshot import write_snapshot
        from ..persistence.state import SHARDED_KIND, engine_sections, sharded_sections

        if self._closed:
            raise RuntimeError(
                "checkpoint is not allowed on a closed sharded engine: its "
                "shard state died with the worker pool"
            )
        if self._workers:
            by_shard: Dict[int, Dict[str, Any]] = {}
            for handle in self._workers:
                handle.conn.send(("state",))
            for worker_index in range(len(self._workers)):
                reply = self._receive(worker_index)
                by_shard.update(reply[1])
            shard_states = [by_shard[shard_id] for shard_id in range(self.config.shard_count)]
        else:
            shard_states = [engine_sections(engine) for engine in self.shards]
        self.checkpoint_epoch += 1
        return write_snapshot(
            path, SHARDED_KIND, self.checkpoint_epoch, sharded_sections(self, shard_states)
        )

    @classmethod
    def restore(cls, path: str) -> "ShardedStreamEngine":
        """Reconstruct a sharded engine from a :meth:`checkpoint` snapshot.

        The restored engine resumes exactly at its watermark: feeding it
        the remainder of the stream yields byte-for-byte the events
        (matches, order, sequence numbers) of the uninterrupted run, under
        either scheduler -- a pool-configured engine restores its shard
        state in-process and re-forks the pool lazily on the next batch.
        ``on_match`` callbacks and custom sinks are not serialisable and
        must be re-attached via :meth:`add_sink`.  Raises
        :class:`~repro.persistence.snapshot.SnapshotCorruptError` on any
        torn or damaged snapshot and
        :class:`~repro.persistence.snapshot.SnapshotVersionError` on a
        format-version mismatch -- never a silent partial load.
        """
        from ..persistence.snapshot import read_snapshot
        from ..persistence.state import SHARDED_KIND, load_sharded_sections

        manifest, sections = read_snapshot(path, kind=SHARDED_KIND)
        engine = load_sharded_sections(sections)
        engine.checkpoint_epoch = manifest["epoch"]
        return engine

    # ------------------------------------------------------------------
    # results and introspection
    # ------------------------------------------------------------------
    def events(self, query_name: Optional[str] = None) -> List[MatchEvent]:
        """Return collected merged events, optionally filtered by query name."""
        if query_name is None:
            return list(self.collector.events)
        return self.collector.for_query(query_name)

    def match_counts(self) -> Dict[str, int]:
        """Return ``{query name: complete matches emitted so far}`` across all
        shards (counted at the parent, so identical to the single engine's)."""
        return {name: registration.match_count for name, registration in self.queries.items()}

    def metrics(self) -> Dict[str, Any]:
        """Return merged metrics: routing, throughput, per-shard engine metrics.

        Per-shard metrics are fetched from the worker processes when a pool
        scheduler is running; shard-level totals (edges, graph sizes,
        stored partial matches) are folded into ``totals``.  Collect them
        before :meth:`close` on a pool engine -- the shard state dies with
        the workers.
        """
        if self._closed:
            raise RuntimeError(
                "this sharded engine has been closed: per-shard metrics were "
                "lost with the worker pool; collect metrics before close()"
            )
        if self._workers:
            shard_metrics: Dict[int, Dict[str, Any]] = {}
            for handle in self._workers:
                handle.conn.send(("metrics",))
            for worker_index in range(len(self._workers)):
                reply = self._receive(worker_index)
                shard_metrics.update(reply[1])
        else:
            shard_metrics = {
                shard_id: engine.metrics() for shard_id, engine in enumerate(self.shards)
            }
        # replan rollup: counters sum over the per-shard monitors (a cadence
        # tick runs one check on EVERY shard, so checks_run counts
        # shard-checks); last_errors / plan_versions merge cleanly because a
        # query lives in exactly one shard
        shard_replans = [m["replan"] for m in shard_metrics.values()]
        error_count = sum(r["error_count"] for r in shard_replans)
        mean_error = (
            sum(r["mean_error"] * r["error_count"] for r in shard_replans) / error_count
            if error_count
            else 0.0
        )
        last_errors: Dict[str, float] = {}
        plan_versions: Dict[str, int] = {}
        for shard_replan in shard_replans:
            last_errors.update(shard_replan["last_errors"])
            plan_versions.update(shard_replan["plan_versions"])
        replan = {
            "enabled": self._next_replan_check is not None,
            "threshold": self.config.engine.replan_threshold,
            "check_every": self.config.engine.replan_check_every,
            "checks_run": sum(r["checks_run"] for r in shard_replans),
            "triggers_fired": sum(r["triggers_fired"] for r in shard_replans),
            "plans_applied": sum(r["plans_applied"] for r in shard_replans),
            "partials_migrated": sum(r["partials_migrated"] for r in shard_replans),
            "partials_dropped": sum(r["partials_dropped"] for r in shard_replans),
            "max_error_seen": max((r["max_error_seen"] for r in shard_replans), default=0.0),
            "mean_error": mean_error,
            "error_count": error_count,
            "last_errors": last_errors,
            "plan_versions": plan_versions,
        }
        # sketch rollup: every counter sums cleanly over shards (each shard
        # owns a private dispatch front and its matchers' dedup memories);
        # configuration facts come from the shared engine config
        shard_sketches = [m["sketch"] for m in shard_metrics.values()]
        dedup_keys = (
            "entries",
            "peak_entries",
            "probes",
            "front_negatives",
            "front_false_positives",
            "confirms",
            "evictions_budget",
            "evictions_horizon",
        )
        sketch = {
            "dispatch_front": {
                "enabled": self.config.engine.sketch_dispatch,
                "probes": sum(s["dispatch_front"]["probes"] for s in shard_sketches),
                "rejections": sum(s["dispatch_front"]["rejections"] for s in shard_sketches),
                "false_positives": sum(
                    s["dispatch_front"]["false_positives"] for s in shard_sketches
                ),
            },
            "dedup_memory": dict(
                {"budget": self.config.engine.dedup_memory_budget},
                **{
                    key: sum(s["dedup_memory"][key] for s in shard_sketches)
                    for key in dedup_keys
                },
            ),
            "stats_backend": "countmin" if self.config.engine.sketch_stats else "exact",
        }
        # columnar rollup: the hot-path counters sum cleanly over shards
        # (each shard owns a private intern table and dispatch memos);
        # interned_labels reports the PARENT table -- the registered
        # vocabulary every shard agrees on -- not a sum, because the same
        # label interned on four shards is one label, not four
        shard_columnars = [m["columnar"] for m in shard_metrics.values()]
        columnar_keys = (
            "compiled_queries",
            "compiled_checks",
            "batches_vectorized",
            "records_prefiltered",
            "dispatch_memo_hits",
            "leaves_pruned",
            "range_scans",
            "range_scan_fallbacks",
        )
        columnar = dict(
            {
                "enabled": self.config.engine.columnar,
                "interned_labels": len(self.interning),
            },
            **{
                key: sum(c[key] for c in shard_columnars)
                for key in columnar_keys
            },
        )
        totals = {
            "shard_edges_processed": sum(m["edges_processed"] for m in shard_metrics.values()),
            "graph_vertices": sum(m["graph_vertices"] for m in shard_metrics.values()),
            "graph_edges": sum(m["graph_edges"] for m in shard_metrics.values()),
            "edges_evicted": sum(m["edges_evicted"] for m in shard_metrics.values()),
            "stored_partial_matches": sum(
                sum(m["stored_partial_matches"].values()) for m in shard_metrics.values()
            ),
        }
        return {
            "shard_count": self.config.shard_count,
            "workers": len(self._workers) if self._workers else 0,
            "edges_processed": self.edges_processed,
            "events_emitted": self._sequence,
            "reorder": self.reorder.stats() if self.reorder is not None else None,
            "routing": self.router.stats(),
            "throughput": self.throughput.summary(),
            "shard_loads": self.shard_loads(),
            "assignments": self.assignments(),
            "replan": replan,
            "sketch": sketch,
            "columnar": columnar,
            "totals": totals,
            "shards": {shard_id: shard_metrics[shard_id] for shard_id in sorted(shard_metrics)},
        }

    def describe(self) -> str:
        """Return a human-readable status report of the sharded engine."""
        scheduler = (
            f"pool({len(self._workers)} workers)" if self._workers else "serial"
        )
        lines = [
            f"ShardedStreamEngine: {self.config.shard_count} shards ({scheduler}), "
            f"{len(self.queries)} queries, {self.edges_processed} records offered, "
            f"{self._sequence} events emitted",
        ]
        for shard_id in range(self.config.shard_count):
            names = sorted(
                name for name, registration in self.queries.items()
                if registration.shard_id == shard_id
            )
            lines.append(
                f"  shard {shard_id}: load={self._shard_loads[shard_id]:.1f}, "
                f"queries={names}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStreamEngine(shards={self.config.shard_count}, "
            f"workers={self.config.workers}, queries={len(self.queries)})"
        )
