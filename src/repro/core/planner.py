"""Query planning: turn a query graph plus stream statistics into an SJ-Tree plan.

Paper section 4.1: "the next task is to automatically decompose a query graph
and create a subgraph join tree based on the decomposition ... An important
goal of the decomposition process is to push the most selective subgraph at
the lowest level in the subgraph join-tree to reduce the number of partial
matches."

The planner wires together the pieces built elsewhere:

* a :class:`~repro.stats.summarizer.GraphSummary` (degree / type / triad
  statistics collected from the stream, section 4.3),
* the :class:`~repro.stats.selectivity.SelectivityEstimator`,
* the decomposition strategies of :mod:`repro.core.decomposition`,

and returns a :class:`QueryPlan` that records what was decided and why, so
experiments (and curious users) can inspect the plan rather than treat it as
a black box.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..query.query_graph import QueryGraph
from ..stats.selectivity import SelectivityEstimator
from ..stats.summarizer import GraphSummary
from .decomposition import Decomposition, Strategy, decompose
from .sjtree import SJTree

__all__ = ["QueryPlan", "QueryPlanner", "PlannerConfig"]


class PlannerConfig:
    """Tunables for the query planner."""

    def __init__(
        self,
        strategy: str = Strategy.SELECTIVITY,
        primitive_size: int = 2,
        attribute_equality_selectivity: float = 0.1,
        use_triads: bool = True,
        conditional_ordering: bool = False,
    ):
        if primitive_size not in (1, 2):
            raise ValueError("primitive_size must be 1 or 2")
        self.strategy = strategy
        self.primitive_size = primitive_size
        self.attribute_equality_selectivity = attribute_equality_selectivity
        self.use_triads = use_triads
        #: Order primitives by conditional (given bound vertices) selectivity
        #: instead of marginal selectivity — used by the adaptive-replan loop.
        self.conditional_ordering = conditional_ordering


class QueryPlan:
    """The planner's output: a decomposition plus the evidence used to build it."""

    def __init__(
        self,
        query: QueryGraph,
        decomposition: Decomposition,
        strategy: str,
        estimates: Dict[str, float],
        summary_edge_count: int,
    ):
        self.query = query
        self.decomposition = decomposition
        self.strategy = strategy
        #: ``{primitive name: estimated cardinality}`` in join order.
        self.estimates = estimates
        #: Number of edges the statistics were based on when the plan was made.
        self.summary_edge_count = summary_edge_count

    def build_tree(self) -> SJTree:
        """Materialise a fresh SJ-Tree for this plan."""
        return self.decomposition.build_tree()

    def primitive_count(self) -> int:
        """Return the number of search primitives in the plan."""
        return self.decomposition.primitive_count()

    def describe(self) -> str:
        """Return a human-readable plan report."""
        lines = [
            f"Plan for query {self.query.name!r} "
            f"(strategy={self.strategy}, stats over {self.summary_edge_count} edges)",
            self.decomposition.describe(),
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryPlan({self.query.name!r}, strategy={self.strategy!r}, primitives={self.primitive_count()})"


class QueryPlanner:
    """Produce :class:`QueryPlan` objects from stream statistics."""

    def __init__(self, summary: Optional[GraphSummary] = None, config: Optional[PlannerConfig] = None):
        self.summary = summary
        self.config = config or PlannerConfig()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _estimator(self) -> Optional[SelectivityEstimator]:
        if self.summary is None or self.summary.edge_count == 0:
            return None
        summary = self.summary
        if not self.config.use_triads:
            summary = GraphSummary(
                vertex_labels=summary.vertex_labels,
                edge_labels=summary.edge_labels,
                signatures=summary.signatures,
                degrees=summary.degrees,
                triads=None,
                vertex_count=summary.vertex_count,
                edge_count=summary.edge_count,
            )
        return SelectivityEstimator(
            summary,
            attribute_equality_selectivity=self.config.attribute_equality_selectivity,
        )

    def plan(
        self,
        query: QueryGraph,
        strategy: Optional[str] = None,
        primitives: Optional[Sequence[QueryGraph]] = None,
    ) -> QueryPlan:
        """Plan ``query`` with the configured (or overridden) strategy.

        ``primitives`` forces a manual decomposition regardless of strategy.
        """
        chosen_strategy = strategy or self.config.strategy
        if primitives is not None:
            chosen_strategy = Strategy.MANUAL
        estimator = self._estimator()
        decomposition = decompose(
            query,
            strategy=chosen_strategy,
            estimator=estimator,
            primitive_size=self.config.primitive_size,
            primitives=primitives,
            conditional_ordering=self.config.conditional_ordering,
        )
        estimates = dict(decomposition.estimates)
        if estimator is not None and not estimates:
            estimates = {
                primitive.name: estimator.estimate_primitive(query, primitive)
                for primitive in decomposition.primitives
            }
        return QueryPlan(
            query=query,
            decomposition=decomposition,
            strategy=chosen_strategy,
            estimates=estimates,
            summary_edge_count=self.summary.edge_count if self.summary else 0,
        )

    def plan_all_strategies(self, query: QueryGraph) -> List[QueryPlan]:
        """Return one plan per built-in automatic strategy (used by experiment E5)."""
        plans = []
        for strategy in (
            Strategy.SELECTIVITY,
            Strategy.ANTI_SELECTIVE,
            Strategy.EDGE_BY_EDGE,
            Strategy.BALANCED_PAIRS,
        ):
            plans.append(self.plan(query, strategy=strategy))
        return plans

    def compare(self, query: QueryGraph) -> Dict[str, Dict[str, float]]:
        """Return ``{strategy: {primitive name: estimate}}`` for plan inspection."""
        return {plan.strategy: plan.estimates for plan in self.plan_all_strategies(query)}
