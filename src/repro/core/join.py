"""Join of partial matches under a time window.

Property 2 of the SJ-Tree defines an internal node's subgraph as the join of
its children's subgraphs; at match level the join combines a match from the
left child with a compatible match from the right child.  Compatibility is
exactly :meth:`Match.is_compatible` (agree on shared bindings, stay
injective, never reuse a data edge for two query edges) plus the temporal
constraint: the merged match's extent must still fit inside the query window.
"""

from __future__ import annotations

from typing import Optional

from ..graph.window import TimeWindow
from ..isomorphism.match import Match

__all__ = ["try_join", "joined_span"]


def joined_span(left: Match, right: Match) -> float:
    """Return the temporal extent of the union of two matches' edges."""
    if not left.edge_map and not right.edge_map:
        return 0.0
    earliest = min(left.earliest, right.earliest)
    latest = max(left.latest, right.latest)
    return latest - earliest


def try_join(left: Match, right: Match, window: Optional[TimeWindow] = None) -> Optional[Match]:
    """Join two partial matches, returning ``None`` when they cannot combine.

    The window check is performed *before* building the merged match so that
    incompatible candidates are rejected at the cost of a couple of float
    comparisons.
    """
    if window is not None and window.bounded:
        if not window.admits_span(joined_span(left, right)):
            return None
    if not left.is_compatible(right):
        return None
    return left.merge(right)
