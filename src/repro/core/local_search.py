"""Local search: find primitive matches anchored on a newly-arrived edge.

Paper section 4.1 uses the term *local search* for "a subgraph search
performed in the neighborhood of an edge in the data graph for a small query
subgraph".  This module implements exactly that: given a search primitive
(an SJ-Tree leaf subgraph) and the edge that just arrived, enumerate every
embedding of the primitive that *uses the new edge*.

Restricting the search to embeddings containing the new edge is what makes
the whole algorithm incremental: embeddings made entirely of old edges were
already found when their own last edge arrived, so re-finding them would both
waste time and create duplicates.

The enumeration seeds the generic backtracking matcher with a binding of the
new edge onto each query edge of the primitive it can legally play, then lets
the matcher complete the rest of the primitive within the window.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..graph.types import Edge
from ..graph.window import TimeWindow
from ..isomorphism.candidates import edge_orientations, edge_satisfies, vertex_satisfies
from ..isomorphism.match import Match, MatchConflictError
from ..isomorphism.vf2 import SubgraphMatcher
from ..query.compile import CompiledQuery
from ..query.query_graph import QueryGraph, QueryVertex

__all__ = ["LocalSearcher", "find_primitive_matches"]


class LocalSearcher:
    """Enumerates primitive matches anchored on new edges against one data graph.

    ``compiled`` carries the owning query's pre-compiled predicate tables
    (the columnar hot path); ``None`` keeps the interpreted path verbatim.
    The primitives searched here share the original query's ``QueryVertex``
    / ``QueryEdge`` objects, so one compiled table serves every primitive.
    """

    def __init__(
        self,
        graph,
        window: Optional[TimeWindow] = None,
        compiled: Optional[CompiledQuery] = None,
    ):
        self.graph = graph
        self.window = window if window is not None else TimeWindow(None)
        self.compiled = compiled
        self._matcher = SubgraphMatcher(graph, self.window, compiled=compiled)
        #: Number of seeded backtracking searches performed (benchmark counter).
        self.searches_started = 0
        #: Number of primitive matches produced (benchmark counter).
        self.matches_found = 0

    def _vertex_ok(self, query_vertex: QueryVertex, vertex_id) -> bool:
        """Compiled-table vertex check (only called when ``compiled`` is set)."""
        if not self.graph.has_vertex(vertex_id):
            return False
        vertex = self.graph.vertex(vertex_id)
        return self.compiled.vertex_ok(query_vertex, vertex.label, vertex.attrs)

    def seeds(self, primitive: QueryGraph, new_edge: Edge) -> Iterator[Match]:
        """Yield one-edge matches binding ``new_edge`` to each compatible query edge."""
        compiled = self.compiled
        for query_edge in primitive.edges():
            if compiled is not None:
                if not compiled.edge_ok(query_edge, new_edge.label, new_edge.attrs):
                    continue
            elif not edge_satisfies(new_edge, query_edge):
                continue
            source_var, target_var = query_edge.source, query_edge.target
            for source_vertex, target_vertex in edge_orientations(new_edge, query_edge):
                if (source_var == target_var) != (source_vertex == target_vertex):
                    continue
                if compiled is not None:
                    if not self._vertex_ok(primitive.vertex(source_var), source_vertex):
                        continue
                    if not self._vertex_ok(primitive.vertex(target_var), target_vertex):
                        continue
                elif not vertex_satisfies(self.graph, source_vertex, primitive.vertex(source_var)):
                    continue
                elif not vertex_satisfies(self.graph, target_vertex, primitive.vertex(target_var)):
                    continue
                try:
                    yield Match().with_binding(
                        query_edge.id,
                        new_edge,
                        {source_var: source_vertex, target_var: target_vertex},
                    )
                except MatchConflictError:
                    continue

    def find(self, primitive: QueryGraph, new_edge: Edge) -> List[Match]:
        """Return all embeddings of ``primitive`` that include ``new_edge``.

        Results are deduplicated by binding identity: a primitive with
        repeated edge types can reach the same complete binding from two
        different seeds (the new edge seeded onto either query edge), and the
        downstream SJ-Tree insert must see each embedding once.
        """
        results: List[Match] = []
        seen = set()
        for seed in self.seeds(primitive, new_edge):
            self.searches_started += 1
            for match in self._matcher.find_matches(primitive, seed=seed):
                identity = match.identity()
                if identity in seen:
                    continue
                seen.add(identity)
                results.append(match)
                self.matches_found += 1
        return results


def find_primitive_matches(
    graph,
    primitive: QueryGraph,
    new_edge: Edge,
    window: Optional[TimeWindow] = None,
) -> List[Match]:
    """Convenience wrapper: one-shot local search without keeping counters."""
    return LocalSearcher(graph, window).find(primitive, new_edge)
