"""The incremental continuous-query matcher (paper section 4.2).

One :class:`ContinuousQueryMatcher` serves one registered query.  Its life
cycle per incoming edge is exactly the paper's description of query
execution:

1. *Local search* -- for every SJ-Tree leaf, search the neighbourhood of the
   new edge for embeddings of that leaf's primitive that use the new edge.
2. *Leaf insertion* -- each embedding found is inserted into the leaf's match
   collection (keyed by the parent's cut vertices).
3. *Upward joins* -- the new match is probed against the sibling node's
   collection; every successful combination is inserted one level up, and
   the process repeats until either no join succeeds or the root is reached.
4. *Completion* -- a match inserted at the root is a complete match of the
   query and is returned to the engine (which wraps it in a
   :class:`~repro.streaming.events.MatchEvent`).

Partial matches are expired once their earliest edge has aged out of the
query window (they can never complete any more), which keeps both memory and
join fan-out bounded on long streams.

Duplicate-suppression memory ("which matches have we already reported?") is
held in :class:`~repro.sketch.dedup.DedupMemory` -- a cuckoo-filter front
over a bounded exact confirm store -- instead of grow-only sets.  Entries
expire against the *graph retention* window (not the query window): the only
mechanisms that can re-derive an already-reported identity are same-run
re-discovery and replan migration replay, both of which operate exclusively
on edges still retained in the graph, so an identity whose earliest edge has
been evicted can never be probed again and its memory can be reclaimed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.types import Edge
from ..graph.window import TimeWindow
from ..isomorphism.match import Match
from ..query.compile import CompiledQuery
from ..query.query_graph import QueryGraph
from ..sketch import DedupMemory
from .decomposition import Decomposition
from .join import try_join
from .local_search import LocalSearcher
from .sjtree import SJTree, SJTreeNode

__all__ = ["MatcherStats", "ContinuousQueryMatcher"]


def _identity_key(identity: Tuple[frozenset, frozenset]) -> str:
    """Render a match identity as its canonical string key.

    Uses the same sorted-``repr`` canonicalisation the matcher snapshots
    have always used for identity sets, so keys are hash-seed independent,
    JSON-safe, and equal to ``repr()`` of the legacy snapshot entries
    (which is how pre-sketch snapshots are migrated on load).
    """
    vertices, edges = identity
    return repr(
        [
            sorted(([name, vertex] for name, vertex in vertices), key=repr),
            sorted([query_edge, edge_id] for query_edge, edge_id in edges),
        ]
    )


def _edge_set_key(edge_set: FrozenSet[int]) -> str:
    """Render a structural identity (set of data edge ids) canonically."""
    return repr(sorted(edge_set))


class MatcherStats:
    """Counters describing the work performed by one matcher."""

    def __init__(self) -> None:
        self.edges_processed = 0
        self.leaf_matches_found = 0
        self.joins_attempted = 0
        self.joins_succeeded = 0
        self.complete_matches = 0
        self.duplicate_matches_suppressed = 0
        self.partial_matches_expired = 0
        self.peak_stored_matches = 0

    def to_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict."""
        return {
            "edges_processed": self.edges_processed,
            "leaf_matches_found": self.leaf_matches_found,
            "joins_attempted": self.joins_attempted,
            "joins_succeeded": self.joins_succeeded,
            "complete_matches": self.complete_matches,
            "duplicate_matches_suppressed": self.duplicate_matches_suppressed,
            "partial_matches_expired": self.partial_matches_expired,
            "peak_stored_matches": self.peak_stored_matches,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "MatcherStats":
        """Rebuild counters from :meth:`to_dict` output."""
        stats = cls()
        for name, value in payload.items():
            setattr(stats, name, value)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatcherStats({self.to_dict()})"


class ContinuousQueryMatcher:
    """Incremental matcher for one query over one dynamic graph.

    Parameters
    ----------
    query:
        The registered query graph.
    decomposition:
        The decomposition produced by the planner; its order defines the
        SJ-Tree join order.
    graph:
        The shared dynamic graph store (edges must be ingested into it
        *before* being passed to :meth:`process_edge`).
    window:
        The query's time window ``tW``.
    dedupe_structural:
        When ``True``, complete matches that bind the same set of data edges
        as an already-reported match are suppressed.  Queries with automorphic
        patterns (e.g. "three articles share a keyword") otherwise report
        every permutation of the interchangeable variables as a separate
        match; event-oriented users generally want one event per edge set.
    store_complete_matches:
        Keep complete matches in the root's collection (Property 3 applied to
        the root).  Disable to save memory on very high match-rate streams.
    expiry_min_interval:
        Minimum stream-time gap between partial-match expiry sweeps; ``0.0``
        (default) sweeps on every :meth:`process_edge`.  The engine's batched
        ingest fast path instead calls :meth:`expire_partials` once per batch.
    dedup_memory_budget:
        Maximum number of entries in each duplicate-suppression store
        (``None`` = unbounded).  When the budget covers every identity alive
        inside the graph retention horizon -- the common case -- suppression
        is exact; under adversarial cardinality the store stays bounded and
        the oldest-horizon entries are evicted first, deterministically.
    columnar:
        Compile the query's predicate trees into flat closures
        (:class:`~repro.query.compile.CompiledQuery`) once, here at
        construction, and hand them to the local search -- which also
        enables the graph's sorted-array timestamp range scans during
        candidate enumeration.  Construction is the single compile point:
        registration, replanning and snapshot restore all build a fresh
        matcher, so each of them recompiles against the current plan.
        ``False`` (default) is the interpreted path, verbatim.
    """

    def __init__(
        self,
        query: QueryGraph,
        decomposition: Decomposition,
        graph,
        window: Optional[TimeWindow] = None,
        dedupe_structural: bool = False,
        store_complete_matches: bool = True,
        expiry_min_interval: float = 0.0,
        dedup_memory_budget: Optional[int] = None,
        columnar: bool = False,
    ):
        self.query = query
        self.decomposition = decomposition
        self.graph = graph
        self.window = window if window is not None else TimeWindow(None)
        self.dedupe_structural = dedupe_structural
        self.store_complete_matches = store_complete_matches
        #: Minimum stream-time gap between expiry sweeps (0.0 sweeps on every
        #: call); see :meth:`SJTree.expire_matches` for why skipping is safe.
        self.expiry_min_interval = expiry_min_interval
        self.dedup_memory_budget = dedup_memory_budget
        self.columnar = bool(columnar)
        #: Per-query compiled predicate tables (``None`` on the interpreted
        #: path).  Never serialised: snapshots carry only a shape marker and
        #: restore recompiles by rebuilding the matcher.
        self.compiled: Optional[CompiledQuery] = (
            CompiledQuery(query) if self.columnar else None
        )
        self.tree: SJTree = decomposition.build_tree()
        self.tree.validate()
        self.local_searcher = LocalSearcher(graph, self.window, compiled=self.compiled)
        self.stats = MatcherStats()
        self._dedup_identities = DedupMemory(budget=dedup_memory_budget, seed=31)
        self._dedup_edge_sets = DedupMemory(budget=dedup_memory_budget, seed=37)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def expire_partials(self, now: float) -> int:
        """Sweep partial matches that can no longer complete; return the count dropped.

        Expiry is a pure memory/perf optimisation: an expired partial would be
        rejected by the window check at join or emit time anyway, so sweeping
        less often (as the engine's batched ingest fast path does -- once per
        batch instead of once per edge) never changes the match set.
        """
        if not self.window.bounded:
            return 0
        dropped = self.tree.expire_matches(self.window, now, self.expiry_min_interval)
        self.stats.partial_matches_expired += dropped
        # Reclaim dedup memory on the same cadence, but against the *graph
        # retention* window: an identity whose earliest edge is no longer
        # retained cannot be re-derived by any path (same-run re-discovery
        # and replan migration both replay retained edges only), so its
        # entry is dead weight.  ``now`` is the caller's conservative
        # batch-start anchor, which only ever retains entries longer.
        retention = self.graph.window
        self._dedup_identities.expire(retention, now)
        self._dedup_edge_sets.expire(retention, now)
        return dropped

    def process_edge_leaves(self, edge: Edge, leaves) -> List[Match]:
        """Run local search for ``edge`` on a subset of SJ-Tree leaves.

        This is the per-leaf entry point the engine's dispatch index uses:
        when the index proves an edge can only seed some of the leaves, only
        those are searched.  Callers are responsible for expiry cadence (see
        :meth:`expire_partials`); :meth:`process_edge` composes both.
        """
        self.stats.edges_processed += 1
        new_matches: List[Match] = []
        found_any = False
        for leaf in leaves:
            primitive_matches = self.local_searcher.find(leaf.subgraph, edge)
            if not primitive_matches:
                continue
            found_any = True
            self.stats.leaf_matches_found += len(primitive_matches)
            for match in primitive_matches:
                self._insert(leaf, match, new_matches)
        # stored counts only grow inside _insert, and expiry between calls
        # only shrinks them, so a call that found nothing cannot set a new
        # peak -- skip the whole-tree recount on the (dominant) miss path
        if found_any:
            stored = self.tree.total_stored_matches()
            if stored > self.stats.peak_stored_matches:
                self.stats.peak_stored_matches = stored
        return new_matches

    def process_edge(self, edge: Edge) -> List[Match]:
        """Process one newly-ingested edge; return the new complete matches."""
        self.expire_partials(edge.timestamp)
        return self.process_edge_leaves(edge, self.tree.leaves())

    def process_edges(self, edges) -> List[Match]:
        """Process a batch of edges (already ingested) and return all new matches.

        The expiry sweep is amortised: one sweep anchored at the batch's
        earliest timestamp (the conservative choice -- sweeping with a later
        timestamp could drop a partial that an earlier edge of the batch can
        still legally complete), then one per-edge matching pass.
        """
        edges = list(edges)
        if not edges:
            return []
        self.expire_partials(min(edge.timestamp for edge in edges))
        results: List[Match] = []
        for edge in edges:
            results.extend(self.process_edge_leaves(edge, self.tree.leaves()))
        return results

    # ------------------------------------------------------------------
    # insertion / join cascade
    # ------------------------------------------------------------------
    def _insert(self, node: SJTreeNode, match: Match, out: List[Match]) -> None:
        if node.is_root and not node.is_leaf:
            self._emit(node, match, out)
            return
        if node.is_root and node.is_leaf:
            # single-primitive query: the leaf *is* the root
            self._emit(node, match, out)
            return
        if not node.store_match(match):
            self.stats.duplicate_matches_suppressed += 1
            return
        parent = self.tree.parent(node)
        sibling = self.tree.sibling(node)
        if parent is None or sibling is None:  # pragma: no cover - defensive
            return
        key = match.projection_key(parent.cut_vertices)
        for candidate in sibling.matches_for_key(key):
            self.stats.joins_attempted += 1
            joined = try_join(match, candidate, self.window)
            if joined is None:
                continue
            self.stats.joins_succeeded += 1
            self._insert(parent, joined, out)

    def _emit(self, root: SJTreeNode, match: Match, out: List[Match]) -> None:
        if self.window.bounded and not self.window.admits_span(match.span):
            return
        identity_key = _identity_key(match.identity())
        if self._dedup_identities.seen(identity_key):
            self.stats.duplicate_matches_suppressed += 1
            return
        if self.dedupe_structural:
            edge_set_key = _edge_set_key(match.structural_identity())
            if self._dedup_edge_sets.seen(edge_set_key):
                self.stats.duplicate_matches_suppressed += 1
                return
            self._dedup_edge_sets.add(edge_set_key, match.earliest)
        self._dedup_identities.add(identity_key, match.earliest)
        if self.store_complete_matches:
            root.store_match(match)
        self.stats.complete_matches += 1
        out.append(match)

    # ------------------------------------------------------------------
    # introspection used by experiments / visualisation
    # ------------------------------------------------------------------
    def stored_partial_matches(self) -> int:
        """Return the number of partial matches currently stored in the SJ-Tree."""
        return self.tree.total_stored_matches()

    def matched_edge_fraction(self) -> float:
        """Return the largest fraction of query edges covered by any stored match.

        This is the Fig. 7 progress measure: "the fraction of query graph
        being matched as measured by the number of edges".
        """
        total = self.query.edge_count()
        if total == 0:
            return 0.0
        best = 0
        for node in self.tree.nodes.values():
            if node.match_count() > 0:
                best = max(best, node.subgraph.edge_count())
        return best / total

    def node_progress(self) -> Dict[int, Dict[str, float]]:
        """Return per-node progress: stored matches and edge-coverage fraction."""
        total = max(1, self.query.edge_count())
        return {
            node.id: {
                "matches": float(node.match_count()),
                "edge_fraction": node.subgraph.edge_count() / total,
                "is_leaf": float(node.is_leaf),
            }
            for node in self.tree.nodes.values()
        }

    def reset(self) -> None:
        """Drop all partial matches and reported-match memory (keeps the plan)."""
        self.tree.clear_matches()
        self._dedup_edge_sets.clear()
        self._dedup_identities.clear()
        self.stats = MatcherStats()

    def dedup_memories(self) -> Tuple[DedupMemory, DedupMemory]:
        """Return the (identity, structural) duplicate-suppression stores.

        The engine uses this for metrics aggregation and for carrying dedup
        memory across a re-plan (the new matcher must keep suppressing what
        the old one already reported).
        """
        return self._dedup_identities, self._dedup_edge_sets

    def adopt_dedup_memories(self, identities: DedupMemory, edge_sets: DedupMemory) -> None:
        """Take ownership of another matcher's duplicate-suppression stores."""
        self._dedup_identities = identities
        self._dedup_edge_sets = edge_sets

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serialise the matcher's mutable state (tree collections, dedupe memory).

        The plan-derived structure (decomposition, SJ-Tree shape, window) is
        *not* stored here -- the owning engine persists the plan and rebuilds
        the matcher from it, then calls :meth:`load_state` on the fresh
        instance.  Dedup memory is serialised verbatim (entries in insertion
        order plus the front's cell layout), so a restored matcher replays
        future suppression decisions, evictions, and sketch counters
        byte-identically.
        """
        return {
            "tree": self.tree.state_dict(),
            "stats": self.stats.to_dict(),
            "expiry_min_interval": self.expiry_min_interval,
            "dedup_identities": self._dedup_identities.state_dict(),
            "dedup_edge_sets": self._dedup_edge_sets.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict` onto a freshly-built matcher.

        Pre-sketch snapshots stored dedup memory as canonically-sorted
        ``reported_identities`` / ``reported_edge_sets`` lists; those load
        into the bounded stores with never-expiring anchors (the
        conservative choice -- see
        :meth:`~repro.sketch.dedup.DedupMemory.load_legacy_keys`).
        """
        self.tree.load_state(state["tree"])
        self.stats = MatcherStats.from_dict(state["stats"])
        self.expiry_min_interval = state["expiry_min_interval"]
        if "dedup_identities" in state:
            self._dedup_identities.load_state(state["dedup_identities"])
            self._dedup_edge_sets.load_state(state["dedup_edge_sets"])
        else:
            # Legacy entries were serialised through the same canonical
            # sorted-repr rendering _identity_key/_edge_set_key use, so the
            # stored lists repr() straight back into today's string keys.
            self._dedup_identities.load_legacy_keys(
                [repr(entry) for entry in state["reported_identities"]]
            )
            self._dedup_edge_sets.load_legacy_keys(
                [repr(entry) for entry in state["reported_edge_sets"]]
            )
