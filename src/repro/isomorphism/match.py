"""Match objects: bindings of query vertices/edges to data vertices/edges.

A :class:`Match` is the unit of work everywhere in StreamWorks: the local
search produces matches of leaf primitives, SJ-Tree nodes store partial
matches, joins merge compatible matches, and the engine emits complete
matches.  A match records

* the vertex binding (query variable -> data vertex id),
* the edge binding (query edge id -> data :class:`Edge` object), and
* its temporal extent (earliest/latest bound edge timestamp).

Matches are value objects: merging two matches produces a new one.  Edge
objects (not just ids) are stored so that a partial match keeps its
timestamps even after the underlying edge is evicted from the window store.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..graph.types import Edge, EdgeId, VertexId

__all__ = ["Match", "MatchConflictError"]


class MatchConflictError(ValueError):
    """Raised when merging two matches whose bindings disagree."""


class Match:
    """A (partial or complete) binding of a query subgraph into the data graph."""

    __slots__ = ("vertex_map", "edge_map", "earliest", "latest")

    def __init__(
        self,
        vertex_map: Optional[Mapping[str, VertexId]] = None,
        edge_map: Optional[Mapping[int, Edge]] = None,
    ):
        self.vertex_map: Dict[str, VertexId] = dict(vertex_map or {})
        self.edge_map: Dict[int, Edge] = dict(edge_map or {})
        timestamps = [edge.timestamp for edge in self.edge_map.values()]
        # recomputed from the restored edge_map when from_state re-runs
        # this constructor, so not snapshotted
        self.earliest: float = min(timestamps) if timestamps else float("inf")  # repro-lint: ignore[snapshot-coverage]
        self.latest: float = max(timestamps) if timestamps else float("-inf")  # repro-lint: ignore[snapshot-coverage]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def span(self) -> float:
        """Return the temporal extent τ of the match (0 for empty matches)."""
        if not self.edge_map:
            return 0.0
        return self.latest - self.earliest

    @property
    def size(self) -> int:
        """Return the number of bound query edges."""
        return len(self.edge_map)

    def vertex_binding(self, query_vertex: str) -> Optional[VertexId]:
        """Return the data vertex bound to ``query_vertex`` (``None`` if unbound)."""
        return self.vertex_map.get(query_vertex)

    def edge_binding(self, query_edge_id: int) -> Optional[Edge]:
        """Return the data edge bound to the query edge id (``None`` if unbound)."""
        return self.edge_map.get(query_edge_id)

    def bound_vertices(self) -> Iterable[str]:
        """Return the bound query vertex names."""
        return self.vertex_map.keys()

    def bound_edges(self) -> Iterable[int]:
        """Return the bound query edge ids."""
        return self.edge_map.keys()

    def data_vertex_ids(self) -> FrozenSet[VertexId]:
        """Return the set of data vertex ids used by the match."""
        return frozenset(self.vertex_map.values())

    def data_edge_ids(self) -> FrozenSet[EdgeId]:
        """Return the set of data edge ids used by the match."""
        return frozenset(edge.id for edge in self.edge_map.values())

    def uses_data_edge(self, edge_id: EdgeId) -> bool:
        """Return ``True`` when the match binds the given data edge id."""
        return any(edge.id == edge_id for edge in self.edge_map.values())

    def is_injective(self) -> bool:
        """Return ``True`` when distinct query vertices map to distinct data vertices."""
        return len(set(self.vertex_map.values())) == len(self.vertex_map)

    # ------------------------------------------------------------------
    # extension and merging
    # ------------------------------------------------------------------
    def with_binding(
        self,
        query_edge_id: int,
        data_edge: Edge,
        vertex_bindings: Mapping[str, VertexId],
    ) -> "Match":
        """Return a new match extended with one edge binding and its vertex bindings.

        Raises
        ------
        MatchConflictError
            If any of the new vertex bindings contradicts an existing one, or
            if injectivity would be violated, or if the data edge is already
            bound to a different query edge.
        """
        new_vertex_map = dict(self.vertex_map)
        bound_data_vertices = set(self.vertex_map.values())
        for query_vertex, data_vertex in vertex_bindings.items():
            existing = new_vertex_map.get(query_vertex)
            if existing is not None:
                if existing != data_vertex:
                    raise MatchConflictError(
                        f"query vertex {query_vertex!r} already bound to {existing!r}, "
                        f"cannot rebind to {data_vertex!r}"
                    )
                continue
            if data_vertex in bound_data_vertices:
                raise MatchConflictError(
                    f"data vertex {data_vertex!r} already used by another query vertex"
                )
            new_vertex_map[query_vertex] = data_vertex
            bound_data_vertices.add(data_vertex)
        if query_edge_id in self.edge_map:
            raise MatchConflictError(f"query edge {query_edge_id} is already bound")
        for bound in self.edge_map.values():
            if bound.id == data_edge.id:
                raise MatchConflictError(
                    f"data edge {data_edge.id} already bound to another query edge"
                )
        new_edge_map = dict(self.edge_map)
        new_edge_map[query_edge_id] = data_edge
        return Match(new_vertex_map, new_edge_map)

    def is_compatible(self, other: "Match") -> bool:
        """Return ``True`` when two matches can be merged into a valid larger match.

        Compatibility requires:

        * query vertices bound in both matches map to the same data vertex;
        * query vertices bound in only one of the matches do not collide with
          data vertices used by the other (injectivity of the merged map);
        * query edges bound in both matches map to the same data edge;
        * data edges are not shared across *different* query edges.
        """
        # shared query vertices must agree
        for query_vertex, data_vertex in self.vertex_map.items():
            other_binding = other.vertex_map.get(query_vertex)
            if other_binding is not None and other_binding != data_vertex:
                return False
        # injectivity of the merged vertex map
        self_only = {
            qv: dv for qv, dv in self.vertex_map.items() if qv not in other.vertex_map
        }
        other_only = {
            qv: dv for qv, dv in other.vertex_map.items() if qv not in self.vertex_map
        }
        other_values = set(other.vertex_map.values())
        for data_vertex in self_only.values():
            if data_vertex in other_values:
                return False
        self_values = set(self.vertex_map.values())
        for data_vertex in other_only.values():
            if data_vertex in self_values:
                return False
        if len(set(self_only.values())) != len(self_only):
            return False
        if len(set(other_only.values())) != len(other_only):
            return False
        # shared query edges must agree; distinct query edges need distinct data edges
        for query_edge_id, data_edge in self.edge_map.items():
            other_edge = other.edge_map.get(query_edge_id)
            if other_edge is not None and other_edge.id != data_edge.id:
                return False
        self_edge_ids = {
            edge.id for qe, edge in self.edge_map.items() if qe not in other.edge_map
        }
        other_edge_ids = {
            edge.id for qe, edge in other.edge_map.items() if qe not in self.edge_map
        }
        if self_edge_ids & other_edge_ids:
            return False
        return True

    def merge(self, other: "Match") -> "Match":
        """Merge two compatible matches into a larger one.

        Raises
        ------
        MatchConflictError
            When :meth:`is_compatible` is ``False``.
        """
        if not self.is_compatible(other):
            raise MatchConflictError("matches are not compatible")
        vertex_map = dict(self.vertex_map)
        vertex_map.update(other.vertex_map)
        edge_map = dict(self.edge_map)
        edge_map.update(other.edge_map)
        return Match(vertex_map, edge_map)

    # ------------------------------------------------------------------
    # keys, identity and presentation
    # ------------------------------------------------------------------
    def projection_key(self, query_vertices: Sequence[str]) -> Tuple[VertexId, ...]:
        """Return the tuple of data vertices bound to the given query vertices.

        This is the join key used by SJ-Tree match collections: sibling
        matches can only combine when they agree on the cut vertices, so
        collections are hashed by this projection.
        Unbound variables appear as ``None``.
        """
        return tuple(self.vertex_map.get(name) for name in query_vertices)

    def identity(self) -> Tuple[FrozenSet[Tuple[str, VertexId]], FrozenSet[Tuple[int, EdgeId]]]:
        """Return a hashable identity for duplicate detection."""
        return (
            frozenset(self.vertex_map.items()),
            frozenset((qe, edge.id) for qe, edge in self.edge_map.items()),
        )

    def structural_identity(self) -> FrozenSet[EdgeId]:
        """Return the set of data edge ids -- identity up to query automorphisms."""
        return self.data_edge_ids()

    def portable_identity(self) -> Tuple:
        """Return a hashable identity independent of graph-local edge ids.

        :meth:`identity` keys on the data edge ids assigned by the ingesting
        graph, which makes it unusable for comparing matches found by *two
        different* engines over the same stream (e.g. a sharded engine,
        whose shards each assign their own local ids, against a single
        engine).  This variant keys every bound edge on its content --
        ``(source, target, label, timestamp)`` -- which the stream fixes
        identically for every consumer.  Two ingested copies of the same
        record are indistinguishable here, so conformance comparisons should
        compare ordered lists (multisets), not sets.
        """
        return (
            frozenset(self.vertex_map.items()),
            tuple(
                sorted(
                    (qe, edge.source, edge.target, edge.label, edge.timestamp)
                    for qe, edge in self.edge_map.items()
                )
            ),
        )

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, list]:
        """Serialise the match into a JSON-friendly state dict.

        Bound data edges are stored *by content* (id, endpoints, label,
        timestamp, attrs), not by reference: partial matches legitimately
        outlive their edges in the window store, so a restore rebuilds
        independent :class:`Edge` values.  Map iteration orders are
        preserved (``vertex_map``/``edge_map`` are rebuilt in the same
        order they were serialised in).
        """
        return {
            "v": [[name, vertex] for name, vertex in self.vertex_map.items()],
            "e": [[query_edge, edge.to_dict()] for query_edge, edge in self.edge_map.items()],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, list]) -> "Match":
        """Rebuild a match from :meth:`state_dict` output."""
        return cls(
            {name: vertex for name, vertex in state["v"]},
            {query_edge: Edge.from_dict(payload) for query_edge, payload in state["e"]},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.identity() == other.identity()

    def __hash__(self) -> int:
        return hash(self.identity())

    def __len__(self) -> int:
        return len(self.edge_map)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vertices = ", ".join(f"{qv}={dv!r}" for qv, dv in sorted(self.vertex_map.items(), key=lambda kv: kv[0]))
        return f"Match({{{vertices}}}, edges={sorted(e.id for e in self.edge_map.values())})"

    def describe(self) -> str:
        """Return a one-line human readable description."""
        vertices = ", ".join(
            f"{qv}->{dv}" for qv, dv in sorted(self.vertex_map.items(), key=lambda kv: kv[0])
        )
        return f"[{vertices}] span={self.span:.3f}"
