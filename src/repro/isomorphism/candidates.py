"""Candidate enumeration and compatibility checks shared by the matchers.

These helpers answer the two questions that dominate subgraph matching cost:

* "which data vertices could play the role of this query vertex?"
* "does this data edge satisfy this query edge (label, direction, predicates,
  endpoint constraints)?"

Both the full backtracking matcher (:mod:`repro.isomorphism.vf2`) and the
SJ-Tree local search (:mod:`repro.core.local_search`) are built on them so
the two code paths cannot drift apart semantically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..graph.types import Edge, VertexId
from ..query.query_graph import QueryEdge, QueryGraph, QueryVertex

__all__ = [
    "vertex_satisfies",
    "edge_satisfies",
    "edge_orientations",
    "vertex_candidates",
    "count_label_candidates",
]


def vertex_satisfies(graph, data_vertex_id: VertexId, query_vertex: QueryVertex) -> bool:
    """Return ``True`` when the stored data vertex satisfies a query vertex.

    ``graph`` may be a :class:`PropertyGraph` or :class:`DynamicGraph`; only
    ``has_vertex``/``vertex`` are used.
    """
    if not graph.has_vertex(data_vertex_id):
        return False
    vertex = graph.vertex(data_vertex_id)
    return query_vertex.matches_vertex(vertex.label, vertex.attrs)


def edge_satisfies(edge: Edge, query_edge: QueryEdge) -> bool:
    """Return ``True`` when a data edge's label/attrs satisfy the query edge.

    Endpoint and direction checks are handled separately (see
    :func:`edge_orientations`) because they depend on which query endpoints
    are already bound.
    """
    return query_edge.matches_edge_label(edge.label, edge.attrs)


def edge_orientations(edge: Edge, query_edge: QueryEdge) -> Iterator[Tuple[VertexId, VertexId]]:
    """Yield admissible ``(data vertex for source var, data vertex for target var)`` pairs.

    For a directed query edge only the aligned orientation is yielded.  For an
    undirected query edge both orientations are yielded (unless the edge is a
    self loop, in which case they coincide).
    """
    yield (edge.source, edge.target)
    if not query_edge.directed and edge.source != edge.target:
        yield (edge.target, edge.source)


def vertex_candidates(graph, query_vertex: QueryVertex) -> Iterator[VertexId]:
    """Yield ids of data vertices satisfying a query vertex's label and predicate.

    Used by the static matcher to pick start points; label-indexed when the
    query vertex carries a label, otherwise a full scan.
    """
    if query_vertex.label is not None:
        source = graph.vertices(query_vertex.label)
    else:
        source = graph.vertices()
    for vertex in source:
        if query_vertex.predicate(vertex.attrs):
            yield vertex.id


def count_label_candidates(graph, query_graph: QueryGraph, query_edge: QueryEdge) -> int:
    """Return the number of data edges whose label matches ``query_edge``.

    A cheap upper bound on the number of candidate bindings for the edge;
    used to pick a low-fan-out starting edge for backtracking search.
    """
    if query_edge.label is None:
        return graph.edge_count()
    return graph.edge_count(query_edge.label)
