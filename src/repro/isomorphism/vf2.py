"""Backtracking subgraph-isomorphism matcher.

This is the static search substrate: a VF2-style backtracking enumerator of
all isomorphic embeddings of a query graph inside a data graph.  It serves
three roles in the reproduction:

* the *repeated search* baseline (re-run the full search per batch, the
  strategy the paper contrasts its incremental algorithm with);
* the *local search* at SJ-Tree leaves -- searching for a small primitive in
  the neighbourhood of a new edge is just a seeded run of the same
  enumerator;
* the *test oracle* -- the incremental engine's cumulative results are
  checked against this matcher in the integration tests.

The matcher proceeds edge-at-a-time rather than vertex-at-a-time: dynamic
graphs are multigraphs (many parallel flows between the same two hosts) and
distinct parallel edges give distinct matches with different temporal
extents, so edges are the right unit of binding.  An optional
:class:`~repro.graph.window.TimeWindow` prunes partial bindings whose span
already exceeds the query window.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.types import Direction, Edge, VertexId
from ..graph.window import TimeWindow
from ..query.compile import CompiledQuery
from ..query.query_graph import QueryEdge, QueryGraph
from .candidates import (
    count_label_candidates,
    edge_orientations,
    edge_satisfies,
    vertex_satisfies,
)
from .match import Match, MatchConflictError

__all__ = ["SubgraphMatcher"]


class SubgraphMatcher:
    """Enumerate embeddings of query graphs in a (possibly windowed) data graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.property_graph.PropertyGraph` or
        :class:`~repro.graph.dynamic_graph.DynamicGraph`; only the shared read
        API is used.
    window:
        Optional time window; matches whose temporal extent is inadmissible
        are pruned during search.
    compiled:
        Optional :class:`~repro.query.compile.CompiledQuery` for the query
        being searched (the columnar hot path).  When set, predicate checks
        go through the pre-compiled closures instead of interpreting the
        predicate trees, and candidate enumeration for partially-bound
        matches under a bounded window uses the graph's sorted-array
        timestamp range scans (a superset prefilter -- the exact span check
        in :meth:`_try_bind` is unchanged, so the match set and enumeration
        order are byte-identical to the interpreted path).  ``None``
        (default) is the interpreted path, verbatim.
    """

    def __init__(
        self,
        graph,
        window: Optional[TimeWindow] = None,
        compiled: Optional[CompiledQuery] = None,
    ):
        self.graph = graph
        self.window = window if window is not None else TimeWindow(None)
        self._compiled = compiled

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_matches(
        self,
        query: QueryGraph,
        seed: Optional[Match] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Match]:
        """Yield matches of ``query``, optionally extending a partial ``seed``.

        Parameters
        ----------
        query:
            The pattern to search for.
        seed:
            A partial match whose bindings are kept fixed; only the remaining
            query edges are searched.  This is how the SJ-Tree local search
            anchors the primitive on a newly arrived edge.
        limit:
            Stop after this many matches (``None`` = enumerate all).
        """
        match = seed if seed is not None else Match()
        if self.window.bounded and match.edge_map and not self.window.admits_span(match.span):
            return
        order = self._edge_order(query, match)
        count = 0
        for result in self._extend(query, order, 0, match):
            yield result
            count += 1
            if limit is not None and count >= limit:
                return

    def find_all(
        self,
        query: QueryGraph,
        seed: Optional[Match] = None,
        limit: Optional[int] = None,
    ) -> List[Match]:
        """Return :meth:`find_matches` as a list."""
        return list(self.find_matches(query, seed=seed, limit=limit))

    def count_matches(self, query: QueryGraph, seed: Optional[Match] = None) -> int:
        """Return the number of embeddings (enumerating them all)."""
        return sum(1 for _ in self.find_matches(query, seed=seed))

    def exists(self, query: QueryGraph, seed: Optional[Match] = None) -> bool:
        """Return ``True`` when at least one embedding exists."""
        for _ in self.find_matches(query, seed=seed, limit=1):
            return True
        return False

    # ------------------------------------------------------------------
    # search order
    # ------------------------------------------------------------------
    def _edge_order(self, query: QueryGraph, seed: Match) -> List[QueryEdge]:
        """Return the unbound query edges in a connectivity-aware order.

        The first edge is the one with the fewest label candidates in the
        data graph (cheap selectivity proxy); subsequent edges are chosen so
        that they touch an already-bound query vertex whenever possible,
        keeping candidate enumeration local.
        """
        unbound = [edge for edge in query.edges() if edge.id not in seed.edge_map]
        if not unbound:
            return []
        bound_vertices: Set[str] = set(seed.vertex_map.keys())
        for edge_id in seed.edge_map:
            if query.has_edge(edge_id):
                bound_vertices.update(query.edge(edge_id).endpoints)

        remaining = {edge.id: edge for edge in unbound}
        order: List[QueryEdge] = []

        def candidate_cost(edge: QueryEdge) -> Tuple[int, int]:
            touches = edge.source in bound_vertices or edge.target in bound_vertices
            return (0 if touches else 1, count_label_candidates(self.graph, query, edge))

        while remaining:
            next_edge = min(remaining.values(), key=candidate_cost)
            order.append(next_edge)
            del remaining[next_edge.id]
            bound_vertices.update(next_edge.endpoints)
        return order

    # ------------------------------------------------------------------
    # backtracking core
    # ------------------------------------------------------------------
    def _extend(
        self,
        query: QueryGraph,
        order: Sequence[QueryEdge],
        index: int,
        match: Match,
    ) -> Iterator[Match]:
        if index == len(order):
            yield match
            return
        query_edge = order[index]
        for extended in self._bind_edge(query, query_edge, match):
            yield from self._extend(query, order, index + 1, extended)

    def _bind_edge(self, query: QueryGraph, query_edge: QueryEdge, match: Match) -> Iterator[Match]:
        """Yield extensions of ``match`` with one binding for ``query_edge``."""
        source_binding = match.vertex_binding(query_edge.source)
        target_binding = match.vertex_binding(query_edge.target)

        if source_binding is not None and target_binding is not None:
            candidates = self._edges_between(source_binding, target_binding, query_edge)
        elif source_binding is not None:
            candidates = self._edges_from_anchor(
                source_binding, query_edge, anchored_on_source=True, match=match
            )
        elif target_binding is not None:
            candidates = self._edges_from_anchor(
                target_binding, query_edge, anchored_on_source=False, match=match
            )
        else:
            candidates = self._all_label_edges(query_edge, match)

        for data_edge in candidates:
            yield from self._try_bind(query, query_edge, data_edge, match)

    def _try_bind(
        self,
        query: QueryGraph,
        query_edge: QueryEdge,
        data_edge: Edge,
        match: Match,
    ) -> Iterator[Match]:
        """Attempt all admissible orientations of ``data_edge`` for ``query_edge``."""
        compiled = self._compiled
        if compiled is not None:
            if not compiled.edge_ok(query_edge, data_edge.label, data_edge.attrs):
                return
        elif not edge_satisfies(data_edge, query_edge):
            return
        if any(bound.id == data_edge.id for bound in match.edge_map.values()):
            return
        if self.window.bounded and match.edge_map:
            combined_span = max(match.latest, data_edge.timestamp) - min(
                match.earliest, data_edge.timestamp
            )
            if not self.window.admits_span(combined_span):
                return
        source_var = query_edge.source
        target_var = query_edge.target
        for source_vertex, target_vertex in edge_orientations(data_edge, query_edge):
            # self-loop query edges need a self-loop data edge and vice versa
            if (source_var == target_var) != (source_vertex == target_vertex):
                continue
            existing_source = match.vertex_binding(source_var)
            existing_target = match.vertex_binding(target_var)
            if existing_source is not None and existing_source != source_vertex:
                continue
            if existing_target is not None and existing_target != target_vertex:
                continue
            if not self._vertex_ok(query, source_var, source_vertex):
                continue
            if not self._vertex_ok(query, target_var, target_vertex):
                continue
            bindings = {source_var: source_vertex, target_var: target_vertex}
            try:
                yield match.with_binding(query_edge.id, data_edge, bindings)
            except MatchConflictError:
                continue

    def _vertex_ok(self, query: QueryGraph, var: str, vertex_id: VertexId) -> bool:
        """Check a candidate vertex binding (compiled tables when available)."""
        compiled = self._compiled
        if compiled is None:
            return vertex_satisfies(self.graph, vertex_id, query.vertex(var))
        if not self.graph.has_vertex(vertex_id):
            return False
        vertex = self.graph.vertex(vertex_id)
        return compiled.vertex_ok(query.vertex(var), vertex.label, vertex.attrs)

    # ------------------------------------------------------------------
    # candidate edge enumeration
    # ------------------------------------------------------------------
    def _time_bounds(self, match: Match) -> Optional[Tuple[float, float]]:
        """Return the admissible candidate timestamp range for extending ``match``.

        Any edge joining a non-empty partial under a bounded window must have
        ``max(latest, ts) - min(earliest, ts)`` admissible, so its timestamp
        lies inside ``[latest - W, earliest + W]``.  The bounds are inclusive
        -- a *superset* of the admissible range for strict windows -- because
        the exact span check in :meth:`_try_bind` still runs on every
        candidate; the range only skips edges that could never pass it.
        """
        if not self.window.bounded or not match.edge_map:
            return None
        duration = self.window.duration
        return (match.latest - duration, match.earliest + duration)

    def _edges_between(self, source: VertexId, target: VertexId, query_edge: QueryEdge) -> Iterator[Edge]:
        if not self.graph.has_vertex(source):
            return
        for edge in self.graph.incident_edges(source, Direction.OUT, query_edge.label):
            if edge.target == target:
                yield edge
        if not query_edge.directed:
            for edge in self.graph.incident_edges(source, Direction.IN, query_edge.label):
                if edge.source == target:
                    yield edge

    def _edges_from_anchor(
        self,
        anchor: VertexId,
        query_edge: QueryEdge,
        anchored_on_source: bool,
        match: Match,
    ) -> Iterator[Edge]:
        if not self.graph.has_vertex(anchor):
            return
        if query_edge.directed:
            direction = Direction.OUT if anchored_on_source else Direction.IN
        else:
            direction = Direction.BOTH
        if self._compiled is not None and query_edge.label is not None:
            bounds = self._time_bounds(match)
            if bounds is not None:
                scanned = self.graph.incident_edges_in_range(
                    anchor, direction, query_edge.label, bounds[0], bounds[1]
                )
                if scanned is not None:
                    yield from scanned
                    return
        yield from self.graph.incident_edges(anchor, direction, query_edge.label)

    def _all_label_edges(self, query_edge: QueryEdge, match: Match) -> Iterator[Edge]:
        if self._compiled is not None and query_edge.label is not None:
            bounds = self._time_bounds(match)
            if bounds is not None:
                scanned = self.graph.edges_in_range(query_edge.label, bounds[0], bounds[1])
                if scanned is not None:
                    yield from scanned
                    return
        yield from self.graph.edges(query_edge.label)
