"""Backtracking subgraph-isomorphism matcher.

This is the static search substrate: a VF2-style backtracking enumerator of
all isomorphic embeddings of a query graph inside a data graph.  It serves
three roles in the reproduction:

* the *repeated search* baseline (re-run the full search per batch, the
  strategy the paper contrasts its incremental algorithm with);
* the *local search* at SJ-Tree leaves -- searching for a small primitive in
  the neighbourhood of a new edge is just a seeded run of the same
  enumerator;
* the *test oracle* -- the incremental engine's cumulative results are
  checked against this matcher in the integration tests.

The matcher proceeds edge-at-a-time rather than vertex-at-a-time: dynamic
graphs are multigraphs (many parallel flows between the same two hosts) and
distinct parallel edges give distinct matches with different temporal
extents, so edges are the right unit of binding.  An optional
:class:`~repro.graph.window.TimeWindow` prunes partial bindings whose span
already exceeds the query window.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.types import Direction, Edge, VertexId
from ..graph.window import TimeWindow
from ..query.query_graph import QueryEdge, QueryGraph
from .candidates import (
    count_label_candidates,
    edge_orientations,
    edge_satisfies,
    vertex_satisfies,
)
from .match import Match, MatchConflictError

__all__ = ["SubgraphMatcher"]


class SubgraphMatcher:
    """Enumerate embeddings of query graphs in a (possibly windowed) data graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.property_graph.PropertyGraph` or
        :class:`~repro.graph.dynamic_graph.DynamicGraph`; only the shared read
        API is used.
    window:
        Optional time window; matches whose temporal extent is inadmissible
        are pruned during search.
    """

    def __init__(self, graph, window: Optional[TimeWindow] = None):
        self.graph = graph
        self.window = window if window is not None else TimeWindow(None)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_matches(
        self,
        query: QueryGraph,
        seed: Optional[Match] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Match]:
        """Yield matches of ``query``, optionally extending a partial ``seed``.

        Parameters
        ----------
        query:
            The pattern to search for.
        seed:
            A partial match whose bindings are kept fixed; only the remaining
            query edges are searched.  This is how the SJ-Tree local search
            anchors the primitive on a newly arrived edge.
        limit:
            Stop after this many matches (``None`` = enumerate all).
        """
        match = seed if seed is not None else Match()
        if self.window.bounded and match.edge_map and not self.window.admits_span(match.span):
            return
        order = self._edge_order(query, match)
        count = 0
        for result in self._extend(query, order, 0, match):
            yield result
            count += 1
            if limit is not None and count >= limit:
                return

    def find_all(
        self,
        query: QueryGraph,
        seed: Optional[Match] = None,
        limit: Optional[int] = None,
    ) -> List[Match]:
        """Return :meth:`find_matches` as a list."""
        return list(self.find_matches(query, seed=seed, limit=limit))

    def count_matches(self, query: QueryGraph, seed: Optional[Match] = None) -> int:
        """Return the number of embeddings (enumerating them all)."""
        return sum(1 for _ in self.find_matches(query, seed=seed))

    def exists(self, query: QueryGraph, seed: Optional[Match] = None) -> bool:
        """Return ``True`` when at least one embedding exists."""
        for _ in self.find_matches(query, seed=seed, limit=1):
            return True
        return False

    # ------------------------------------------------------------------
    # search order
    # ------------------------------------------------------------------
    def _edge_order(self, query: QueryGraph, seed: Match) -> List[QueryEdge]:
        """Return the unbound query edges in a connectivity-aware order.

        The first edge is the one with the fewest label candidates in the
        data graph (cheap selectivity proxy); subsequent edges are chosen so
        that they touch an already-bound query vertex whenever possible,
        keeping candidate enumeration local.
        """
        unbound = [edge for edge in query.edges() if edge.id not in seed.edge_map]
        if not unbound:
            return []
        bound_vertices: Set[str] = set(seed.vertex_map.keys())
        for edge_id in seed.edge_map:
            if query.has_edge(edge_id):
                bound_vertices.update(query.edge(edge_id).endpoints)

        remaining = {edge.id: edge for edge in unbound}
        order: List[QueryEdge] = []

        def candidate_cost(edge: QueryEdge) -> Tuple[int, int]:
            touches = edge.source in bound_vertices or edge.target in bound_vertices
            return (0 if touches else 1, count_label_candidates(self.graph, query, edge))

        while remaining:
            next_edge = min(remaining.values(), key=candidate_cost)
            order.append(next_edge)
            del remaining[next_edge.id]
            bound_vertices.update(next_edge.endpoints)
        return order

    # ------------------------------------------------------------------
    # backtracking core
    # ------------------------------------------------------------------
    def _extend(
        self,
        query: QueryGraph,
        order: Sequence[QueryEdge],
        index: int,
        match: Match,
    ) -> Iterator[Match]:
        if index == len(order):
            yield match
            return
        query_edge = order[index]
        for extended in self._bind_edge(query, query_edge, match):
            yield from self._extend(query, order, index + 1, extended)

    def _bind_edge(self, query: QueryGraph, query_edge: QueryEdge, match: Match) -> Iterator[Match]:
        """Yield extensions of ``match`` with one binding for ``query_edge``."""
        source_binding = match.vertex_binding(query_edge.source)
        target_binding = match.vertex_binding(query_edge.target)

        if source_binding is not None and target_binding is not None:
            candidates = self._edges_between(source_binding, target_binding, query_edge)
        elif source_binding is not None:
            candidates = self._edges_from_anchor(source_binding, query_edge, anchored_on_source=True)
        elif target_binding is not None:
            candidates = self._edges_from_anchor(target_binding, query_edge, anchored_on_source=False)
        else:
            candidates = self._all_label_edges(query_edge)

        for data_edge in candidates:
            yield from self._try_bind(query, query_edge, data_edge, match)

    def _try_bind(
        self,
        query: QueryGraph,
        query_edge: QueryEdge,
        data_edge: Edge,
        match: Match,
    ) -> Iterator[Match]:
        """Attempt all admissible orientations of ``data_edge`` for ``query_edge``."""
        if not edge_satisfies(data_edge, query_edge):
            return
        if any(bound.id == data_edge.id for bound in match.edge_map.values()):
            return
        if self.window.bounded and match.edge_map:
            combined_span = max(match.latest, data_edge.timestamp) - min(
                match.earliest, data_edge.timestamp
            )
            if not self.window.admits_span(combined_span):
                return
        source_var = query_edge.source
        target_var = query_edge.target
        for source_vertex, target_vertex in edge_orientations(data_edge, query_edge):
            # self-loop query edges need a self-loop data edge and vice versa
            if (source_var == target_var) != (source_vertex == target_vertex):
                continue
            existing_source = match.vertex_binding(source_var)
            existing_target = match.vertex_binding(target_var)
            if existing_source is not None and existing_source != source_vertex:
                continue
            if existing_target is not None and existing_target != target_vertex:
                continue
            if not vertex_satisfies(self.graph, source_vertex, query.vertex(source_var)):
                continue
            if not vertex_satisfies(self.graph, target_vertex, query.vertex(target_var)):
                continue
            bindings = {source_var: source_vertex, target_var: target_vertex}
            try:
                yield match.with_binding(query_edge.id, data_edge, bindings)
            except MatchConflictError:
                continue

    # ------------------------------------------------------------------
    # candidate edge enumeration
    # ------------------------------------------------------------------
    def _edges_between(self, source: VertexId, target: VertexId, query_edge: QueryEdge) -> Iterator[Edge]:
        if not self.graph.has_vertex(source):
            return
        for edge in self.graph.incident_edges(source, Direction.OUT, query_edge.label):
            if edge.target == target:
                yield edge
        if not query_edge.directed:
            for edge in self.graph.incident_edges(source, Direction.IN, query_edge.label):
                if edge.source == target:
                    yield edge

    def _edges_from_anchor(
        self, anchor: VertexId, query_edge: QueryEdge, anchored_on_source: bool
    ) -> Iterator[Edge]:
        if not self.graph.has_vertex(anchor):
            return
        if query_edge.directed:
            direction = Direction.OUT if anchored_on_source else Direction.IN
        else:
            direction = Direction.BOTH
        yield from self.graph.incident_edges(anchor, direction, query_edge.label)

    def _all_label_edges(self, query_edge: QueryEdge) -> Iterator[Edge]:
        yield from self.graph.edges(query_edge.label)
