"""Pruning filters for static subgraph search.

These filters implement the classic cheap feasibility checks used before and
during backtracking search.  They are deliberately conservative (never reject
a data vertex that could participate in some embedding of the *currently
stored* graph) so they can be switched on for the repeated-search baseline
without changing its results.

Note that the filters reason about the graph *as stored right now*; the
incremental engine cannot use the degree filter on partial matches because a
vertex's future degree is unknown, which is precisely why the SJ-Tree only
runs local searches for fully-present primitives.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..graph.types import Direction, VertexId
from ..query.query_graph import QueryGraph, QueryVertex

__all__ = ["degree_feasible", "label_feasible", "prefilter_candidates"]


def degree_feasible(graph, data_vertex_id: VertexId, query: QueryGraph, query_vertex: QueryVertex) -> bool:
    """Return ``True`` when the data vertex has enough incident edges.

    A data vertex can only host a query vertex if its in/out degree is at
    least the query vertex's in/out degree requirement.
    """
    required_out = sum(1 for edge in query.incident_edges(query_vertex.name) if edge.source == query_vertex.name and edge.directed)
    required_in = sum(1 for edge in query.incident_edges(query_vertex.name) if edge.target == query_vertex.name and edge.directed)
    required_any = sum(1 for edge in query.incident_edges(query_vertex.name) if not edge.directed)
    out_degree = graph.out_degree(data_vertex_id) if hasattr(graph, "out_degree") else graph.graph.out_degree(data_vertex_id)
    in_degree = graph.in_degree(data_vertex_id) if hasattr(graph, "in_degree") else graph.graph.in_degree(data_vertex_id)
    if out_degree < required_out:
        return False
    if in_degree < required_in:
        return False
    return (out_degree + in_degree) >= (required_out + required_in + required_any)


def label_feasible(graph, data_vertex_id: VertexId, query: QueryGraph, query_vertex: QueryVertex) -> bool:
    """Return ``True`` when the incident edge labels required by the query are present.

    For every distinct edge label required at the query vertex, the data
    vertex must have at least one incident edge with that label (orientation
    respected for directed query edges).
    """
    store = graph.graph if hasattr(graph, "graph") else graph
    for query_edge in query.incident_edges(query_vertex.name):
        if query_edge.label is None:
            continue
        if query_edge.directed:
            direction = Direction.OUT if query_edge.source == query_vertex.name else Direction.IN
        else:
            direction = Direction.BOTH
        found = False
        for _ in store.incident_edges(data_vertex_id, direction, query_edge.label):
            found = True
            break
        if not found:
            return False
    return True


def prefilter_candidates(
    graph,
    query: QueryGraph,
    use_degree: bool = True,
    use_labels: bool = True,
) -> Dict[str, Set[VertexId]]:
    """Return candidate data vertices per query vertex after cheap filtering.

    The result maps each query vertex name to the set of data vertex ids that
    pass the label/predicate, degree and incident-label filters.  An empty
    candidate set for any query vertex proves the query has no match in the
    current graph -- the repeated-search baseline uses this as an early exit.
    """
    candidates: Dict[str, Set[VertexId]] = {}
    for query_vertex in query.vertices():
        feasible: Set[VertexId] = set()
        if query_vertex.label is not None:
            pool: Iterable = graph.vertices(query_vertex.label)
        else:
            pool = graph.vertices()
        for vertex in pool:
            if not query_vertex.predicate(vertex.attrs):
                continue
            if use_degree and not degree_feasible(graph, vertex.id, query, query_vertex):
                continue
            if use_labels and not label_feasible(graph, vertex.id, query, query_vertex):
                continue
            feasible.add(vertex.id)
        candidates[query_vertex.name] = feasible
    return candidates
