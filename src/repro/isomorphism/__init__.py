"""Subgraph isomorphism substrate: match objects and backtracking search.

The :class:`SubgraphMatcher` is the static search engine used as the
repeated-search baseline, as the seeded local-search primitive inside the
SJ-Tree, and as the correctness oracle in the tests.
"""

from .candidates import (
    count_label_candidates,
    edge_orientations,
    edge_satisfies,
    vertex_candidates,
    vertex_satisfies,
)
from .filters import degree_feasible, label_feasible, prefilter_candidates
from .match import Match, MatchConflictError
from .vf2 import SubgraphMatcher

__all__ = [
    "Match",
    "MatchConflictError",
    "SubgraphMatcher",
    "count_label_candidates",
    "degree_feasible",
    "edge_orientations",
    "edge_satisfies",
    "label_feasible",
    "prefilter_candidates",
    "vertex_candidates",
    "vertex_satisfies",
]
