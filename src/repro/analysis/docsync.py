"""Shared doc-parsing helpers for repro-lint and ``scripts/check_docs.py``.

Both the static drift rules (:mod:`repro.analysis.rules.drift`) and the
runtime docs checker parse the same Markdown structures -- relative
links, GitHub heading anchors, backticked ``repro.*`` symbols and the
backticked first column of config tables.  The regexes and slug logic
live here once so the two checkers cannot themselves drift apart.
"""

from __future__ import annotations

import re
from typing import Set

__all__ = [
    "HEADING_PATTERN",
    "LINK_PATTERN",
    "SYMBOL_PATTERN",
    "TABLE_FIELD_PATTERN",
    "backticked_terms",
    "documented_fields",
    "github_anchor",
]

#: ``[text](target)`` Markdown links (the capture is the target).
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked dotted names rooted at the package: ```repro.core.EngineConfig```.
SYMBOL_PATTERN = re.compile(r"`(repro(?:\.\w+)+)`")
#: ATX headings, any level.
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Backticked first-column entries of a Markdown table row.
TABLE_FIELD_PATTERN = re.compile(r"^\|\s*`(\w+)`\s*\|", re.MULTILINE)
#: Any backticked code span (used for metrics-key coverage).
_BACKTICK_SPAN_PATTERN = re.compile(r"`([^`]+)`")
_WORD_PATTERN = re.compile(r"\w+")


def github_anchor(heading: str) -> str:
    """Approximate GitHub's heading -> anchor slug."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def documented_fields(text: str, section_heading: str) -> Set[str]:
    """Backticked first-column entries of the table under ``section_heading``.

    The section runs from the heading to the next heading of level <= 3
    (or end of text); a missing heading yields the empty set.
    """
    start = text.find(section_heading)
    if start < 0:
        return set()
    rest = text[start + len(section_heading):]
    next_heading = re.search(r"^#{1,3}\s", rest, re.MULTILINE)
    block = rest[: next_heading.start()] if next_heading else rest
    return set(TABLE_FIELD_PATTERN.findall(block))


def backticked_terms(text: str) -> Set[str]:
    """Every word token inside a backticked code span of ``text``.

    ``frontend.metrics()["async_ingest"]`` documents ``async_ingest`` just
    as well as a bare ``` `async_ingest` ``` does, so metrics-key coverage
    accepts mentions inside longer code spans.
    """
    # drop fenced code blocks first: a ``` fence would otherwise mispair
    # with inline backticks and shift every span after it
    text = re.sub(r"^```.*?^```", "", text, flags=re.MULTILINE | re.DOTALL)
    terms: Set[str] = set()
    for span in _BACKTICK_SPAN_PATTERN.findall(text):
        terms.update(_WORD_PATTERN.findall(span))
    return terms
