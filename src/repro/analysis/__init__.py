"""repro-lint: AST-based determinism & state-integrity analysis for this repo.

Every conformance bug this reproduction has shipped and later hunted down
differentially belongs to a small set of mechanically detectable patterns
that violate the engine's byte-for-byte determinism contract:

* id-hash-ordered adjacency enumeration (PR 2) -- iteration order leaked
  from ``id()``/``hash()`` into event order;
* the empty-``ReorderBuffer``-is-falsy snapshot drop (PR 4) -- ``if x:``
  on an Optional whose empty value is meaningful;
* per-source counters read outside the buffer lock (PR 5) -- shared
  mutable state touched off-lock.

This package catches those classes (and their relatives: unseeded RNG,
wall-clock reads on the hot path, ``state_dict`` fields that skip
persistence, ``EngineConfig`` fields that skip ``_CONFIG_FIELDS``) at
*analysis time* instead of via hypothesis shrinking after the fact.

Run it over a tree::

    PYTHONPATH=src python -m repro.analysis src/repro

Findings are suppressed per line with ``# repro-lint: ignore[rule-id]``;
an unused suppression is itself an error, so stale ignores cannot
accumulate.  The rule catalogue (with the historical bug each rule would
have caught) lives in ``docs/development.md``.
"""

from .core import AnalysisReport, Finding, Project, SourceFile, run_analysis
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "Project",
    "SourceFile",
    "run_analysis",
]
