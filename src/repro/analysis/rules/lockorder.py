"""Lock-order: cycles in the acquisition graph are latent deadlocks.

A class with two locks has an implicit protocol: every code path that
needs both must take them in the same order.  The protocol lives nowhere
-- it is the *absence* of a counterexample -- so a new helper that takes
``B`` then calls something that takes ``A`` compiles, passes every
single-threaded test, and deadlocks in production the first time another
thread runs the ``A``-then-``B`` path.  (``AsyncIngestFrontend``'s
quiesce protocol takes ``_buffer_lock`` then ``_released_lock``;
everything else must follow suit.)

The rule builds, per class, the directed graph *held -> acquired* from

* nested ``with`` statements inside one method, and
* calls made while holding a lock (including the method's call-graph
  entry context) into methods that transitively acquire another --
  the interprocedural edge a syntactic check cannot see.

Every cycle is reported once, with a witness acquisition site per edge.
Re-acquiring a plain ``threading.Lock`` already held is an immediate
self-deadlock and reported as a one-lock cycle; ``RLock`` and
``Condition`` are reentrant and exempt from self-loops.

Scope limit: the graph is per-class (this codebase shares no locks
across classes), and lambdas/nested functions are skipped as everywhere
in the analysis.
"""

from __future__ import annotations

from typing import Iterable, List

from ..callgraph import CallGraph
from ..core import Finding, Project, Rule

__all__ = ["LockOrderRule"]


class LockOrderRule(Rule):
    """Report cycles in each class's lock-acquisition graph."""

    id = "lock-order"
    description = (
        "two code paths acquire the same locks in opposite orders (or "
        "re-acquire a non-reentrant Lock): threads interleaving those paths "
        "deadlock, freezing ingest mid-batch"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project.model)
        findings: List[Finding] = []
        for summary in project.model.summaries:
            for class_summary in summary.classes.values():
                if not class_summary.lock_attrs:
                    continue
                for cycle in graph.lock_order_cycles(class_summary):
                    method, _edge, line = cycle.sites[0]
                    if len(cycle.locks) == 1:
                        lock = cycle.locks[0]
                        message = (
                            f"{class_summary.name}.{method}() can re-acquire "
                            f"non-reentrant Lock `{lock}` while already "
                            f"holding it; that deadlocks immediately (use "
                            f"RLock or restructure the call)"
                        )
                    else:
                        path = " -> ".join(cycle.locks + (cycle.locks[0],))
                        witnesses = ", ".join(
                            f"{site_method}() takes {edge} at line {site_line}"
                            for site_method, edge, site_line in cycle.sites
                        )
                        message = (
                            f"lock-order cycle in {class_summary.name}: "
                            f"{path} ({witnesses}); threads interleaving "
                            f"these paths deadlock"
                        )
                    findings.append(
                        Finding(self.id, summary.display_path, line, message)
                    )
        return findings
