"""Snapshot completeness: every ``__init__`` attribute must persist & restore.

PR 4's exact-resume contract ("restore(checkpoint(E)) + remaining stream ==
uninterrupted run, byte for byte") only holds while every stateful class's
``state_dict`` captures *everything* its ``__init__`` establishes, and its
loader restores it.  The failure mode is silent: a new field added to a
buffer or matcher simply resets to its constructor default after restore,
and the divergence surfaces many batches later as a conformance mismatch
the crash suite has to shrink down.  This rule fails the *commit* instead.

For every class defining ``state_dict`` plus a loader (``from_state`` /
``load_state``), each ``self.x = ...`` assigned in that class's own
``__init__`` must be *covered* by

* a key captured somewhere in the ``state_dict`` chain (the class's own
  method plus project-resolvable base classes'), and
* a key read somewhere in the loader chain (``from_state`` /
  ``load_state`` / ``_load_base_state``).

Key matching strips the attribute's leading underscores and accepts an
underscore-boundary prefix either way, so ``self._pending`` is covered by
``"pending"`` and ``self._rng`` by ``"rng_state"``.

Two structural exemptions keep the rule usable against this codebase's
"rebuild, don't store" codecs (an SJ-tree's shape is rebuilt from the
decomposition; only its match collections are snapshotted):

* an attribute whose ``__init__`` assignment references a constructor
  parameter is *construction input* -- the owner re-supplies it when it
  rebuilds the object before calling the loader;
* a class whose ``state_dict`` chain exposes no string keys at all (a
  list codec like ``LabelDistribution``) is opaque to the heuristic and
  skipped entirely.

Everything else that is deliberately derived (recomputed from other
persisted fields on load) carries a ``# repro-lint:
ignore[snapshot-coverage]`` on its assignment line -- and because unused
suppressions are errors, the ignore dies with the attribute.

Since the base-class chain can live in *other* files, this runs as a
whole-program rule over the project model (``ClassSummary.init_attrs``,
``captured_keys``/``restored_keys`` per chain link); a base-class edit
re-fires the check for every subclass even when the subclass file's own
cache entry is warm.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core import Finding, Project, Rule
from ..model import LOADER_NAMES, covers_key

__all__ = ["SnapshotCoverageRule"]


class SnapshotCoverageRule(Rule):
    """Cross-check ``__init__`` attributes against capture and restore keys."""

    id = "snapshot-coverage"
    description = (
        "an attribute established in __init__ but absent from state_dict / "
        "the loader silently resets on restore, breaking the exact-resume "
        "contract; persist it or mark it derived with a suppression"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        model = project.model
        for summary in model.summaries:
            for class_summary in summary.classes.values():
                if not (class_summary.has_state_dict and class_summary.has_loader):
                    continue
                captured, restored = model.chain_keys(class_summary.name)
                if not captured:
                    continue  # list/opaque codec: no keys for the heuristic
                for attr, line in class_summary.init_attrs:
                    if not covers_key(attr, sorted(captured)):
                        findings.append(
                            Finding(
                                self.id,
                                summary.display_path,
                                line,
                                f"{class_summary.name}.{attr} is assigned in "
                                f"__init__ but no state_dict key captures it "
                                f"(restore would reset it)",
                            )
                        )
                    elif restored and not covers_key(attr, sorted(restored)):
                        findings.append(
                            Finding(
                                self.id,
                                summary.display_path,
                                line,
                                f"{class_summary.name}.{attr} is captured by "
                                f"state_dict but no loader "
                                f"({'/'.join(LOADER_NAMES)}) reads it back",
                            )
                        )
        return findings
