"""Snapshot completeness: every ``__init__`` attribute must persist & restore.

PR 4's exact-resume contract ("restore(checkpoint(E)) + remaining stream ==
uninterrupted run, byte for byte") only holds while every stateful class's
``state_dict`` captures *everything* its ``__init__`` establishes, and its
loader restores it.  The failure mode is silent: a new field added to a
buffer or matcher simply resets to its constructor default after restore,
and the divergence surfaces many batches later as a conformance mismatch
the crash suite has to shrink down.  This rule fails the *commit* instead.

For every class defining ``state_dict`` plus a loader (``from_state`` /
``load_state``), each ``self.x = ...`` assigned in that class's own
``__init__`` must be *covered* by

* a key captured somewhere in the ``state_dict`` chain (the class's own
  method plus project-resolvable base classes'), and
* a key read somewhere in the loader chain (``from_state`` /
  ``load_state`` / ``_load_base_state``).

Key matching strips the attribute's leading underscores and accepts an
underscore-boundary prefix either way, so ``self._pending`` is covered by
``"pending"`` and ``self._rng`` by ``"rng_state"``.

Two structural exemptions keep the rule usable against this codebase's
"rebuild, don't store" codecs (an SJ-tree's shape is rebuilt from the
decomposition; only its match collections are snapshotted):

* an attribute whose ``__init__`` assignment references a constructor
  parameter is *construction input* -- the owner re-supplies it when it
  rebuilds the object before calling the loader;
* a class whose ``state_dict`` chain exposes no string keys at all (a
  list codec like ``LabelDistribution``) is opaque to the heuristic and
  skipped entirely.

Everything else that is deliberately derived (recomputed from other
persisted fields on load) carries a ``# repro-lint:
ignore[snapshot-coverage]`` on its assignment line -- and because unused
suppressions are errors, the ignore dies with the attribute.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceFile

__all__ = ["SnapshotCoverageRule"]

_LOADER_NAMES = ("from_state", "load_state", "_load_base_state")


def _methods(node: ast.ClassDef, names: Iterable[str]) -> List[ast.FunctionDef]:
    wanted = set(names)
    return [
        item
        for item in node.body
        if isinstance(item, ast.FunctionDef) and item.name in wanted
    ]


def captured_keys(method: ast.FunctionDef) -> Set[str]:
    """String keys a ``state_dict``-style method writes into its payload.

    Collected from dict literals, ``payload["key"] = ...`` subscript
    stores, ``dict(key=...)`` keyword constructors and ``.update({...})``
    literals anywhere in the method.
    """
    keys: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "dict":
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        keys.add(keyword.arg)
    return keys


def restored_keys(method: ast.FunctionDef) -> Set[str]:
    """Every string constant in a loader method.

    Loaders are small codecs; any string they mention is (in this
    codebase, by construction) a payload key -- whether spelled as
    ``state["key"]``, ``state.get("key")`` or a key list driving a loop
    (``for key, target in (("degrees", ...), ...)``).  Casting the net
    this wide only ever *weakens* the restore check, never produces a
    false positive.
    """
    keys: Set[str] = set()
    body = method.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # the docstring is prose, not keys
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                keys.add(node.value)
    return keys


def init_attributes(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """``(attribute name, line)`` for every *stateful* ``self.x`` in ``__init__``.

    Assignments whose right-hand side references a constructor parameter
    are construction input, not snapshot state: the rebuild-then-load
    pattern re-supplies them through ``__init__`` before the loader runs,
    so they are excluded here.
    """
    init: Optional[ast.FunctionDef] = None
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            init = item
            break
    if init is None:
        return []
    args = init.args
    self_name = args.args[0].arg if args.args else "self"
    params = {
        arg.arg
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if arg.arg != self_name
    }
    seen: Set[str] = set()
    attrs: List[Tuple[str, int]] = []
    for stmt in ast.walk(init):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets, value = [stmt.target], getattr(stmt, "value", None)
        from_params = value is not None and any(
            isinstance(inner, ast.Name) and inner.id in params
            for inner in ast.walk(value)
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
                and target.attr not in seen
            ):
                seen.add(target.attr)
                if not from_params:
                    attrs.append((target.attr, target.lineno))
    return attrs


def _covers(attr: str, keys: Set[str]) -> bool:
    name = attr.lstrip("_")
    return any(
        key == name or key.startswith(name + "_") or name.startswith(key + "_")
        for key in keys
    )


class SnapshotCoverageRule(Rule):
    """Cross-check ``__init__`` attributes against capture and restore keys."""

    id = "snapshot-coverage"
    description = (
        "an attribute established in __init__ but absent from state_dict / "
        "the loader silently resets on restore, breaking the exact-resume "
        "contract; persist it or mark it derived with a suppression"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _methods(node, ["state_dict"]):
                continue
            if not _methods(node, _LOADER_NAMES):
                continue
            chain = project.class_chain(node.name) or [(source, node)]
            captured: Set[str] = set()
            restored: Set[str] = set()
            for _, chain_node in chain:
                for method in _methods(chain_node, ["state_dict"]):
                    captured |= captured_keys(method)
                for method in _methods(chain_node, _LOADER_NAMES):
                    restored |= restored_keys(method)
            if not captured:
                continue  # list/opaque codec: no keys for the heuristic to check
            for attr, line in init_attributes(node):
                if not _covers(attr, captured):
                    findings.append(
                        Finding(
                            self.id,
                            source.display_path,
                            line,
                            f"{node.name}.{attr} is assigned in __init__ but no "
                            f"state_dict key captures it (restore would reset it)",
                        )
                    )
                elif restored and not _covers(attr, restored):
                    findings.append(
                        Finding(
                            self.id,
                            source.display_path,
                            line,
                            f"{node.name}.{attr} is captured by state_dict but no "
                            f"loader ({'/'.join(_LOADER_NAMES)}) reads it back",
                        )
                    )
        return findings
