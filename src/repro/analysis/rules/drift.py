"""Drift rules: config fields vs persistence, metrics keys vs docs.

Two registries shadow ``EngineConfig`` and the metrics surfaces, and both
have historically been updated by hand:

* ``config-drift`` -- ``persistence.state._CONFIG_FIELDS`` lists the
  config fields a snapshot carries.  A constructor parameter missing
  from it silently resets to its default on restore (the same failure
  shape as a missed ``state_dict`` key, one level up); a stale entry
  crashes ``load`` on old snapshots.  The rule statically compares the
  ``EngineConfig.__init__`` signature against the tuple literal.
* ``metrics-docs`` -- ``docs/operations.md`` documents every metrics
  key.  ``scripts/check_docs.py`` already verifies this at *runtime* by
  instantiating engines; this rule does it statically from the dict
  literals inside ``metrics()`` / ``stats()`` methods, so a plain lint
  run (no engine construction, no workload) catches the drift too, and
  so the check covers classes the runtime harness never instantiates.

Both are project-scoped rules (``check_project``): they need the whole
tree (and the repository root, to find ``docs/``) rather than one file.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceFile
from ..docsync import backticked_terms

__all__ = ["ConfigDriftRule", "MetricsDocsRule"]


def _find_assignment(
    project: Project, name: str
) -> Optional[Tuple[SourceFile, ast.Assign]]:
    """Locate the module-level ``name = ...`` assignment, if any file has one."""
    for source in project.files:
        for node in source.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return source, node
    return None


class ConfigDriftRule(Rule):
    """Compare ``EngineConfig.__init__`` parameters against ``_CONFIG_FIELDS``."""

    id = "config-drift"
    description = (
        "persistence.state._CONFIG_FIELDS must list exactly the EngineConfig "
        "constructor parameters; a missing field resets to its default on "
        "restore, a stale one breaks loading"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        located = _find_assignment(project, "_CONFIG_FIELDS")
        if located is None or "EngineConfig" not in project.classes:
            # nothing to compare against in this tree (e.g. fixture runs)
            return []
        fields_source, fields_node = located
        fields: Set[str] = set()
        if isinstance(fields_node.value, (ast.Tuple, ast.List)):
            for element in fields_node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    fields.add(element.value)

        config_source, config_node = project.classes["EngineConfig"]
        params: Set[str] = set()
        init_line = config_node.lineno
        for item in config_node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                init_line = item.lineno
                args = item.args
                for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                    if arg.arg != "self":
                        params.add(arg.arg)

        findings: List[Finding] = []
        for missing in sorted(params - fields):
            findings.append(
                Finding(
                    self.id,
                    fields_source.display_path,
                    fields_node.lineno,
                    f"EngineConfig parameter {missing!r} is not in _CONFIG_FIELDS: "
                    f"it would silently reset to its default on restore",
                )
            )
        for stale in sorted(fields - params):
            findings.append(
                Finding(
                    self.id,
                    config_source.display_path,
                    init_line,
                    f"_CONFIG_FIELDS lists {stale!r}, which is not an "
                    f"EngineConfig constructor parameter",
                )
            )
        return findings


class MetricsDocsRule(Rule):
    """Every string key built inside ``metrics()``/``stats()`` must be documented."""

    id = "metrics-docs"
    description = (
        "a key emitted by a metrics()/stats() method has no backticked "
        "mention in docs/operations.md; document it in the metrics tables"
    )

    _METHOD_NAMES = ("metrics", "stats")
    #: Subpackages whose metrics surfaces the operations guide documents.
    _SCOPES = ("core", "streaming")

    def check_project(self, project: Project) -> Iterable[Finding]:
        if project.root is None:
            return []
        operations = project.root / "docs" / "operations.md"
        if not operations.is_file():
            return []
        documented = backticked_terms(operations.read_text())

        findings: List[Finding] = []
        for source in project.files:
            if not self._in_scope(source):
                continue
            for class_node in ast.walk(source.tree):
                if not isinstance(class_node, ast.ClassDef):
                    continue
                for item in class_node.body:
                    if not (
                        isinstance(item, ast.FunctionDef)
                        and item.name in self._METHOD_NAMES
                    ):
                        continue
                    for key, line in sorted(self._emitted_keys(item)):
                        if key not in documented:
                            findings.append(
                                Finding(
                                    self.id,
                                    source.display_path,
                                    line,
                                    f"{class_node.name}.{item.name}() emits key "
                                    f"{key!r}, which docs/operations.md never "
                                    f"mentions in backticks",
                                )
                            )
        return findings

    def _in_scope(self, source: SourceFile) -> bool:
        parts = source.path.parts
        if "repro" in parts:
            parts = parts[parts.index("repro") + 1 :]
        return bool(parts) and parts[0] in self._SCOPES

    @staticmethod
    def _emitted_keys(method: ast.FunctionDef) -> Set[Tuple[str, int]]:
        """``(key, line)`` for dict-literal keys and ``x["key"]`` stores."""
        keys: Set[Tuple[str, int]] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add((key.value, key.lineno))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add((target.slice.value, target.lineno))
        return keys
