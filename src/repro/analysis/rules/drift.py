"""Drift rules: config fields vs persistence, metrics keys vs docs.

Two registries shadow ``EngineConfig`` and the metrics surfaces, and both
have historically been updated by hand:

* ``config-drift`` -- ``persistence.state._CONFIG_FIELDS`` lists the
  config fields a snapshot carries.  A constructor parameter missing
  from it silently resets to its default on restore (the same failure
  shape as a missed ``state_dict`` key, one level up); a stale entry
  crashes ``load`` on old snapshots.  The rule statically compares the
  ``EngineConfig.__init__`` signature against the tuple literal.
* ``metrics-docs`` -- ``docs/operations.md`` documents every metrics
  key.  ``scripts/check_docs.py`` already verifies this at *runtime* by
  instantiating engines; this rule does it statically from the dict
  literals inside ``metrics()`` / ``stats()`` methods, so a plain lint
  run (no engine construction, no workload) catches the drift too, and
  so the check covers classes the runtime harness never instantiates.

Both are whole-program rules reading the project model: the constant
tuple contents, ``__init__`` signatures and emitted metrics keys all
live in the per-file summaries, so neither rule forces unchanged files
to be re-parsed.  (``metrics-docs`` additionally reads
``docs/operations.md``; its content hash is part of the cache's project
key, so a docs edit re-fires the rule too.)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule
from ..docsync import backticked_terms
from ..model import FileSummary

__all__ = ["ConfigDriftRule", "MetricsDocsRule"]


def _find_constant(
    project: Project, name: str
) -> Optional[Tuple[FileSummary, List[str], int]]:
    """Locate the module-level ``name = (...)`` string tuple, if any file has one."""
    for summary in project.model.summaries:
        if name in summary.constants:
            values, line = summary.constants[name]
            return summary, values, line
    return None


class ConfigDriftRule(Rule):
    """Compare ``EngineConfig.__init__`` parameters against ``_CONFIG_FIELDS``."""

    id = "config-drift"
    description = (
        "persistence.state._CONFIG_FIELDS must list exactly the EngineConfig "
        "constructor parameters; a missing field resets to its default on "
        "restore, a stale one breaks loading"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        located = _find_constant(project, "_CONFIG_FIELDS")
        if located is None or "EngineConfig" not in project.model.classes:
            # nothing to compare against in this tree (e.g. fixture runs)
            return []
        fields_summary, values, fields_line = located
        fields = set(values)

        config_file, config_class = project.model.classes["EngineConfig"]
        params = set(config_class.init_params)

        findings: List[Finding] = []
        for missing in sorted(params - fields):
            findings.append(
                Finding(
                    self.id,
                    fields_summary.display_path,
                    fields_line,
                    f"EngineConfig parameter {missing!r} is not in _CONFIG_FIELDS: "
                    f"it would silently reset to its default on restore",
                )
            )
        for stale in sorted(fields - params):
            findings.append(
                Finding(
                    self.id,
                    config_file.display_path,
                    config_class.init_line,
                    f"_CONFIG_FIELDS lists {stale!r}, which is not an "
                    f"EngineConfig constructor parameter",
                )
            )
        return findings


class MetricsDocsRule(Rule):
    """Every string key built inside ``metrics()``/``stats()`` must be documented."""

    id = "metrics-docs"
    description = (
        "a key emitted by a metrics()/stats() method has no backticked "
        "mention in docs/operations.md; document it in the metrics tables"
    )

    _METHOD_NAMES = ("metrics", "stats")
    #: Subpackages whose metrics surfaces the operations guide documents.
    _SCOPES = ("core", "streaming", "sketch")

    def check_project(self, project: Project) -> Iterable[Finding]:
        if project.root is None:
            return []
        operations = project.root / "docs" / "operations.md"
        if not operations.is_file():
            return []
        documented = backticked_terms(operations.read_text())

        findings: List[Finding] = []
        for summary in project.model.summaries:
            if not self._in_scope(summary):
                continue
            for class_summary in summary.classes.values():
                for method_name in self._METHOD_NAMES:
                    method = class_summary.methods.get(method_name)
                    if method is None:
                        continue
                    emitted: Set[Tuple[str, int]] = set(method.emitted_keys)
                    for key, line in sorted(emitted):
                        if key not in documented:
                            findings.append(
                                Finding(
                                    self.id,
                                    summary.display_path,
                                    line,
                                    f"{class_summary.name}.{method_name}() emits "
                                    f"key {key!r}, which docs/operations.md never "
                                    f"mentions in backticks",
                                )
                            )
        return findings

    def _in_scope(self, summary: FileSummary) -> bool:
        parts = summary.module.split(".")
        return len(parts) > 1 and parts[0] == "repro" and parts[1] in self._SCOPES
