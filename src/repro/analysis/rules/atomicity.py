"""Exception-atomicity: no raising call between writes to persisted state.

The exact-resume contract assumes a checkpoint observes each object in a
*consistent* state.  A method of a snapshot-covered class (one with
``state_dict``) that writes persisted attribute A, then makes a call
that can raise, then writes persisted attribute B has a window where an
exception leaves A updated and B stale.  The engine's crash-recovery
suite then checkpoints that torn object -- and restore replays from a
state no uninterrupted run ever inhabited.  The bug is invisible until
the *specific* raising input arrives mid-method.

The rule replays each method's evaluation-order event stream from the
project model -- ``write`` / ``call`` / ``raise`` events, each tagged
with whether a ``try``/``except`` guards it -- and reports when

* a persisted write (an attribute covered by the class chain's
  ``state_dict`` keys, same matching as ``snapshot-coverage``),
* is followed by an **unguarded raising event** (a literal ``raise``, or
  a call the interprocedural graph resolves to something that can
  propagate an exception),
* which is followed by another persisted write.

One finding per method, anchored at the raising event.  Fixes, in
preference order: hoist the raising validation above the first write,
compute-then-commit (build new values, assign both after the last call),
or wrap with a handler that rolls back.  Deliberately non-atomic designs
document themselves with ``# repro-lint: ignore[exception-atomicity]``
on the raising line.

Scope limits: ``__init__`` and loaders are exempt (no checkpoint can
observe a half-built object -- registration order guarantees it), writes
made by *callees* are not attributed to the caller (intra-method writes
only), and unresolved calls (builtins, dynamic dispatch) are assumed
non-raising to stay quiet rather than noisy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..callgraph import CallGraph
from ..core import Finding, Project, Rule
from ..model import (
    LOADER_NAMES,
    ClassSummary,
    FileSummary,
    covers_key,
    paths_compatible,
)

__all__ = ["ExceptionAtomicityRule"]

#: Methods that legitimately tear state while rebuilding it.
_EXEMPT = ("__init__",) + LOADER_NAMES


class ExceptionAtomicityRule(Rule):
    """Flag write -> raising event -> write sequences on persisted attributes."""

    id = "exception-atomicity"
    description = (
        "a method of a snapshot-covered class mutates two persisted "
        "attributes with a raising call between the writes; a crash in that "
        "window checkpoints torn state that no uninterrupted run inhabits"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project.model)
        findings: List[Finding] = []
        for summary in project.model.summaries:
            for class_summary in summary.classes.values():
                if not class_summary.has_state_dict:
                    continue
                captured, _restored = project.model.chain_keys(class_summary.name)
                if not captured:
                    continue  # opaque codec: cannot tell which attrs persist
                keys = sorted(captured)
                for method_name, method in class_summary.methods.items():
                    if method_name in _EXEMPT or method_name == "state_dict":
                        continue
                    finding = self._check_method(
                        graph, summary, class_summary, method_name, keys
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _check_method(
        self,
        graph: CallGraph,
        summary: FileSummary,
        class_summary: ClassSummary,
        method_name: str,
        keys: List[str],
    ) -> Optional[Finding]:
        method = class_summary.methods[method_name]
        #: Persisted writes seen so far: (event index, attr, line, path).
        writes: List[Tuple[int, str, int, Tuple]] = []
        #: Unguarded raising events so far: (event index, text, line, path).
        hazards: List[Tuple[int, str, int, Tuple]] = []
        for index, (kind, payload, line, in_try, path) in enumerate(
            method.events
        ):
            if kind == "write" and covers_key(payload, keys):
                # A write closes the torn window for any earlier hazard
                # that itself follows an earlier write, provided all
                # three share compatible branch paths: only then can one
                # invocation execute write -> raise -> write.
                for hazard_at, what, hazard_line, hazard_path in hazards:
                    if not paths_compatible(hazard_path, path):
                        continue
                    for write_at, attr, write_line, write_path in writes:
                        if write_at >= hazard_at:
                            continue
                        if not paths_compatible(write_path, hazard_path):
                            continue
                        if not paths_compatible(write_path, path):
                            continue
                        return Finding(
                            self.id,
                            summary.display_path,
                            hazard_line,
                            f"{class_summary.name}.{method_name}() writes "
                            f"persisted `{attr}` (line {write_line}), then "
                            f"{what} can raise before `{payload}` "
                            f"(line {line}) is written; a crash there "
                            f"checkpoints torn state",
                        )
                writes.append((index, payload, line, path))
            elif writes and not in_try:
                if kind == "raise":
                    hazards.append((index, "a `raise`", line, path))
                elif kind == "call" and graph.call_raises(
                    summary, class_summary, payload
                ):
                    hazards.append(
                        (index, f"the call `{payload}()`", line, path)
                    )
        return None
