"""Optional-truthiness: ``if x:`` on values whose *empty* state is meaningful.

PR 4's checkpoint bug in one line: ``ReorderBuffer`` defines ``__len__``,
so an empty-but-configured buffer is falsy, and ``state["reorder"] if
engine.reorder else None`` silently recorded "no reorder subsystem" for an
engine that *had* one (just momentarily drained).  Restore then rebuilt
the engine without event-time support.  The same trap exists for every
``Optional[C]`` where ``C`` has ``__len__`` (``TriadCensus``,
``LabelDistribution``, ``GraphSummary``...): the author means "is it
configured?" but writes a test that also fails when it is merely empty.

This rule flags truthiness tests -- ``if x:``, ``while x:``, ``x and/or
y``, ``a if x else b``, ``not x`` -- whose operand is

* ``self.<attr>`` / ``<name>.<attr>`` where ``<attr>`` is annotated
  ``Optional[C]`` anywhere in the project with ``C`` defining ``__len__``
  (the project-wide index in ``ProjectModel.optional_len_attrs``), or
* a bare parameter of the enclosing function annotated the same way.

The candidate sites are extracted into each file's summary at parse time
(:func:`repro.analysis.model._truthiness_sites`), so this is a
whole-program rule: it cross-references the cached sites against the
project-wide indexes without re-parsing unchanged files.

The fix is to spell the intent: ``if x is not None:`` (configured?) or
``if x is not None and len(x):`` (configured *and* non-empty?).
"""

from __future__ import annotations

from typing import Iterable, List

from ..core import Finding, Project, Rule

__all__ = ["OptionalTruthinessRule"]


class OptionalTruthinessRule(Rule):
    """Flag truthiness tests on Optional-of-``__len__``-class values."""

    id = "optional-truthiness"
    description = (
        "an Optional of a container-like class (defines __len__) is falsy "
        "when empty, so `if x:` / `x or default` silently treats an "
        "empty-but-configured value as absent; test `x is not None`"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        model = project.model
        for summary in model.summaries:
            for kind, name, inner, spelled, line in summary.truthiness_sites:
                if kind == "attr":
                    risky = name in model.optional_len_attrs
                else:
                    risky = bool(set(inner) & model.len_classes)
                if risky:
                    findings.append(
                        Finding(
                            self.id,
                            summary.display_path,
                            line,
                            f"truthiness test on Optional container "
                            f"`{spelled}` treats the empty "
                            f"value as None; use `is not None`",
                        )
                    )
        return findings
