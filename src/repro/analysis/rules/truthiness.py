"""Optional-truthiness: ``if x:`` on values whose *empty* state is meaningful.

PR 4's checkpoint bug in one line: ``ReorderBuffer`` defines ``__len__``,
so an empty-but-configured buffer is falsy, and ``state["reorder"] if
engine.reorder else None`` silently recorded "no reorder subsystem" for an
engine that *had* one (just momentarily drained).  Restore then rebuilt
the engine without event-time support.  The same trap exists for every
``Optional[C]`` where ``C`` has ``__len__`` (``TriadCensus``,
``LabelDistribution``, ``GraphSummary``...): the author means "is it
configured?" but writes a test that also fails when it is merely empty.

This rule flags truthiness tests -- ``if x:``, ``while x:``, ``x and/or
y``, ``a if x else b``, ``not x`` -- whose operand is

* ``self.<attr>`` / ``<name>.<attr>`` where ``<attr>`` is annotated
  ``Optional[C]`` anywhere in the project with ``C`` defining ``__len__``
  (the project-wide index in :attr:`Project.optional_len_attrs`), or
* a bare parameter of the enclosing function annotated the same way.

The fix is to spell the intent: ``if x is not None:`` (configured?) or
``if x is not None and len(x):`` (configured *and* non-empty?).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceFile, optional_inner_names

__all__ = ["OptionalTruthinessRule"]


def _param_annotations(func: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    args = func.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is not None:
            yield arg.arg, arg.annotation


class OptionalTruthinessRule(Rule):
    """Flag truthiness tests on Optional-of-``__len__``-class values."""

    id = "optional-truthiness"
    description = (
        "an Optional of a container-like class (defines __len__) is falsy "
        "when empty, so `if x:` / `x or default` silently treats an "
        "empty-but-configured value as absent; test `x is not None`"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        attr_names = project.optional_len_attrs
        for func in self._functions(source.tree):
            params: Set[str] = {
                name
                for name, annotation in _param_annotations(func)
                if optional_inner_names(annotation) & project.len_classes
            }
            for node in ast.walk(func):
                for operand in self._truthiness_operands(node):
                    if self._is_risky(operand, params, attr_names):
                        findings.append(
                            Finding(
                                self.id,
                                source.display_path,
                                operand.lineno,
                                f"truthiness test on Optional container "
                                f"`{source.segment(operand)}` treats the empty "
                                f"value as None; use `is not None`",
                            )
                        )
        return findings

    @staticmethod
    def _functions(tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _truthiness_operands(node: ast.AST) -> Iterator[ast.AST]:
        """Expressions evaluated *for their truth value* by ``node``."""
        if isinstance(node, (ast.If, ast.While)):
            yield node.test
        elif isinstance(node, ast.IfExp):
            yield node.test
        elif isinstance(node, ast.BoolOp):
            # every operand of and/or is truth-tested (the last of `or`
            # is returned, but its selection still hinged on the others)
            for value in node.values[:-1] if isinstance(node.op, ast.And) else node.values:
                yield value
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            yield node.operand
        elif isinstance(node, ast.Assert):
            yield node.test
        elif isinstance(node, ast.comprehension):
            for condition in node.ifs:
                yield condition

    @staticmethod
    def _is_risky(operand: ast.AST, params: Set[str], attr_names: Set[str]) -> bool:
        if isinstance(operand, ast.Name):
            return operand.id in params
        if isinstance(operand, ast.Attribute):
            return operand.attr in attr_names
        return False
