"""The repro-lint rule registry.

``ALL_RULES`` is the ordered list of rule classes a default run
instantiates.  Adding a rule is three steps (see ``docs/development.md``):
implement it in a module here, import it below, append it to
``ALL_RULES``, and give it good/bad fixtures in
``tests/fixtures/analysis/``.

Per-file rules (``check_file``) must be pure functions of the file text
-- the cache replays their findings by content hash.  Anything that
reads another file, the project model or the repository belongs in a
whole-program rule (``check_project``).
"""

from .atomicity import ExceptionAtomicityRule
from .determinism import (
    IdHashKeyRule,
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from .drift import ConfigDriftRule, MetricsDocsRule
from .forksafety import ForkSafetyRule
from .lockorder import LockOrderRule
from .locks import LockDisciplineRule
from .snapshots import SnapshotCoverageRule
from .truthiness import OptionalTruthinessRule

__all__ = ["ALL_RULES"]

ALL_RULES = [
    SetIterationRule,
    IdHashKeyRule,
    UnseededRandomRule,
    WallClockRule,
    SnapshotCoverageRule,
    OptionalTruthinessRule,
    LockDisciplineRule,
    LockOrderRule,
    ForkSafetyRule,
    ExceptionAtomicityRule,
    ConfigDriftRule,
    MetricsDocsRule,
]
