"""Fork-safety: cross-process determinism for the sharded worker pool.

``ShardedStreamEngine`` forks workers with ``Process(target=..., args=
(conn, engines))``: each child gets a **fork-time copy** of the shipped
state and talks to the parent only through pickled messages.  Three ways
that model silently breaks, each a determinism or lost-update bug the
single-process test suite cannot see:

* **parent-side mutation after fork** -- the parent writes to state that
  was shipped into the workers (directly, or through an alias like
  ``for engine in self.shards: engine...``).  The workers keep computing
  on the stale copy; results diverge from the single-process oracle.
* **worker-side global writes** -- a function reachable inside the
  worker process assigns a module global.  Every worker mutates its own
  copy; the parent's copy never changes, and nothing merges them back.
* **unstable or unpicklable payloads** -- a set (iteration order varies
  across processes), a generator or a lambda reaching a ``conn.send``,
  ``ShardBatch`` or ``Process`` argument.  Sets are the insidious case:
  they pickle fine, then replay in a different order on the other side,
  violating byte-for-byte determinism.

The checks consume the project model: ship roots and post-fork writes
come from :class:`~repro.analysis.model.ClassSummary` (with one level of
local-alias dataflow), worker-reachable code from the call graph's
closure over ``Process`` targets, payload issues from per-method scans
of the boundary expressions.

Deliberate designs carry suppressions: e.g. the sharded engine's
retention sync mutates shard engines through an alias, but is gated by
its register-before-ingest contract and re-ships the value per batch --
the suppression comment documents exactly that.

Scope limits: mutations through method *calls* (``self.shards[0].m()``)
are not tracked (no points-to analysis), and only ``conn``-named pipe
ends are treated as send boundaries.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..callgraph import CallGraph
from ..core import Finding, Project, Rule

__all__ = ["ForkSafetyRule"]


class ForkSafetyRule(Rule):
    """Flag state that crosses the fork boundary incoherently."""

    id = "fork-safety"
    description = (
        "state shipped into forked workers is mutated parent-side after the "
        "fork, written worker-side without a merge, or serialized through an "
        "order-unstable/unpicklable payload; shard results then diverge from "
        "the single-process oracle"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project.model)
        findings: List[Finding] = []
        worker_nodes: Set[Tuple[str, int]] = set()

        for summary in project.model.summaries:
            for class_summary in summary.classes.values():
                if class_summary.process_targets:
                    # (1) parent-side writes to fork-shipped state
                    for attr, method, line in sorted(
                        set(class_summary.ship_root_writes)
                    ):
                        findings.append(
                            Finding(
                                self.id,
                                summary.display_path,
                                line,
                                f"{class_summary.name}.{method}() writes to "
                                f"`{attr}`, which was shipped into forked "
                                f"workers: they keep their fork-time copy, so "
                                f"the mutation never reaches them",
                            )
                        )
                    # (2) worker-side writes to module globals
                    for node_file, node in graph.worker_closure(summary, class_summary):
                        key = (node_file.display_path, node.line)
                        if key in worker_nodes:
                            continue
                        worker_nodes.add(key)
                        for name, line in sorted(set(node.global_writes)):
                            findings.append(
                                Finding(
                                    self.id,
                                    node_file.display_path,
                                    line,
                                    f"worker-reachable {node.name}() writes "
                                    f"module global `{name}`: each worker "
                                    f"mutates its own copy and the parent "
                                    f"never sees it",
                                )
                            )

            # (3) payload hygiene at every process boundary in the file
            scopes = [
                method
                for class_summary in summary.classes.values()
                for method in class_summary.methods.values()
            ] + list(summary.functions.values())
            seen: Set[Tuple[str, str, int]] = set()
            for scope in scopes:
                for boundary, description, line in scope.payload_issues:
                    key = (boundary, description, line)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        Finding(
                            self.id,
                            summary.display_path,
                            line,
                            f"{boundary} payload contains {description}; "
                            f"cross-process messages must be order-stable "
                            f"and picklable",
                        )
                    )
        return findings
