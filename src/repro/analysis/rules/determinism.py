"""Determinism rules: hash-order iteration, id/hash keys, RNG, wall clocks.

The engine's contract is byte-for-byte determinism: the same stream fed to
the same configuration produces the same events in the same order, across
processes, shard counts and checkpoint/restore cuts.  Four mechanical
patterns break that contract, and each has shipped (or nearly shipped) in
this repository:

* ``set-iteration`` -- iterating a ``set``/``frozenset`` lets
  ``PYTHONHASHSEED`` pick the order (PR 2's id-hash-ordered adjacency
  enumeration was this bug one level down).  Wrapping in ``sorted(...)``
  or folding with an order-insensitive reducer (``sum``/``min``/``max``/
  ``any``/``all``/``len``) is fine and not flagged.
* ``id-hash-key`` -- sorting or keying by ``id()`` / builtin ``hash()``
  orders by allocation address / seeded hash, which no two processes
  share.  Using ``id()`` for identity *membership* (dedup sets) is
  deterministic and allowed.
* ``unseeded-random`` -- the module-global ``random.*`` functions (and a
  seedless ``random.Random()``) draw from interpreter-global state any
  import can perturb; every RNG in the engine must be an owned, seeded
  ``random.Random(seed)`` whose state checkpoints can capture.
* ``wall-clock`` -- ``time.time()`` / ``datetime.now()`` inside the
  engine couples behaviour to the machine clock; stream time must come
  from the records.  (``perf_counter`` is allowed: latency metrics are
  documented as non-deterministic measurements.)

These rules are scoped to the subpackages whose code decides event
output -- ``core``, ``streaming``, ``graph``, ``isomorphism``, ``stats``
(statistics feed the planner, so their order leaks into plans and thence
into event order).  Harness/workload/viz code may use wall clocks and
module RNGs freely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceFile

__all__ = [
    "DETERMINISM_SCOPES",
    "IdHashKeyRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]

#: Subpackages whose code can influence event output (see module docstring).
DETERMINISM_SCOPES = ("core", "streaming", "graph", "isomorphism", "stats", "sketch")

#: Individual modules outside the scoped subpackages whose code still
#: influences event output.  ``query/`` is mostly declarative (predicate
#: and query-graph definitions evaluated per call), but the predicate
#: compiler bakes iteration decisions into closures at registration, so
#: hash-order leaks there become permanent plan artefacts.
DETERMINISM_MODULES = (("query", "compile.py"),)


def in_determinism_scope(source: SourceFile) -> bool:
    parts = source.path.parts
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    if not parts:
        return False
    if parts[0] in DETERMINISM_SCOPES:
        return True
    return tuple(parts) in DETERMINISM_MODULES


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class SetIterationRule(Rule):
    """Flag iteration over ``set``/``frozenset`` values in ordered contexts."""

    id = "set-iteration"
    description = (
        "iterating a set/frozenset takes hash order, which PYTHONHASHSEED "
        "randomises across processes; iterate an insertion-ordered dict "
        "(dict.fromkeys) or wrap in sorted(...)"
    )

    #: Calls that materialise their argument in iteration order.
    _ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "join"}

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not in_determinism_scope(source):
            return []
        findings: List[Finding] = []
        for scope in _function_scopes(source.tree):
            set_names = _locally_set_names(scope)
            for node in _scope_walk(scope):
                if isinstance(node, ast.For):
                    self._check_iter(node.iter, set_names, source, findings)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    # a SetComp's output is itself unordered, so its input
                    # order cannot leak; list/generator/dict outputs keep it
                    for generator in node.generators:
                        self._check_iter(generator.iter, set_names, source, findings)
                elif isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    if name in self._ORDERED_CONSUMERS and node.args:
                        self._check_iter(node.args[0], set_names, source, findings)
        return findings

    def _check_iter(
        self,
        iterable: ast.AST,
        set_names: Set[str],
        source: SourceFile,
        findings: List[Finding],
    ) -> None:
        if _is_set_expr(iterable, set_names):
            findings.append(
                Finding(
                    self.id,
                    source.display_path,
                    iterable.lineno,
                    f"iteration over a set takes hash order: `{source.segment(iterable)}`",
                )
            )


class IdHashKeyRule(Rule):
    """Flag sorting/keying by ``id()`` or builtin ``hash()``."""

    id = "id-hash-key"
    description = (
        "ordering by id()/hash() follows allocation addresses / the seeded "
        "string hash, which differ across processes; key on a stable field "
        "(registration order, timestamps, identities)"
    )

    _ORDERING_CALLS = {"sorted", "min", "max", "sort"}

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not in_determinism_scope(source):
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) not in self._ORDERING_CALLS:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._key_uses_identity(keyword.value):
                    findings.append(
                        Finding(
                            self.id,
                            source.display_path,
                            keyword.value.lineno,
                            f"ordering key built from id()/hash(): "
                            f"`{source.segment(node)}`",
                        )
                    )
        return findings

    @staticmethod
    def _key_uses_identity(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return True
        if isinstance(key, ast.Lambda):
            for inner in ast.walk(key.body):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id in ("id", "hash")
                ):
                    return True
        return False


class UnseededRandomRule(Rule):
    """Flag the module-global ``random.*`` API and seedless ``random.Random()``."""

    id = "unseeded-random"
    description = (
        "the module-global random API draws from interpreter-global state "
        "any import can perturb (and checkpoints cannot own); use an "
        "explicitly seeded random.Random(seed) instance"
    )

    _GLOBAL_FUNCTIONS = {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not in_determinism_scope(source):
            return []
        imported = _names_imported_from(source.tree, "random")
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_global_call = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in self._GLOBAL_FUNCTIONS
            ) or (
                isinstance(func, ast.Name)
                and func.id in imported
                and func.id in self._GLOBAL_FUNCTIONS
            )
            if is_global_call:
                findings.append(
                    Finding(
                        self.id,
                        source.display_path,
                        node.lineno,
                        f"module-global RNG call: `{source.segment(node)}`",
                    )
                )
                continue
            is_random_class = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr == "Random"
            ) or (isinstance(func, ast.Name) and func.id == "Random" and "Random" in imported)
            if is_random_class and not node.args and not node.keywords:
                findings.append(
                    Finding(
                        self.id,
                        source.display_path,
                        node.lineno,
                        "random.Random() without a seed falls back to OS entropy; "
                        "pass an explicit seed",
                    )
                )
        return findings


class WallClockRule(Rule):
    """Flag wall-clock reads (``time.time``, ``datetime.now``, ``today``)."""

    id = "wall-clock"
    description = (
        "engine behaviour must be a function of the stream, not the machine "
        "clock; take timestamps from records (perf_counter is allowed for "
        "latency measurement only)"
    )

    _WALL_ATTRS = {"time", "time_ns", "now", "utcnow", "today"}

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not in_determinism_scope(source):
            return []
        time_imports = _names_imported_from(source.tree, "time") & {"time", "time_ns"}
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged = False
            if isinstance(func, ast.Attribute) and func.attr in self._WALL_ATTRS:
                if func.attr in ("time", "time_ns"):
                    # only the time module's functions, not any .time() method
                    flagged = isinstance(func.value, ast.Name) and func.value.id == "time"
                else:
                    flagged = True  # .now()/.utcnow()/.today() on anything
            elif isinstance(func, ast.Name) and func.id in time_imports:
                flagged = True
            if flagged:
                findings.append(
                    Finding(
                        self.id,
                        source.display_path,
                        node.lineno,
                        f"wall-clock read: `{source.segment(node)}`",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module plus every (async) function, for per-scope inference."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    queue: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _is_set_literalish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in ("set", "frozenset")
    return False


def _locally_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set expression (and never anything else) in ``scope``."""
    set_names: Set[str] = set()
    other_names: Set[str] = set()
    for node in _scope_walk(scope):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None
        for target in targets:
            if isinstance(target, ast.Name):
                if value is not None and _is_set_literalish(value):
                    set_names.add(target.id)
                else:
                    other_names.add(target.id)
    return set_names - other_names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if _is_set_literalish(node):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


def _names_imported_from(tree: ast.Module, module: str) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names
