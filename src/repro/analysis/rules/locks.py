"""Lock discipline, interprocedurally: guarded attrs & two-thread escapes.

The engine's threading layer is small and deliberate -- a class owns
``threading.Lock``/``RLock``/``Condition`` objects created in
``__init__`` and guards its mutable state with ``with self._lock:``
blocks.  Two ways that discipline rots:

* **off-lock access** -- an attribute consistently accessed under a lock
  gets a new call site that forgets the ``with``.  The syntactic version
  of this rule (PR 6) flagged any off-lock access, which made *helpers
  only ever invoked under the lock* false positives; this version
  computes each method's **entry lock context** via the call graph (the
  intersection, over every intra-class call site, of the locks provably
  held there), so a private helper called exclusively from locked regions
  inherits that protection and is not flagged.  Public methods are
  externally callable and always start bare.  Helpers reachable only
  from ``__init__`` never run concurrently and are exempt.
* **thread escape** -- a class that spawns ``Thread(target=self._loop)``
  has two sides: the spawned thread (the closure of the target over
  ``self`` calls) and the callers of its public surface.  An attribute
  written on either side and accessed on both with **no common lock** is
  a data race no single-method inspection can see.  This is exactly
  ``AsyncIngestFrontend``'s documented two-thread contract, promoted
  from a docstring to a checked invariant.

Why these races matter here: Python's GIL makes single attribute loads
atomic, which is precisely why such bugs survive review -- a counter
incremented off-lock *usually* reads right, then a quiescence check
pairs two counters read at different instants and the drain hangs or
releases early, a timing-dependent failure no deterministic test
reproduces.

Scope limits (shared with the model layer): lambda bodies and nested
functions are skipped -- a callback executed under someone else's lock is
invisible, so e.g. the ``_quiesced(lambda: ...)`` pattern relies on the
quiesce protocol, not on this rule.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..callgraph import CallGraph
from ..core import Finding, Project, Rule
from ..model import ClassSummary, FileSummary

__all__ = ["LockDisciplineRule"]

#: One attribute access with its effective lock set resolved:
#: ``(method, kind, effective locks, line)``.
_Access = Tuple[str, str, FrozenSet[str], int]


class LockDisciplineRule(Rule):
    """Flag off-lock access to guarded state and two-thread lock-free sharing."""

    id = "lock-discipline"
    description = (
        "an attribute accessed under a lock elsewhere (or shared between a "
        "spawned thread and its caller side) is touched with no lock held; "
        "the interleaving window corrupts state or tears checkpoints"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project.model)
        findings: List[Finding] = []
        for summary in project.model.summaries:
            for class_summary in summary.classes.values():
                if not class_summary.lock_attrs:
                    continue
                findings.extend(self._check_class(graph, summary, class_summary))
        return findings

    # ------------------------------------------------------------------
    def _check_class(
        self, graph: CallGraph, summary: FileSummary, class_summary: ClassSummary
    ) -> List[Finding]:
        entry = graph.entry_locks(class_summary)
        accesses = self._effective_accesses(class_summary, entry)

        guarded: Set[str] = set()
        mutable: Set[str] = set()
        for attr, items in accesses.items():
            for _method, kind, locks, _line in items:
                if locks:
                    guarded.add(attr)
                if kind in ("write", "del"):
                    mutable.add(attr)

        findings: List[Finding] = []
        for attr in sorted(guarded & mutable):
            for method, _kind, locks, line in accesses[attr]:
                if not locks:
                    findings.append(
                        Finding(
                            self.id,
                            summary.display_path,
                            line,
                            f"{class_summary.name}.{attr} is lock-guarded "
                            f"elsewhere but accessed off-lock in {method}()",
                        )
                    )

        findings.extend(self._check_escape(graph, summary, class_summary, accesses))
        return findings

    @staticmethod
    def _effective_accesses(
        class_summary: ClassSummary,
        entry: Dict[str, Optional[FrozenSet[str]]],
    ) -> Dict[str, List[_Access]]:
        """Per attribute: every non-``__init__`` access with effective locks.

        The effective set is the locks syntactically held at the site plus
        the method's entry context.  Methods with entry ``None`` are
        ``__init__``-only helpers: construction is single-threaded, so
        their accesses are exempt exactly like ``__init__``'s own.
        """
        accesses: Dict[str, List[_Access]] = {}
        for method_name, method in class_summary.methods.items():
            if method_name == "__init__":
                continue
            base = entry.get(method_name, frozenset())
            if base is None:
                continue
            for attr, kind, locks, line in method.accesses:
                effective = frozenset(locks) | base
                accesses.setdefault(attr, []).append(
                    (method_name, kind, effective, line)
                )
        return accesses

    def _check_escape(
        self,
        graph: CallGraph,
        summary: FileSummary,
        class_summary: ClassSummary,
        accesses: Dict[str, List[_Access]],
    ) -> List[Finding]:
        """Attributes reachable from both threads with no common lock."""
        partition = graph.thread_partition(class_summary)
        if partition is None:
            return []
        thread_side, caller_side = partition
        findings: List[Finding] = []
        for attr in sorted(accesses):
            thread_hits = [item for item in accesses[attr] if item[0] in thread_side]
            caller_hits = [item for item in accesses[attr] if item[0] in caller_side]
            witness: Optional[Tuple[_Access, _Access]] = None
            for thread_hit in thread_hits:
                for caller_hit in caller_hits:
                    if thread_hit[1] not in ("write", "del") and caller_hit[1] not in (
                        "write",
                        "del",
                    ):
                        continue  # two reads cannot race
                    if thread_hit[2] & caller_hit[2]:
                        continue  # a common lock orders them
                    candidate = (thread_hit, caller_hit)
                    if witness is None or self._witness_key(candidate) < self._witness_key(
                        witness
                    ):
                        witness = candidate
            if witness is not None:
                thread_hit, caller_hit = witness
                findings.append(
                    Finding(
                        self.id,
                        summary.display_path,
                        caller_hit[3],
                        f"{class_summary.name}.{attr} is accessed by the "
                        f"spawned thread (in {thread_hit[0]}(), line "
                        f"{thread_hit[3]}) and by callers (in {caller_hit[0]}()) "
                        f"with no common lock; the two threads race on it",
                    )
                )
        return findings

    @staticmethod
    def _witness_key(pair: Tuple[_Access, _Access]) -> Tuple[int, int]:
        thread_hit, caller_hit = pair
        return (caller_hit[3], thread_hit[3])
