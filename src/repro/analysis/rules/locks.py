"""Lock discipline: mutable shared attributes must be touched under the lock.

The async ingest front-end (PR 5) runs a producer thread (``submit``) and
an ingest thread (``_ingest_loop``) against the same object.  Python's
GIL makes single attribute loads atomic, which is precisely why these
bugs survive review: a counter incremented off-lock *usually* reads
right, then a quiescence check pairs two counters read at different
instants and the drain hangs or releases early -- a timing-dependent
failure no deterministic test reproduces.

The rule, per class that creates a lock in ``__init__``
(``self._lock = threading.Lock()`` / ``RLock()`` / ``Condition()``):

* an attribute is *guarded* if any method reads or writes it inside a
  ``with self.<lock>:`` block;
* an attribute is *mutable* if some method other than ``__init__``
  assigns it (attributes only ever written during construction are
  immutable-after-init and exempt -- readers need no lock);
* every access to a guarded, mutable attribute outside a ``with``
  block on one of the class's locks is a finding.

Scope limits (to stay on the right side of false positives): only the
class's own methods are inspected, ``__init__`` is exempt (no second
thread can hold the object yet), and lambda bodies / nested functions
are skipped -- they execute later, in a context the rule cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core import Finding, Project, Rule, SourceFile

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


def _lock_attr_names(class_node: ast.ClassDef) -> Set[str]:
    """Attributes assigned ``threading.Lock()``-style objects in ``__init__``."""
    locks: Set[str] = set()
    for item in class_node.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    locks.add(target.attr)
    return locks


def _is_self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _walk_with_lock_depth(
    body: List[ast.stmt], self_name: str, locks: Set[str], depth: int = 0
) -> Iterator[Tuple[ast.AST, int]]:
    """Yield ``(node, lock depth)`` without descending into nested scopes."""
    for stmt in body:
        for node, node_depth in _walk_node(stmt, self_name, locks, depth):
            yield node, node_depth


def _walk_node(
    node: ast.AST, self_name: str, locks: Set[str], depth: int
) -> Iterator[Tuple[ast.AST, int]]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    yield node, depth
    if isinstance(node, ast.With):
        held = any(
            _is_self_attr(item.context_expr, self_name) in locks
            for item in node.items
        )
        for item in node.items:
            yield from _walk_node(item.context_expr, self_name, locks, depth)
        inner = depth + 1 if held else depth
        for stmt in node.body:
            yield from _walk_node(stmt, self_name, locks, inner)
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_node(child, self_name, locks, depth)


class LockDisciplineRule(Rule):
    """Flag off-lock access to attributes the class guards elsewhere."""

    id = "lock-discipline"
    description = (
        "this attribute is accessed under a lock in other methods of the "
        "class, so touching it off-lock races the guarded readers/writers; "
        "move the access inside `with self.<lock>:`"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node in ast.walk(source.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            locks = _lock_attr_names(class_node)
            if not locks:
                continue
            findings.extend(self._check_class(class_node, locks, source))
        return findings

    def _check_class(
        self, class_node: ast.ClassDef, locks: Set[str], source: SourceFile
    ) -> Iterable[Finding]:
        methods = [
            item
            for item in class_node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: Set[str] = set()
        mutable: Set[str] = set()
        # (method name, attr, node) accesses outside any lock
        unguarded: List[Tuple[str, str, ast.AST]] = []
        for method in methods:
            self_name = method.args.args[0].arg if method.args.args else "self"
            for node, depth in _walk_with_lock_depth(method.body, self_name, locks):
                attr = _is_self_attr(node, self_name)
                if attr is None or attr in locks:
                    continue
                if depth > 0:
                    guarded.add(attr)
                elif method.name != "__init__":
                    unguarded.append((method.name, attr, node))
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and method.name != "__init__"
                ):
                    mutable.add(attr)
        # AugAssign targets carry Store ctx on the Attribute, so `self.x += 1`
        # lands in `mutable` through the same path as plain assignment.
        risky = guarded & mutable
        for method_name, attr, node in unguarded:
            if attr in risky:
                yield Finding(
                    self.id,
                    source.display_path,
                    node.lineno,
                    f"{class_node.name}.{attr} is lock-guarded elsewhere but "
                    f"accessed off-lock in {method_name}()",
                )
