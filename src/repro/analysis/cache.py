"""The on-disk analysis cache: summaries + findings keyed by content hash.

One JSON file (default ``<root>/.repro-lint-cache.json``) holding, per
analysed file, the sha256 of its text, its :class:`~repro.analysis.model.
FileSummary`, the raw (pre-suppression) per-file findings, and its
suppression comments -- everything a later run needs to skip parsing a
file whose text has not changed.  Project-scoped findings are stored
under a single **model key**: the hash of every file's (path, sha) pair
plus the rule set and the docs inputs, so they are only replayed when
*nothing* the whole-program rules can see has moved.

The cache is strictly a performance artifact and must never change an
answer, so the trust rules are asymmetric:

* any read problem -- missing file, unreadable JSON, wrong version, a
  structurally bogus entry -- degrades silently to "cache miss"; the run
  rebuilds and rewrites.  Corruption can never crash an analysis or leak
  a stale finding (mirrors the snapshot-corruption contract in
  ``tests/test_checkpoint.py``);
* a different *rule set* invalidates everything (cached findings are the
  output of the rules that ran);
* writes are atomic (temp file + ``os.replace``) with sorted keys, so a
  crashed run leaves either the old cache or the new one, never a torn
  file, and identical state produces identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump whenever the summary or cache schema changes shape; old caches
#: are then ignored wholesale and rebuilt.
CACHE_VERSION = 1

__all__ = ["AnalysisCache", "CACHE_VERSION", "text_hash"]


def text_hash(text: str) -> str:
    """Content hash used for cache keys (sha256 of the file text)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def model_key(
    file_hashes: Sequence[Tuple[str, str]],
    rule_ids: Sequence[str],
    extra_inputs: Sequence[str] = (),
) -> str:
    """Key under which project-scoped findings are cached.

    ``file_hashes`` is every analysed file's ``(display path, sha)``;
    ``extra_inputs`` covers out-of-model inputs a project rule reads
    (the docs files the drift rules compare against).
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "files": sorted(file_hashes),
            "rules": sorted(rule_ids),
            "extra": list(extra_inputs),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Load/store wrapper around the cache file; never raises on bad input."""

    def __init__(self, path: Path, rule_ids: Sequence[str]):
        self.path = path
        self.rule_ids = sorted(rule_ids)
        self._files: Dict[str, Dict[str, Any]] = {}
        self._project: Dict[str, Any] = {}
        self._load()

    # ------------------------------------------------------------------
    # loading (any failure -> empty cache)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            raw = self.path.read_text()
        except OSError:
            return
        try:
            data = json.loads(raw)
        except ValueError:
            return
        if not isinstance(data, dict):
            return
        if data.get("version") != CACHE_VERSION:
            return
        if data.get("rules") != self.rule_ids:
            return  # a different rule set produced these findings
        files = data.get("files")
        if isinstance(files, dict):
            for display_path, entry in files.items():
                if self._valid_entry(entry):
                    self._files[display_path] = entry
        project = data.get("project")
        if isinstance(project, dict):
            self._project = project

    @staticmethod
    def _valid_entry(entry: Any) -> bool:
        return (
            isinstance(entry, dict)
            and isinstance(entry.get("hash"), str)
            and isinstance(entry.get("summary"), dict)
            and isinstance(entry.get("findings"), list)
            and isinstance(entry.get("suppressions"), dict)
        )

    # ------------------------------------------------------------------
    # per-file entries
    # ------------------------------------------------------------------
    def lookup_file(self, display_path: str, sha: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``display_path`` iff its text hash matches."""
        entry = self._files.get(display_path)
        if entry is not None and entry["hash"] == sha:
            return entry
        return None

    def store_file(
        self,
        display_path: str,
        sha: str,
        summary: Dict[str, Any],
        findings: List[Dict[str, Any]],
        suppressions: Dict[str, List[str]],
    ) -> None:
        self._files[display_path] = {
            "hash": sha,
            "summary": summary,
            "findings": findings,
            "suppressions": suppressions,
        }

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files no longer part of the analysed tree."""
        wanted = set(keep)
        for display_path in list(self._files):
            if display_path not in wanted:
                del self._files[display_path]

    # ------------------------------------------------------------------
    # project-scoped findings
    # ------------------------------------------------------------------
    def lookup_project(self, key: str) -> Optional[List[Dict[str, Any]]]:
        if self._project.get("key") == key and isinstance(
            self._project.get("findings"), list
        ):
            findings = self._project["findings"]
            return list(findings)
        return None

    def store_project(self, key: str, findings: List[Dict[str, Any]]) -> None:
        self._project = {"key": key, "findings": findings}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        """Atomic write; failures (read-only tree, etc.) are non-fatal."""
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "rules": self.rule_ids,
                "files": self._files,
                "project": self._project,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp_path.write_text(payload)
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                tmp_path.unlink()
            except OSError:
                pass
