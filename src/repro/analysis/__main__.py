"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage/parse errors -- the same
convention as the test suite and ``scripts/check_docs.py``, so CI can
wire it in without adapters.

Caching: the CLI keeps a project-model cache at
``<root>/.repro-lint-cache.json`` (the root is found by walking up from
the first analysed path to a ``docs/`` or ``.git`` directory) so a run
over an unchanged tree parses nothing.  ``--no-cache`` disables it,
``--cache-path`` relocates it, and ``--changed-only`` additionally
replays the cached whole-program findings when no file changed at all --
the mode CI uses for pull-request runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import AnalysisError, detect_root, run_analysis
from .rules import ALL_RULES

#: Cache file name, rooted at the repository root (gitignored).
CACHE_FILENAME = ".repro-lint-cache.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based determinism & state-integrity analysis. "
            "Suppress a finding with `# repro-lint: ignore[rule-id]` on its "
            "line; unused suppressions are errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is the machine-readable report)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the project-model cache (always parse everything)",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        help=f"cache file location (default: <root>/{CACHE_FILENAME})",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "only analyse files whose content hash differs from the cache; "
            "whole-program rules still re-run whenever any model input "
            "changed, and are replayed from cache when nothing did"
        ),
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.id}: {rule_class.description}")
        return 0

    cache_path: Optional[Path] = None
    if not options.no_cache:
        if options.cache_path is not None:
            cache_path = Path(options.cache_path)
        else:
            root = detect_root(options.paths)
            if root is not None:
                cache_path = root / CACHE_FILENAME
    if options.changed_only and cache_path is None:
        print(
            "repro-lint: error: --changed-only needs the cache "
            "(drop --no-cache or pass --cache-path)",
            file=sys.stderr,
        )
        return 2

    try:
        report = run_analysis(
            options.paths,
            cache_path=cache_path,
            changed_only=options.changed_only,
        )
    except AnalysisError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        cached = (
            f" ({report.files_parsed} parsed, rest cached)"
            if report.files_parsed < report.files_analyzed
            else ""
        )
        print(
            f"repro-lint: {status} -- {report.files_analyzed} files{cached}, "
            f"{len(report.rules_run)} rules, {report.duration_seconds:.2f}s"
        )
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
