"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage/parse errors -- the same
convention as the test suite and ``scripts/check_docs.py``, so CI can
wire it in without adapters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .core import AnalysisError, run_analysis
from .rules import ALL_RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based determinism & state-integrity analysis. "
            "Suppress a finding with `# repro-lint: ignore[rule-id]` on its "
            "line; unused suppressions are errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is the machine-readable report)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.id}: {rule_class.description}")
        return 0

    try:
        report = run_analysis(options.paths)
    except AnalysisError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        print(
            f"repro-lint: {status} -- {report.files_analyzed} files, "
            f"{len(report.rules_run)} rules, {report.duration_seconds:.2f}s"
        )
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
