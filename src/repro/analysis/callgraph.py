"""Call-graph queries over the project model.

This layer turns the flat per-file summaries of :mod:`repro.analysis.model`
into the interprocedural facts the whole-program rules consume:

* **resolution** -- a spelled call (``self.m``, ``helper``, ``mod.f``)
  plus the context it was made from (file, enclosing class) resolves to a
  concrete method or function node, following class chains, local
  definitions and project imports;
* **raise reachability** -- whether a node can propagate an exception to
  its caller (a ``raise`` outside any ``try``/``except`` in the node
  itself, or transitively through an unguarded call);
* **entry lock contexts** -- for each method of a class, the set of the
  class's locks that is *provably held on every path into the method*.
  Public methods (anything without a leading underscore, plus dunders)
  are externally callable, so their entry context is empty; a private
  helper's context is the intersection over its intra-class call sites of
  (caller's entry context + locks held at the site).  A private helper
  whose only callers are ``__init__``-reachable never runs concurrently
  and is exempt (context ``None``);
* **lock-order graph** -- edges ``held -> acquired`` from nested ``with``
  blocks and from calls made while holding a lock into methods that
  (transitively) acquire another; cycles are potential deadlocks.
  Re-acquiring a plain ``threading.Lock`` already held is a self-deadlock
  and reported as a one-node cycle; ``RLock``/``Condition`` re-entry is
  legal and exempt;
* **thread partition** -- for classes that spawn ``Thread(target=self.m)``,
  the split of methods into the spawned thread's side (closure of the
  targets over ``self`` calls) and the caller side (closure of the public
  surface), which the escape analysis uses to find attributes reachable
  from both threads with no common lock;
* **worker closure** -- for classes that spawn ``Process(target=...)``,
  the set of module-level functions reachable in the child process.

Everything here is derived data: it is rebuilt from summaries on each run
(cheap -- no parsing) and never cached on disk.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .model import ClassSummary, FileSummary, MethodSummary, ProjectModel

__all__ = ["CallGraph", "LockCycle", "NodeKey"]

#: ``("m", path, class, method)`` or ``("f", path, function)``.
NodeKey = Tuple[str, ...]


def is_public_method(name: str) -> bool:
    """Externally callable by convention: no leading underscore, or dunder."""
    if not name.startswith("_"):
        return True
    return name.startswith("__") and name.endswith("__")


class LockCycle:
    """A cycle in a class's lock-acquisition graph."""

    __slots__ = ("locks", "sites")

    def __init__(self, locks: Tuple[str, ...], sites: List[Tuple[str, str, int]]):
        #: The locks on the cycle, in traversal order.
        self.locks = locks
        #: One ``(method, "held -> acquired", line)`` witness per edge.
        self.sites = sites


class CallGraph:
    """Derived interprocedural queries; construct once per analysis run."""

    def __init__(self, model: ProjectModel):
        self.model = model
        self._nodes: Dict[NodeKey, MethodSummary] = {}
        self._node_class: Dict[NodeKey, Tuple[FileSummary, Optional[ClassSummary]]] = {}
        for file_summary in model.summaries:
            for function in file_summary.functions.values():
                key = ("f", file_summary.display_path, function.name)
                self._nodes[key] = function
                self._node_class[key] = (file_summary, None)
            for class_summary in file_summary.classes.values():
                for method in class_summary.methods.values():
                    key = (
                        "m",
                        file_summary.display_path,
                        class_summary.name,
                        method.name,
                    )
                    self._nodes[key] = method
                    self._node_class[key] = (file_summary, class_summary)
        self._raises_memo: Dict[NodeKey, bool] = {}

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        file_summary: FileSummary,
        class_summary: Optional[ClassSummary],
        spelled: str,
    ) -> Optional[NodeKey]:
        """Resolve a spelled call to a node key, or ``None`` if unknown."""
        if spelled.startswith("self."):
            if class_summary is None:
                return None
            method = spelled[5:]
            for chain_file, chain_class in self.model.class_chain(class_summary.name):
                if method in chain_class.methods:
                    return ("m", chain_file.display_path, chain_class.name, method)
            return None
        if "." in spelled:
            receiver, _, name = spelled.partition(".")
            if receiver == "?":
                return None
            target = file_summary.imports.get(receiver)
            if target is None:
                return None
            module, original = target
            module_name = module if original == "*" else f"{module}.{original}"
            target_file = self.model.modules.get(module_name)
            if target_file is None:
                return None
            return self._resolve_in_file(target_file, name)
        # a bare name: local definition first, then project imports
        local = self._resolve_in_file(file_summary, spelled)
        if local is not None:
            return local
        target = file_summary.imports.get(spelled)
        if target is not None:
            module, original = target
            target_file = self.model.modules.get(module)
            if target_file is not None and original != "*":
                return self._resolve_in_file(target_file, original)
        return None

    def _resolve_in_file(self, file_summary: FileSummary, name: str) -> Optional[NodeKey]:
        if name in file_summary.functions:
            return ("f", file_summary.display_path, name)
        if name in file_summary.classes:
            # calling a class constructs it: the node is its __init__
            class_summary = file_summary.classes[name]
            if "__init__" in class_summary.methods:
                return ("m", file_summary.display_path, name, "__init__")
        return None

    def node(self, key: NodeKey) -> MethodSummary:
        return self._nodes[key]

    # ------------------------------------------------------------------
    # raise reachability
    # ------------------------------------------------------------------
    def raises(self, key: NodeKey) -> bool:
        """Can this node propagate an exception to its caller?

        ``raise`` statements and calls that sit inside a ``try`` with a
        handler are treated as contained; unresolved callees (builtins,
        dynamic dispatch) are assumed non-raising, which keeps the rule
        quiet rather than noisy -- the documented trade-off.
        """
        memo = self._raises_memo
        if key in memo:
            return memo[key]
        on_stack: Set[NodeKey] = set()

        def walk(current: NodeKey) -> bool:
            if current in memo:
                return memo[current]
            if current in on_stack:
                return False  # recursion: the cycle alone proves nothing
            on_stack.add(current)
            summary = self._nodes[current]
            result = summary.raises_directly
            if not result:
                file_summary, class_summary = self._node_class[current]
                for kind, spelled, _line, in_try, _path in summary.events:
                    if kind != "call" or in_try:
                        continue
                    callee = self.resolve(file_summary, class_summary, spelled)
                    if callee is not None and walk(callee):
                        result = True
                        break
            on_stack.discard(current)
            memo[current] = result
            return result

        return walk(key)

    def call_raises(
        self,
        file_summary: FileSummary,
        class_summary: Optional[ClassSummary],
        spelled: str,
    ) -> bool:
        """Does a spelled call site (outside ``try``) risk an exception?"""
        key = self.resolve(file_summary, class_summary, spelled)
        return key is not None and self.raises(key)

    # ------------------------------------------------------------------
    # entry lock contexts
    # ------------------------------------------------------------------
    def entry_locks(
        self, class_summary: ClassSummary
    ) -> Dict[str, Optional[FrozenSet[str]]]:
        """Locks provably held on every entry into each method.

        Returns ``frozenset()`` for externally callable methods, a
        non-empty frozenset for helpers always invoked under those locks,
        and ``None`` for helpers only ever reached from ``__init__`` (or
        not at all) -- those never run concurrently and are exempt from
        lock-discipline findings.
        """
        methods = class_summary.methods
        sites: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {name: [] for name in methods}
        for caller_name, caller in methods.items():
            if caller_name == "__init__":
                continue  # construction is single-threaded by contract
            for callee, locks, _line in caller.self_calls:
                if callee in sites:
                    sites[callee].append((caller_name, locks))

        entry: Dict[str, Optional[FrozenSet[str]]] = {}
        for name in methods:
            if name == "__init__" or is_public_method(name) or not sites[name]:
                # public surface and uncalled privates: assume bare entry
                entry[name] = frozenset()
            else:
                entry[name] = None  # to be narrowed by the fixed point

        changed = True
        while changed:
            changed = False
            for name in methods:
                if entry[name] is not None and not sites[name]:
                    continue
                if name == "__init__" or is_public_method(name):
                    continue
                contributions: List[FrozenSet[str]] = []
                for caller_name, locks in sites[name]:
                    base = entry.get(caller_name)
                    if base is None:
                        continue  # caller unconstrained so far: no contribution yet
                    contributions.append(base | frozenset(locks))
                if contributions:
                    narrowed: FrozenSet[str] = contributions[0]
                    for contribution in contributions[1:]:
                        narrowed &= contribution
                    if narrowed != entry[name]:
                        entry[name] = narrowed
                        changed = True
        return entry

    # ------------------------------------------------------------------
    # lock-order graph
    # ------------------------------------------------------------------
    def transitive_acquisitions(
        self, class_summary: ClassSummary
    ) -> Dict[str, Dict[str, Tuple[str, int]]]:
        """Per method: every lock it (or a callee) acquires, with a witness.

        The witness is ``(method, line)`` of one syntactic acquisition site
        so the deadlock report can point somewhere real.
        """
        methods = class_summary.methods
        acquired: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for name, method in methods.items():
            acquired[name] = {
                lock: (name, line) for lock, _held, line in method.acquisitions
            }
        changed = True
        while changed:
            changed = False
            for name, method in methods.items():
                for callee, _locks, _line in method.self_calls:
                    if callee not in acquired:
                        continue
                    for lock, site in acquired[callee].items():
                        if lock not in acquired[name]:
                            acquired[name][lock] = site
                            changed = True
        return acquired

    def lock_order_cycles(self, class_summary: ClassSummary) -> List[LockCycle]:
        """Cycles in the class's lock-acquisition graph (potential deadlocks)."""
        entry = self.entry_locks(class_summary)
        transitive = self.transitive_acquisitions(class_summary)
        # edges: held -> acquired, with one (method, line) witness each
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        reentrant = {
            lock
            for lock, factory in class_summary.lock_attrs.items()
            if factory in ("RLock", "Condition")
        }
        for name, method in class_summary.methods.items():
            base = entry.get(name) or frozenset()
            for lock, held, line in method.acquisitions:
                for holding in frozenset(held) | base:
                    if holding == lock and lock in reentrant:
                        continue
                    edges.setdefault((holding, lock), (name, line))
            for callee, locks, line in method.self_calls:
                if callee not in transitive:
                    continue
                holding_set = frozenset(locks) | base
                for lock, site in transitive[callee].items():
                    for holding in holding_set:
                        if holding == lock and lock in reentrant:
                            continue
                        edges.setdefault((holding, lock), (name, line))

        graph: Dict[str, Set[str]] = {}
        for holding, lock in edges:
            graph.setdefault(holding, set()).add(lock)
            graph.setdefault(lock, set())

        cycles: List[LockCycle] = []
        seen_cycles: Set[FrozenSet[str]] = set()

        def dfs(start: str, current: str, path: List[str]) -> None:
            for successor in sorted(graph.get(current, ())):
                if successor == start:
                    if len(path) == 1:
                        continue  # self-loops are reported separately below
                    signature = frozenset(path)
                    if signature in seen_cycles:
                        continue
                    seen_cycles.add(signature)
                    ordered = tuple(path)
                    sites = []
                    for index, lock in enumerate(ordered):
                        follower = ordered[(index + 1) % len(ordered)]
                        method, line = edges[(lock, follower)]
                        sites.append((method, f"{lock} -> {follower}", line))
                    cycles.append(LockCycle(ordered, sites))
                elif successor not in path and successor > start:
                    # only walk nodes after `start` so each cycle is found
                    # once, from its smallest member
                    dfs(start, successor, path + [successor])

        for lock in sorted(graph):
            if (lock, lock) in edges:
                method, line = edges[(lock, lock)]
                cycles.append(LockCycle((lock,), [(method, f"{lock} -> {lock}", line)]))
            dfs(lock, lock, [lock])
        return cycles

    # ------------------------------------------------------------------
    # thread partition (escape analysis)
    # ------------------------------------------------------------------
    def thread_partition(
        self, class_summary: ClassSummary
    ) -> Optional[Tuple[Set[str], Set[str]]]:
        """``(thread-side methods, caller-side methods)`` or ``None``.

        Only classes that spawn ``Thread(target=self.m)`` have a partition.
        A method can appear on both sides (a helper shared by the spawned
        thread and the public surface) -- its accesses then count on both.
        """
        targets = [
            target for target in class_summary.thread_targets
            if target in class_summary.methods
        ]
        if not targets:
            return None
        thread_side = self._closure(class_summary, targets)
        public_roots = [
            name
            for name in class_summary.methods
            if name != "__init__" and is_public_method(name) and name not in targets
        ]
        caller_side = self._closure(class_summary, public_roots)
        return thread_side, caller_side

    def _closure(self, class_summary: ClassSummary, roots: Sequence[str]) -> Set[str]:
        reached: Set[str] = set()
        queue = list(roots)
        while queue:
            name = queue.pop()
            if name in reached or name not in class_summary.methods:
                continue
            reached.add(name)
            for callee, _locks, _line in class_summary.methods[name].self_calls:
                queue.append(callee)
        return reached

    # ------------------------------------------------------------------
    # worker closure (fork safety)
    # ------------------------------------------------------------------
    def worker_closure(
        self, file_summary: FileSummary, class_summary: ClassSummary
    ) -> List[Tuple[FileSummary, MethodSummary]]:
        """Functions/methods reachable inside spawned worker processes."""
        queue: List[NodeKey] = []
        for spelled in class_summary.process_targets:
            key = self.resolve(file_summary, class_summary, spelled)
            if key is not None:
                queue.append(key)
        reached: List[Tuple[FileSummary, MethodSummary]] = []
        seen: Set[NodeKey] = set()
        while queue:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            summary = self._nodes[key]
            node_file, node_class = self._node_class[key]
            reached.append((node_file, summary))
            for spelled, _line in summary.calls:
                callee = self.resolve(node_file, node_class, spelled)
                if callee is not None:
                    queue.append(callee)
        return reached
