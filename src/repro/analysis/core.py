"""The repro-lint framework: files, suppressions, the rule runner.

The moving parts, in the order the runner uses them:

* :class:`SourceFile` -- one parsed module: path, text, AST, and the
  per-line ``# repro-lint: ignore[rule-id]`` suppressions found in it.
* :class:`Project` -- every file of one run plus the cross-file indexes
  rules share (class definitions by name, classes defining ``__len__``,
  Optional-of-container attribute names).  Rules that need to see the
  whole tree at once (config/persistence drift) implement
  ``check_project`` instead of ``check_file``.
* :func:`run_analysis` -- parse, index, run every rule, apply
  suppressions, then report *unused* suppressions as findings of their
  own (rule id ``unused-suppression``), so a fixed finding's stale
  ignore comment fails the run until it is deleted.

Suppressions are line-scoped: the comment must sit on the exact line the
finding is reported at (for multi-line statements, the line of the
offending expression).  Several ids may share one comment::

    self.adaptive = ...  # repro-lint: ignore[snapshot-coverage]
    x = f(a, b)  # repro-lint: ignore[set-iteration,unseeded-random]
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "UNUSED_SUPPRESSION",
    "run_analysis",
]

#: Rule id under which stale ignore comments are reported.
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESSION_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")


class AnalysisError(Exception):
    """A file could not be analysed (unreadable, syntax error)."""


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (the machine-readable output unit)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def format(self) -> str:
        """Human one-liner: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.format()!r})"


class SourceFile:
    """One parsed Python module plus its suppression comments."""

    def __init__(self, path: Path, display_path: str, text: str):
        self.path = path
        #: Path as reported in findings (relative to the invocation root).
        self.display_path = display_path
        self.text = text
        try:
            self.tree = ast.parse(text)
        except SyntaxError as error:
            raise AnalysisError(f"{display_path}: cannot parse: {error}") from error
        #: ``{line number: {rule ids suppressed on that line}}``.
        #: Scanned from real COMMENT tokens, so the marker inside a string
        #: or docstring (e.g. documentation *about* suppressions) is inert.
        self.suppressions: Dict[int, Set[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_PATTERN.search(token.string)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                if ids:
                    self.suppressions[token.start[0]] = ids

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, ())

    def segment(self, node: ast.AST) -> str:
        """Source text of a node (best effort, for messages)."""
        segment = ast.get_source_segment(self.text, node)
        return segment if segment is not None else "<expression>"


class Project:
    """All files of one run plus the shared cross-file indexes."""

    def __init__(self, files: Sequence[SourceFile], root: Optional[Path] = None):
        self.files = list(files)
        #: Directory the analysed tree lives under (used to locate ``docs/``
        #: for the drift rule by walking upward); ``None`` disables checks
        #: that need the repository layout.
        self.root = root
        #: ``{class name: (file, ClassDef)}`` across every analysed file.
        self.classes: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
        for source in self.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes[node.name] = (source, node)
        #: Names of classes defining ``__len__`` -- objects for which an
        #: *empty* instance is falsy yet may be meaningful state.
        self.len_classes: Set[str] = {
            name
            for name, (_, node) in self.classes.items()
            if any(
                isinstance(item, ast.FunctionDef) and item.name == "__len__"
                for item in node.body
            )
        }
        self._optional_len_attrs: Optional[Set[str]] = None

    def class_chain(self, name: str) -> List[Tuple[SourceFile, ast.ClassDef]]:
        """Return ``name``'s ClassDef plus its project-resolvable bases (MRO-ish)."""
        chain: List[Tuple[SourceFile, ast.ClassDef]] = []
        seen: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            source, node = self.classes[current]
            chain.append((source, node))
            for base in node.bases:
                if isinstance(base, ast.Name):
                    queue.append(base.id)
                elif isinstance(base, ast.Attribute):
                    queue.append(base.attr)
        return chain

    @property
    def optional_len_attrs(self) -> Set[str]:
        """Attribute names known (project-wide) to hold ``Optional[<len class>]``.

        An attribute qualifies when an annotated assignment anywhere in the
        tree declares it ``Optional[C]`` / ``C | None`` / ``Union[C, None]``
        with ``C`` a class defining ``__len__``.  Truthiness tests on these
        attributes are exactly the PR 4 bug class: the empty-but-present
        value is falsy and silently takes the ``None`` branch.
        """
        if self._optional_len_attrs is None:
            names: Set[str] = set()
            for source in self.files:
                for node in ast.walk(source.tree):
                    if not isinstance(node, ast.AnnAssign):
                        continue
                    target = node.target
                    if not isinstance(target, ast.Attribute):
                        continue
                    inner = optional_inner_names(node.annotation)
                    if inner & self.len_classes:
                        names.add(target.attr)
            self._optional_len_attrs = names
        return self._optional_len_attrs


def optional_inner_names(annotation: ast.AST) -> Set[str]:
    """Class names ``C`` for which ``annotation`` spells Optional-of-``C``.

    Recognises ``Optional[C]``, ``Union[C, None]`` and ``C | None`` (any
    order, any quoting of the inner name).  Returns the empty set for
    non-Optional annotations.
    """
    names: Set[str] = set()
    has_none = False

    def leaf_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.split(".")[-1].strip()
        return None

    def collect(node: ast.AST) -> None:
        nonlocal has_none
        if isinstance(node, ast.Constant) and node.value is None:
            has_none = True
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            collect(node.left)
            collect(node.right)
            return
        if isinstance(node, ast.Subscript):
            head = leaf_name(node.value)
            if head == "Optional":
                has_none = True
                collect(node.slice)
                return
            if head == "Union":
                elements = (
                    node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
                )
                for element in elements:
                    collect(element)
                return
        name = leaf_name(node)
        if name is not None:
            names.add(name)

    collect(annotation)
    return names if has_none else set()


class Rule:
    """Base class: subclass and override ``check_file`` and/or ``check_project``."""

    id: str = ""
    description: str = ""

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


class AnalysisReport:
    """The outcome of one run: findings (suppressions applied) + run metadata."""

    def __init__(
        self,
        findings: List[Finding],
        files_analyzed: int,
        rules_run: Sequence[str],
        duration_seconds: float,
    ):
        self.findings = findings
        self.files_analyzed = files_analyzed
        self.rules_run = list(rules_run)
        self.duration_seconds = duration_seconds

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report (the ``--format json`` payload)."""
        return {
            "clean": self.clean,
            "files_analyzed": self.files_analyzed,
            "rules_run": self.rules_run,
            "duration_seconds": round(self.duration_seconds, 3),
            "finding_count": len(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def collect_files(paths: Sequence[str]) -> List[SourceFile]:
    """Expand ``paths`` (files or directories) into parsed :class:`SourceFile`\\ s."""
    sources: List[SourceFile] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            candidates = sorted(
                path for path in base.rglob("*.py") if "__pycache__" not in path.parts
            )
        elif base.is_file():
            candidates = [base]
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
        for path in candidates:
            try:
                text = path.read_text()
            except OSError as error:
                raise AnalysisError(f"{path}: cannot read: {error}") from error
            sources.append(SourceFile(path, str(path), text))
    return sources


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run every rule over ``paths`` and return the suppression-filtered report.

    ``sources`` bypasses the filesystem (tests hand in synthetic
    :class:`SourceFile` objects); ``root`` overrides the repository-root
    guess used to locate ``docs/`` for the drift rule.
    """
    from .rules import ALL_RULES

    started = time.perf_counter()
    if rules is None:
        rules = [rule_class() for rule_class in ALL_RULES]
    if sources is None:
        sources = collect_files(paths)
    if root is None and paths:
        anchor = Path(paths[0]).resolve()
        for candidate in [anchor] + list(anchor.parents):
            if (candidate / "docs").is_dir() or (candidate / ".git").is_dir():
                root = candidate
                break
    project = Project(sources, root=root)

    raw: List[Finding] = []
    for rule in rules:
        for source in project.files:
            raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    by_path = {source.display_path: source for source in project.files}
    used: Set[Tuple[str, int, str]] = set()
    findings: List[Finding] = []
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding.rule, finding.line):
            used.add((finding.path, finding.line, finding.rule))
            continue
        findings.append(finding)

    known_ids = {rule.id for rule in rules}
    for source in project.files:
        for line, ids in sorted(source.suppressions.items()):
            for rule_id in sorted(ids):
                if rule_id not in known_ids:
                    findings.append(
                        Finding(
                            UNUSED_SUPPRESSION,
                            source.display_path,
                            line,
                            f"suppression names unknown rule {rule_id!r}",
                        )
                    )
                elif (source.display_path, line, rule_id) not in used:
                    findings.append(
                        Finding(
                            UNUSED_SUPPRESSION,
                            source.display_path,
                            line,
                            f"suppression for {rule_id!r} matches no finding; delete it",
                        )
                    )

    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return AnalysisReport(
        findings=findings,
        files_analyzed=len(project.files),
        rules_run=[rule.id for rule in rules],
        duration_seconds=time.perf_counter() - started,
    )
