"""The repro-lint framework: files, suppressions, the incremental rule runner.

The moving parts, in the order the runner uses them:

* :class:`SourceFile` -- one parsed module: path, text, AST, and the
  per-line ``# repro-lint: ignore[rule-id]`` suppressions found in it.
* :class:`~repro.analysis.model.FileSummary` -- the parsed file reduced
  to the JSON-serializable facts the whole-program rules need (built by
  :func:`~repro.analysis.model.build_file_summary`, cached on disk by
  :mod:`repro.analysis.cache` keyed by content hash).
* :class:`Project` -- one run's view: the files that were actually
  parsed this run, the repository root, and the
  :class:`~repro.analysis.model.ProjectModel` covering *every* file
  (parsed or replayed from cache).  Per-file rules implement
  ``check_file`` and must be pure functions of the file text (that is
  what makes their findings cacheable); whole-program rules implement
  ``check_project`` and read the model.
* :func:`run_analysis` -- hash every file, parse only cache misses, run
  per-file rules on what was parsed and replay cached findings for the
  rest, always rebuild the model indexes (cheap -- no parsing), run the
  whole-program rules (or, under ``changed_only``, replay their cached
  findings when the model key proves nothing they can see changed), then
  apply suppressions and report *unused* suppressions as findings of
  their own (rule id ``unused-suppression``), so a fixed finding's stale
  ignore comment fails the run until it is deleted.

Suppressions are line-scoped: the comment must sit on the exact line the
finding is reported at (for multi-line statements, the line of the
offending expression).  Several ids may share one comment::

    self.adaptive = ...  # repro-lint: ignore[snapshot-coverage]
    x = f(a, b)  # repro-lint: ignore[set-iteration,unseeded-random]
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cache import AnalysisCache, model_key, text_hash
from .model import (
    FileSummary,
    ProjectModel,
    build_file_summary,
    optional_inner_names,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "UNUSED_SUPPRESSION",
    "collect_files",
    "detect_root",
    "optional_inner_names",
    "run_analysis",
]

#: Rule id under which stale ignore comments are reported.
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESSION_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")


class AnalysisError(Exception):
    """A file could not be analysed (unreadable, syntax error)."""


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (the machine-readable output unit)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            str(payload["rule"]),
            str(payload["path"]),
            int(payload["line"]),  # type: ignore[call-overload]
            str(payload["message"]),
        )

    def format(self) -> str:
        """Human one-liner: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.format()!r})"


class SourceFile:
    """One parsed Python module plus its suppression comments."""

    def __init__(self, path: Path, display_path: str, text: str):
        self.path = path
        #: Path as reported in findings (relative to the invocation root).
        self.display_path = display_path
        self.text = text
        try:
            self.tree = ast.parse(text)
        except SyntaxError as error:
            raise AnalysisError(f"{display_path}: cannot parse: {error}") from error
        #: ``{line number: {rule ids suppressed on that line}}``.
        #: Scanned from real COMMENT tokens, so the marker inside a string
        #: or docstring (e.g. documentation *about* suppressions) is inert.
        self.suppressions: Dict[int, Set[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_PATTERN.search(token.string)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                if ids:
                    self.suppressions[token.start[0]] = ids

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, set())

    def segment(self, node: ast.AST) -> str:
        """Source text of a node (best effort, for messages)."""
        segment = ast.get_source_segment(self.text, node)
        return segment if segment is not None else "<expression>"


class Project:
    """One run's view: parsed files, repository root, the whole-tree model.

    ``files`` holds only the files *parsed this run* -- under a warm
    cache that may be a strict subset of the analysed tree (or empty).
    Whole-program rules must therefore read :attr:`model`, never iterate
    ``files``; per-file rules receive each parsed file explicitly.
    """

    def __init__(
        self,
        files: Sequence[SourceFile],
        root: Optional[Path] = None,
        model: Optional[ProjectModel] = None,
    ):
        self.files = list(files)
        #: Directory the analysed tree lives under (used to locate ``docs/``
        #: for the drift rule by walking upward); ``None`` disables checks
        #: that need the repository layout.
        self.root = root
        #: Summaries for *every* analysed file, parsed or cache-replayed.
        self.model = model if model is not None else ProjectModel(
            [build_file_summary(source) for source in self.files]
        )

    @property
    def len_classes(self) -> Set[str]:
        """Classes defining ``__len__`` -- empty instances are falsy."""
        return self.model.len_classes

    @property
    def optional_len_attrs(self) -> Set[str]:
        """Attribute names known (project-wide) to hold ``Optional[<len class>]``.

        An attribute qualifies when an annotated assignment anywhere in the
        tree declares it ``Optional[C]`` / ``C | None`` / ``Union[C, None]``
        with ``C`` a class defining ``__len__``.  Truthiness tests on these
        attributes are exactly the PR 4 bug class: the empty-but-present
        value is falsy and silently takes the ``None`` branch.
        """
        return self.model.optional_len_attrs


class Rule:
    """Base class: subclass and override ``check_file`` and/or ``check_project``.

    ``check_file`` implementations must be pure functions of the file's
    text: their findings are cached by content hash and replayed without
    re-running them.  Anything that reads cross-file state belongs in
    ``check_project``, which runs (or is cache-replayed as a whole) every
    run.
    """

    id: str = ""
    description: str = ""

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


class AnalysisReport:
    """The outcome of one run: findings (suppressions applied) + run metadata."""

    def __init__(
        self,
        findings: List[Finding],
        files_analyzed: int,
        rules_run: Sequence[str],
        duration_seconds: float,
        files_parsed: Optional[int] = None,
        cache_hits: Optional[int] = None,
    ):
        self.findings = findings
        self.files_analyzed = files_analyzed
        self.rules_run = list(rules_run)
        self.duration_seconds = duration_seconds
        #: Files actually parsed this run (< files_analyzed under a warm
        #: cache); ``None`` when no cache was in play.
        self.files_parsed = files_analyzed if files_parsed is None else files_parsed
        self.cache_hits = cache_hits

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report (the ``--format json`` payload)."""
        payload: Dict[str, object] = {
            "clean": self.clean,
            "files_analyzed": self.files_analyzed,
            "files_parsed": self.files_parsed,
            "rules_run": self.rules_run,
            "duration_seconds": round(self.duration_seconds, 3),
            "finding_count": len(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        if self.cache_hits is not None:
            payload["cache_hits"] = self.cache_hits
        return payload


def detect_root(paths: Sequence[str]) -> Optional[Path]:
    """Best-effort repository root: walk up from the first path to ``docs/``/``.git``."""
    if not paths:
        return None
    anchor = Path(paths[0]).resolve()
    for candidate in [anchor] + list(anchor.parents):
        if (candidate / "docs").is_dir() or (candidate / ".git").is_dir():
            return candidate
    return None


def _expand_paths(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    expanded: List[Path] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            expanded.extend(
                sorted(
                    path for path in base.rglob("*.py") if "__pycache__" not in path.parts
                )
            )
        elif base.is_file():
            expanded.append(base)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return expanded


def _read_text(path: Path) -> str:
    try:
        return path.read_text()
    except OSError as error:
        raise AnalysisError(f"{path}: cannot read: {error}") from error


def collect_files(paths: Sequence[str]) -> List[SourceFile]:
    """Expand ``paths`` (files or directories) into parsed :class:`SourceFile`\\ s."""
    return [
        SourceFile(path, str(path), _read_text(path)) for path in _expand_paths(paths)
    ]


class _FileState:
    """One analysed file's state for this run: parsed or replayed."""

    __slots__ = ("display_path", "sha", "source", "summary", "findings", "suppressions")

    def __init__(
        self,
        display_path: str,
        sha: str,
        source: Optional[SourceFile],
        summary: FileSummary,
        findings: List[Finding],
        suppressions: Dict[int, Set[str]],
    ):
        self.display_path = display_path
        self.sha = sha
        #: ``None`` for cache hits -- the file was never parsed this run.
        self.source = source
        self.summary = summary
        #: Raw (pre-suppression) per-file findings.
        self.findings = findings
        self.suppressions = suppressions


def _replay_entry(
    display_path: str, sha: str, entry: Dict[str, object]
) -> Optional[_FileState]:
    """Rebuild a :class:`_FileState` from a cache entry; ``None`` if bogus."""
    try:
        summary = FileSummary.from_dict(entry["summary"])  # type: ignore[arg-type]
        findings = [
            Finding.from_dict(item)  # type: ignore[arg-type]
            for item in entry["findings"]  # type: ignore[union-attr,index]
        ]
        suppressions = {
            int(line): set(ids)
            for line, ids in entry["suppressions"].items()  # type: ignore[union-attr,index]
        }
    except (KeyError, TypeError, ValueError, AttributeError, IndexError):
        return None
    if summary.display_path != display_path:
        return None  # an entry copied across paths would mislabel findings
    return _FileState(display_path, sha, None, summary, findings, suppressions)


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    root: Optional[Path] = None,
    cache_path: Optional[Path] = None,
    changed_only: bool = False,
) -> AnalysisReport:
    """Run every rule over ``paths`` and return the suppression-filtered report.

    ``sources`` bypasses the filesystem (tests hand in synthetic
    :class:`SourceFile` objects) and disables the cache; ``root``
    overrides the repository-root guess used to locate ``docs/`` for the
    drift rule.  ``cache_path`` enables the on-disk cache (the library
    default is *no* cache -- the CLI opts in); ``changed_only``
    additionally replays the cached whole-program findings when the model
    key proves no input of the whole-program rules changed.
    """
    from .rules import ALL_RULES

    started = time.perf_counter()
    if rules is None:
        rules = [rule_class() for rule_class in ALL_RULES]
    rule_ids = [rule.id for rule in rules]

    cache: Optional[AnalysisCache] = None
    if cache_path is not None and sources is None:
        cache = AnalysisCache(cache_path, rule_ids)

    if root is None:
        root = detect_root(paths)

    # ------------------------------------------------------------------
    # assemble per-file state: parse misses, replay hits
    # ------------------------------------------------------------------
    states: List[_FileState] = []
    if sources is not None:
        for source in sources:
            states.append(
                _FileState(
                    source.display_path,
                    text_hash(source.text),
                    source,
                    build_file_summary(source),
                    [],
                    dict(source.suppressions),
                )
            )
    else:
        for path in _expand_paths(paths):
            display_path = str(path)
            text = _read_text(path)
            sha = text_hash(text)
            state: Optional[_FileState] = None
            if cache is not None:
                entry = cache.lookup_file(display_path, sha)
                if entry is not None:
                    state = _replay_entry(display_path, sha, entry)
            if state is not None:
                states.append(state)
            else:
                source = SourceFile(path, display_path, text)
                states.append(
                    _FileState(
                        display_path,
                        sha,
                        source,
                        build_file_summary(source),
                        [],
                        dict(source.suppressions),
                    )
                )

    parsed = [state.source for state in states if state.source is not None]
    cache_hits = len(states) - len(parsed)
    model = ProjectModel([state.summary for state in states])
    project = Project(parsed, root=root, model=model)

    # ------------------------------------------------------------------
    # per-file rules on what was parsed; cached findings cover the rest
    # ------------------------------------------------------------------
    by_display = {state.display_path: state for state in states}
    for rule in rules:
        for source in parsed:
            by_display[source.display_path].findings.extend(
                rule.check_file(source, project)
            )

    # ------------------------------------------------------------------
    # whole-program rules: replay under --changed-only, else run
    # ------------------------------------------------------------------
    extra_inputs: List[str] = []
    if root is not None:
        operations = root / "docs" / "operations.md"
        if operations.is_file():
            extra_inputs.append(text_hash(operations.read_text()))
    project_key = model_key(
        [(state.display_path, state.sha) for state in states], rule_ids, extra_inputs
    )
    project_findings: Optional[List[Finding]] = None
    if changed_only and cache is not None:
        cached = cache.lookup_project(project_key)
        if cached is not None:
            try:
                project_findings = [Finding.from_dict(item) for item in cached]
            except (KeyError, TypeError, ValueError):
                project_findings = None
    if project_findings is None:
        project_findings = []
        for rule in rules:
            project_findings.extend(rule.check_project(project))

    # ------------------------------------------------------------------
    # persist the cache (parsed entries + project findings)
    # ------------------------------------------------------------------
    if cache is not None:
        for state in states:
            if state.source is None:
                continue  # the hit entry is already stored
            cache.store_file(
                state.display_path,
                state.sha,
                state.summary.to_dict(),
                [finding.to_dict() for finding in state.findings],
                {str(line): sorted(ids) for line, ids in state.suppressions.items()},
            )
        cache.store_project(
            project_key, [finding.to_dict() for finding in project_findings]
        )
        cache.prune([state.display_path for state in states])
        cache.save()

    # ------------------------------------------------------------------
    # suppressions, stale-suppression findings, the report
    # ------------------------------------------------------------------
    raw: List[Finding] = []
    for state in states:
        raw.extend(state.findings)
    raw.extend(project_findings)

    used: Set[Tuple[str, int, str]] = set()
    findings: List[Finding] = []
    for finding in raw:
        state_for = by_display.get(finding.path)
        if state_for is not None and finding.rule in state_for.suppressions.get(
            finding.line, set()
        ):
            used.add((finding.path, finding.line, finding.rule))
            continue
        findings.append(finding)

    known_ids = set(rule_ids)
    for state in states:
        for line, ids in sorted(state.suppressions.items()):
            for rule_id in sorted(ids):
                if rule_id not in known_ids:
                    findings.append(
                        Finding(
                            UNUSED_SUPPRESSION,
                            state.display_path,
                            line,
                            f"suppression names unknown rule {rule_id!r}",
                        )
                    )
                elif (state.display_path, line, rule_id) not in used:
                    findings.append(
                        Finding(
                            UNUSED_SUPPRESSION,
                            state.display_path,
                            line,
                            f"suppression for {rule_id!r} matches no finding; delete it",
                        )
                    )

    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return AnalysisReport(
        findings=findings,
        files_analyzed=len(states),
        rules_run=rule_ids,
        duration_seconds=time.perf_counter() - started,
        files_parsed=len(parsed),
        cache_hits=cache_hits if cache is not None else None,
    )
