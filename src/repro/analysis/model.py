"""The project model: per-file interprocedural summaries, JSON-cacheable.

PR 6's repro-lint rules are per-file and syntactic; the rule classes this
package grew next (fork-safety, lock-order, exception-atomicity) need the
*whole program*: who calls whom, which locks are held where, which
attributes a class persists.  Re-deriving that from every AST on every run
would blow the tier-1 runtime budget, so the model follows the same
incremental-maintenance discipline as the engine it checks (small
per-update work, never a full recompute): each file reduces to a
:class:`FileSummary` that is a **pure function of the file's text**, and
:mod:`repro.analysis.cache` stores summaries on disk keyed by content
hash.  A whole-program run then parses only the files whose hash changed
and rebuilds the cheap derived indexes (:class:`ProjectModel`,
:class:`~repro.analysis.callgraph.CallGraph`) from the summaries.

What a summary records, per method (:class:`MethodSummary`):

* every ``self.<attr>`` access -- read / write / delete -- with the set of
  the class's locks syntactically held at the access;
* every ``self.<method>()`` call with the locks held at the call site
  (the call-graph layer propagates lock contexts through these edges);
* every lock *acquisition* (``with self.<lock>:``) with the locks already
  held -- the edges of the lock-order graph;
* an ordered event stream (attribute writes, calls, ``raise``) in
  evaluation order, each tagged with whether a ``try``/``except`` guards
  it -- what the exception-atomicity rule replays;
* worker-boundary facts: ``Thread(target=self.x)`` / ``Process(target=…,
  args=…)`` spawn sites with the ``self`` attributes shipped to the
  child, payload hygiene issues on ``conn.send`` / ``ShardBatch`` /
  ``Process`` argument expressions, and module-``global`` writes.

Scope limits, shared with the syntactic rules and documented here once:
lambda bodies and nested functions are **not** traversed (they execute
later, in a context static analysis cannot see), and attribute tracking
is rooted at the method's ``self`` name only.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core<->model cycle)
    from .core import SourceFile

__all__ = [
    "ClassSummary",
    "FileSummary",
    "FunctionSummary",
    "MethodSummary",
    "ProjectModel",
    "build_file_summary",
    "captured_keys",
    "covers_key",
    "init_attributes",
    "module_name_of",
    "optional_inner_names",
    "paths_compatible",
    "restored_keys",
]

#: Constructors recognised as lock factories in ``__init__``.
LOCK_FACTORIES = ("Lock", "RLock", "Condition")

#: Loader method names the snapshot rules accept (kept in one place).
LOADER_NAMES = ("from_state", "load_state", "_load_base_state")


# ----------------------------------------------------------------------
# annotation / key helpers (shared with the per-file snapshot rules)
# ----------------------------------------------------------------------
def optional_inner_names(annotation: ast.AST) -> Set[str]:
    """Class names ``C`` for which ``annotation`` spells Optional-of-``C``.

    Recognises ``Optional[C]``, ``Union[C, None]`` and ``C | None`` (any
    order, any quoting of the inner name).  Returns the empty set for
    non-Optional annotations.
    """
    names: Set[str] = set()
    has_none = False

    def leaf_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.split(".")[-1].strip()
        return None

    def collect(node: ast.AST) -> None:
        nonlocal has_none
        if isinstance(node, ast.Constant) and node.value is None:
            has_none = True
            return
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            collect(node.left)
            collect(node.right)
            return
        if isinstance(node, ast.Subscript):
            head = leaf_name(node.value)
            if head == "Optional":
                has_none = True
                collect(node.slice)
                return
            if head == "Union":
                elements = (
                    node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
                )
                for element in elements:
                    collect(element)
                return
        name = leaf_name(node)
        if name is not None:
            names.add(name)

    collect(annotation)
    return names if has_none else set()


def captured_keys(method: ast.FunctionDef) -> Set[str]:
    """String keys a ``state_dict``-style method writes into its payload.

    Collected from dict literals, ``payload["key"] = ...`` subscript
    stores, ``dict(key=...)`` keyword constructors and ``.update({...})``
    literals anywhere in the method.
    """
    keys: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "dict":
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        keys.add(keyword.arg)
    return keys


def restored_keys(method: ast.FunctionDef) -> Set[str]:
    """Every string constant in a loader method.

    Loaders are small codecs; any string they mention is (in this
    codebase, by construction) a payload key.  Casting the net this wide
    only ever *weakens* the restore check, never produces a false
    positive.
    """
    keys: Set[str] = set()
    body = method.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # the docstring is prose, not keys
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                keys.add(node.value)
    return keys


def init_attributes(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """``(attribute name, line)`` for every *stateful* ``self.x`` in ``__init__``.

    Assignments whose right-hand side references a constructor parameter
    are construction input, not snapshot state: the rebuild-then-load
    pattern re-supplies them through ``__init__`` before the loader runs,
    so they are excluded here.
    """
    init: Optional[ast.FunctionDef] = None
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            init = item
            break
    if init is None:
        return []
    args = init.args
    self_name = args.args[0].arg if args.args else "self"
    params = {
        arg.arg
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if arg.arg != self_name
    }
    seen: Set[str] = set()
    attrs: List[Tuple[str, int]] = []
    for stmt in ast.walk(init):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets, value = [stmt.target], getattr(stmt, "value", None)
        from_params = value is not None and any(
            isinstance(inner, ast.Name) and inner.id in params
            for inner in ast.walk(value)
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
                and target.attr not in seen
            ):
                seen.add(target.attr)
                if not from_params:
                    attrs.append((target.attr, target.lineno))
    return attrs


def paths_compatible(
    first: Sequence[Tuple[int, str]], second: Sequence[Tuple[int, str]]
) -> bool:
    """Can two events (by their ``if``-branch trails) occur in one pass?

    Trails diverge fatally only when, at the first differing position,
    both name the **same** ``if`` statement but different arms -- then the
    events are mutually exclusive.  Different ``if`` statements at the
    same depth are sequential (both arms can run in one pass), and a
    shared prefix with one trail extending deeper is plain nesting.
    """
    for left, right in zip(first, second):
        if left == right:
            continue
        return left[0] != right[0]
    return True


def covers_key(attr: str, keys: Sequence[str]) -> bool:
    """True when some payload key plausibly persists attribute ``attr``.

    Key matching strips the attribute's leading underscores and accepts an
    underscore-boundary prefix either way, so ``self._pending`` is covered
    by ``"pending"`` and ``self._rng`` by ``"rng_state"``.
    """
    name = attr.lstrip("_")
    return any(
        key == name or key.startswith(name + "_") or name.startswith(key + "_")
        for key in keys
    )


def module_name_of(path_parts: Sequence[str]) -> str:
    """Dotted module name of a file path, rooted at the ``repro`` package.

    Fixture trees mirror the package layout (``repro/streaming/x.py``), so
    anchoring at the last ``repro`` path component names both the real
    tree and the fixtures consistently; paths outside any ``repro`` tree
    fall back to their stem.
    """
    parts = list(path_parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro") :]
    if not parts:
        return "<unknown>"
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["<unknown>"]
    return ".".join(parts)


# ----------------------------------------------------------------------
# summary containers (plain dicts in, plain dicts out -- JSON-cacheable)
# ----------------------------------------------------------------------
class MethodSummary:
    """Everything the interprocedural rules need to know about one method."""

    __slots__ = (
        "name",
        "accesses",
        "self_calls",
        "calls",
        "acquisitions",
        "raises_directly",
        "events",
        "payload_issues",
        "global_writes",
        "emitted_keys",
        "line",
    )

    def __init__(self, name: str, line: int = 0):
        self.name = name
        self.line = line
        #: ``(attr, "read"|"write"|"del", sorted locks held, line)``.
        self.accesses: List[Tuple[str, str, Tuple[str, ...], int]] = []
        #: ``(method name, sorted locks held, line)`` for ``self.m()`` calls.
        self.self_calls: List[Tuple[str, Tuple[str, ...], int]] = []
        #: ``(spelled callee, line)`` for every other call -- ``"name"``,
        #: ``"self.m"`` (duplicated from self_calls for event replay) or
        #: ``"?.m"`` when the receiver is not resolvable statically.
        self.calls: List[Tuple[str, int]] = []
        #: ``(lock acquired, sorted locks already held, line)``.
        self.acquisitions: List[Tuple[str, Tuple[str, ...], int]] = []
        #: ``raise`` reachable in this body outside a try/except guard.
        self.raises_directly = False
        #: Ordered ``(kind, payload, line, in_try, path)`` events in
        #: evaluation order; kinds: ``write`` (payload = attr), ``call``
        #: (payload = spelled callee), ``raise`` (payload = "").  ``path``
        #: is the enclosing ``if``-branch trail as ``((lineno, arm), ...)``
        #: with arm ``"t"``/``"e"`` -- two events whose paths diverge at
        #: the same ``if`` into different arms are mutually exclusive and
        #: never execute in one pass through the method.
        self.events: List[Tuple[str, str, int, bool, Tuple[Tuple[int, str], ...]]] = []
        #: ``(boundary, description, line)`` payload hygiene issues at
        #: worker boundaries; boundary in {"send", "ShardBatch", "Process"}.
        self.payload_issues: List[Tuple[str, str, int]] = []
        #: ``(name, line)`` writes to module globals (``global x; x = ...``).
        self.global_writes: List[Tuple[str, int]] = []
        #: ``(key, line)`` dict keys emitted by metrics()/stats() methods.
        self.emitted_keys: List[Tuple[str, int]] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "accesses": [list(item) for item in self.accesses],
            "self_calls": [list(item) for item in self.self_calls],
            "calls": [list(item) for item in self.calls],
            "acquisitions": [list(item) for item in self.acquisitions],
            "raises_directly": self.raises_directly,
            "events": [list(item) for item in self.events],
            "payload_issues": [list(item) for item in self.payload_issues],
            "global_writes": [list(item) for item in self.global_writes],
            "emitted_keys": [list(item) for item in self.emitted_keys],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MethodSummary":
        summary = cls(payload["name"], payload.get("line", 0))
        summary.accesses = [
            (attr, kind, tuple(locks), line)
            for attr, kind, locks, line in payload["accesses"]
        ]
        summary.self_calls = [
            (name, tuple(locks), line) for name, locks, line in payload["self_calls"]
        ]
        summary.calls = [(name, line) for name, line in payload["calls"]]
        summary.acquisitions = [
            (lock, tuple(held), line) for lock, held, line in payload["acquisitions"]
        ]
        summary.raises_directly = bool(payload["raises_directly"])
        summary.events = [
            (kind, value, line, bool(in_try), tuple((int(at), arm) for at, arm in path))
            for kind, value, line, in_try, path in payload["events"]
        ]
        summary.payload_issues = [
            (target, desc, line) for target, desc, line in payload["payload_issues"]
        ]
        summary.global_writes = [(name, line) for name, line in payload["global_writes"]]
        summary.emitted_keys = [(key, line) for key, line in payload["emitted_keys"]]
        return summary


class FunctionSummary(MethodSummary):
    """A module-level function: a method summary without a ``self``."""


class ClassSummary:
    """Class-level facts: locks, persistence surface, worker boundaries."""

    __slots__ = (
        "name",
        "line",
        "bases",
        "defines_len",
        "lock_attrs",
        "has_state_dict",
        "has_loader",
        "captured_keys",
        "restored_keys",
        "init_params",
        "init_line",
        "init_attrs",
        "thread_targets",
        "process_targets",
        "ship_roots",
        "ship_root_writes",
        "methods",
    )

    def __init__(self, name: str, line: int = 0):
        self.name = name
        self.line = line
        self.bases: List[str] = []
        self.defines_len = False
        #: ``{lock attribute: factory name}`` (Lock / RLock / Condition).
        self.lock_attrs: Dict[str, str] = {}
        self.has_state_dict = False
        self.has_loader = False
        self.captured_keys: List[str] = []
        self.restored_keys: List[str] = []
        #: ``__init__`` parameter names (config-drift compares these).
        self.init_params: List[str] = []
        self.init_line = 0
        #: Stateful ``(attr, line)`` pairs from ``__init__`` (snapshot rule).
        self.init_attrs: List[Tuple[str, int]] = []
        #: Method names passed as ``Thread(target=self.<m>)``.
        self.thread_targets: List[str] = []
        #: Spelled targets of ``Process(target=...)`` spawn sites.
        self.process_targets: List[str] = []
        #: ``self`` attributes shipped into worker processes via Process args.
        self.ship_roots: List[str] = []
        #: ``(attr, method, line)`` post-spawn-capable writes to ship roots.
        self.ship_root_writes: List[Tuple[str, str, int]] = []
        self.methods: Dict[str, MethodSummary] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "defines_len": self.defines_len,
            "lock_attrs": dict(self.lock_attrs),
            "has_state_dict": self.has_state_dict,
            "has_loader": self.has_loader,
            "captured_keys": list(self.captured_keys),
            "restored_keys": list(self.restored_keys),
            "init_params": list(self.init_params),
            "init_line": self.init_line,
            "init_attrs": [list(item) for item in self.init_attrs],
            "thread_targets": list(self.thread_targets),
            "process_targets": list(self.process_targets),
            "ship_roots": list(self.ship_roots),
            "ship_root_writes": [list(item) for item in self.ship_root_writes],
            "methods": {name: method.to_dict() for name, method in self.methods.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClassSummary":
        summary = cls(payload["name"], payload.get("line", 0))
        summary.bases = list(payload["bases"])
        summary.defines_len = bool(payload["defines_len"])
        summary.lock_attrs = dict(payload["lock_attrs"])
        summary.has_state_dict = bool(payload["has_state_dict"])
        summary.has_loader = bool(payload["has_loader"])
        summary.captured_keys = list(payload["captured_keys"])
        summary.restored_keys = list(payload["restored_keys"])
        summary.init_params = list(payload["init_params"])
        summary.init_line = int(payload["init_line"])
        summary.init_attrs = [(attr, line) for attr, line in payload["init_attrs"]]
        summary.thread_targets = list(payload["thread_targets"])
        summary.process_targets = list(payload["process_targets"])
        summary.ship_roots = list(payload["ship_roots"])
        summary.ship_root_writes = [
            (attr, method, line) for attr, method, line in payload["ship_root_writes"]
        ]
        summary.methods = {
            name: MethodSummary.from_dict(method)
            for name, method in payload["methods"].items()
        }
        return summary


class FileSummary:
    """One file's contribution to the project model."""

    __slots__ = (
        "display_path",
        "module",
        "imports",
        "constants",
        "classes",
        "functions",
        "optional_attrs",
        "truthiness_sites",
    )

    def __init__(self, display_path: str, module: str):
        self.display_path = display_path
        self.module = module
        #: ``{local name: (module, original name)}`` for project imports.
        self.imports: Dict[str, Tuple[str, str]] = {}
        #: ``{name: (string elements, line)}`` for module-level tuple/list
        #: string constants (``_CONFIG_FIELDS`` and friends).
        self.constants: Dict[str, Tuple[List[str], int]] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        #: ``(attr, [Optional inner class names])`` from every annotated
        #: attribute assignment in the file (feeds ``optional_len_attrs``).
        self.optional_attrs: List[Tuple[str, List[str]]] = []
        #: Truthiness-test sites for the optional-truthiness rule:
        #: ``(kind, name, [param annotation inner names], spelled, line)``
        #: with kind ``attr`` (attribute operand, inner names empty) or
        #: ``param`` (bare parameter operand).
        self.truthiness_sites: List[Tuple[str, str, List[str], str, int]] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "display_path": self.display_path,
            "module": self.module,
            "imports": {name: list(target) for name, target in self.imports.items()},
            "constants": {
                name: [list(values), line]
                for name, (values, line) in self.constants.items()
            },
            "classes": {name: cls.to_dict() for name, cls in self.classes.items()},
            "functions": {name: fn.to_dict() for name, fn in self.functions.items()},
            "optional_attrs": [[attr, list(inner)] for attr, inner in self.optional_attrs],
            "truthiness_sites": [
                [kind, name, list(inner), spelled, line]
                for kind, name, inner, spelled, line in self.truthiness_sites
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FileSummary":
        summary = cls(payload["display_path"], payload["module"])
        summary.imports = {
            name: (target[0], target[1]) for name, target in payload["imports"].items()
        }
        summary.constants = {
            name: (list(values), line)
            for name, (values, line) in payload["constants"].items()
        }
        summary.classes = {
            name: ClassSummary.from_dict(item)
            for name, item in payload["classes"].items()
        }
        summary.functions = {
            name: FunctionSummary.from_dict(item)  # type: ignore[arg-type]
            for name, item in payload["functions"].items()
        }
        summary.optional_attrs = [
            (attr, list(inner)) for attr, inner in payload["optional_attrs"]
        ]
        summary.truthiness_sites = [
            (kind, name, list(inner), spelled, line)
            for kind, name, inner, spelled, line in payload["truthiness_sites"]
        ]
        return summary


# ----------------------------------------------------------------------
# the summary builder
# ----------------------------------------------------------------------
def _call_leaf(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _spell_call(func: ast.AST, self_name: Optional[str]) -> str:
    """Spell a call target for later resolution.

    ``self.m`` for methods, a bare name for local/imported functions,
    ``mod.f`` for one-level qualified calls (the call-graph layer checks
    whether ``mod`` is a project import) and ``?.f`` when the receiver is
    an arbitrary expression no static resolution will name.
    """
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            if self_name is not None and func.value.id == self_name:
                return f"self.{func.attr}"
            return f"{func.value.id}.{func.attr}"
        return f"?.{func.attr}"
    return "?"


def _self_attr(node: ast.AST, self_name: Optional[str]) -> Optional[str]:
    if (
        self_name is not None
        and isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _is_setish(node: ast.AST, set_names: Set[str]) -> Optional[str]:
    """Describe ``node`` if it is an order-unstable or unpicklable payload."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set expression (iteration order varies across processes)"
    if isinstance(node, ast.Call):
        name = _call_leaf(node.func)
        if name in ("set", "frozenset"):
            return "a set() value (iteration order varies across processes)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression (not picklable)"
    if isinstance(node, ast.Lambda):
        return "a lambda (not picklable)"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"`{node.id}`, assigned a set in this scope (order-unstable)"
    return None


def _local_set_names(func: ast.AST) -> Set[str]:
    """Names assigned a set expression (and never anything else) in ``func``."""
    set_names: Set[str] = set()
    other_names: Set[str] = set()
    for node in _scope_walk(func):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None
        for target in targets:
            if isinstance(target, ast.Name):
                is_set = value is not None and (
                    isinstance(value, (ast.Set, ast.SetComp))
                    or (
                        isinstance(value, ast.Call)
                        and _call_leaf(value.func) in ("set", "frozenset")
                    )
                )
                (set_names if is_set else other_names).add(target.id)
    return set_names - other_names


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function scope without descending into nested scopes."""
    queue: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _self_roots(expr: ast.AST, self_name: Optional[str], local_roots: Dict[str, Set[str]]) -> Set[str]:
    """``self`` attributes an expression's value is derived from.

    Follows one level of local-variable indirection (``owned = {...
    self.shards[i] ...}; Process(args=(conn, owned))``) via
    ``local_roots``, the per-method map of local name -> self-attr roots.
    """
    roots: Set[str] = set()
    for node in ast.walk(expr):
        attr = _self_attr(node, self_name)
        if attr is not None:
            roots.add(attr)
        elif isinstance(node, ast.Name) and node.id in local_roots:
            roots.update(local_roots[node.id])
    return roots


class _FunctionScanner:
    """One pass over a function/method body, carrying (locks, try) context."""

    def __init__(
        self,
        summary: MethodSummary,
        self_name: Optional[str],
        lock_attrs: Set[str],
        class_context: Optional["_ClassContext"],
    ):
        self.summary = summary
        self.self_name = self_name
        self.lock_attrs = lock_attrs
        self.class_context = class_context
        self.global_names: Set[str] = set()
        self.set_names: Set[str] = set()
        #: local name -> self-attr roots its value was derived from
        self.local_roots: Dict[str, Set[str]] = {}

    # -- entry -----------------------------------------------------------
    def scan(self, func: ast.AST) -> None:
        self.set_names = _local_set_names(func)
        for stmt in func.body:
            self._visit(stmt, frozenset(), False, ())

    # -- the recursive walk ---------------------------------------------
    def _visit(
        self,
        node: ast.AST,
        locks: frozenset,
        in_try: bool,
        path: Tuple[Tuple[int, str], ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes execute later; out of the model's scope
        if isinstance(node, ast.Global):
            self.global_names.update(node.names)
            return
        if isinstance(node, ast.If):
            # branch arms are mutually exclusive: tag their events so the
            # atomicity scan never fabricates a cross-arm ordering
            self._visit(node.test, locks, in_try, path)
            for stmt in node.body:
                self._visit(stmt, locks, in_try, path + ((node.lineno, "t"),))
            for stmt in node.orelse:
                self._visit(stmt, locks, in_try, path + ((node.lineno, "e"),))
            return
        if isinstance(node, ast.With):
            acquired: List[str] = []
            for item in node.items:
                self._visit(item.context_expr, locks, in_try, path)
                lock = _self_attr(item.context_expr, self.self_name)
                if lock in self.lock_attrs:
                    self.summary.acquisitions.append(
                        (lock, tuple(sorted(locks | set(acquired))), item.context_expr.lineno)
                    )
                    acquired.append(lock)
            inner = locks | set(acquired) if acquired else locks
            for stmt in node.body:
                self._visit(stmt, inner, in_try, path)
            return
        if isinstance(node, ast.Try):
            guarded = in_try or bool(node.handlers)
            for stmt in node.body:
                self._visit(stmt, locks, guarded, path)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt, locks, in_try, path)
            for stmt in list(node.orelse) + list(node.finalbody):
                self._visit(stmt, locks, in_try, path)
            return
        if isinstance(node, ast.Raise):
            for child in ast.iter_child_nodes(node):
                self._visit(child, locks, in_try, path)
            if not in_try:
                self.summary.raises_directly = True
            self.summary.events.append(("raise", "", node.lineno, in_try, path))
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            # evaluation order: the RHS (and its calls) run before the store
            value = getattr(node, "value", None)
            if value is not None:
                self._visit(value, locks, in_try, path)
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._record_local_root(target, value)
                self._visit(target, locks, in_try, path)
            return
        if isinstance(node, ast.For):
            self._visit(node.iter, locks, in_try, path)
            self._record_local_root(node.target, node.iter)
            self._visit(node.target, locks, in_try, path)
            for stmt in list(node.body) + list(node.orelse):
                self._visit(stmt, locks, in_try, path)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, locks, in_try, path)
            for child in ast.iter_child_nodes(node):
                self._visit(child, locks, in_try, path)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node, self.self_name)
            if attr is not None and attr not in self.lock_attrs:
                kind = (
                    "write"
                    if isinstance(node.ctx, ast.Store)
                    else "del" if isinstance(node.ctx, ast.Del) else "read"
                )
                self.summary.accesses.append(
                    (attr, kind, tuple(sorted(locks)), node.lineno)
                )
                if kind in ("write", "del"):
                    self.summary.events.append(("write", attr, node.lineno, in_try, path))
            for child in ast.iter_child_nodes(node):
                self._visit(child, locks, in_try, path)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks, in_try, path)

    # -- pieces ----------------------------------------------------------
    def _record_local_root(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        """Track ``name = <expr over self.X>`` / ``for name in self.X`` aliases."""
        if value is None or not isinstance(target, ast.Name):
            return
        roots = _self_roots(value, self.self_name, self.local_roots)
        if roots:
            self.local_roots.setdefault(target.id, set()).update(roots)

    def _record_call(
        self,
        node: ast.Call,
        locks: frozenset,
        in_try: bool,
        path: Tuple[Tuple[int, str], ...],
    ) -> None:
        spelled = _spell_call(node.func, self.self_name)
        self.summary.calls.append((spelled, node.lineno))
        self.summary.events.append(("call", spelled, node.lineno, in_try, path))
        if spelled.startswith("self."):
            self.summary.self_calls.append(
                (spelled[5:], tuple(sorted(locks)), node.lineno)
            )
        leaf = _call_leaf(node.func)
        if leaf == "Thread" and self.class_context is not None:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = _self_attr(keyword.value, self.self_name)
                    if target is not None:
                        self.class_context.thread_targets.append(target)
        if leaf == "Process" and self.class_context is not None:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self.class_context.process_targets.append(
                        _spell_call(keyword.value, self.self_name)
                    )
                if keyword.arg == "args":
                    self.class_context.ship_roots.update(
                        _self_roots(keyword.value, self.self_name, self.local_roots)
                    )
                    self._scan_payload(keyword.value, "Process")
        if leaf == "send" and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            is_conn = (isinstance(receiver, ast.Name) and receiver.id == "conn") or (
                isinstance(receiver, ast.Attribute) and receiver.attr == "conn"
            )
            if is_conn:
                for arg in node.args:
                    self._scan_payload(arg, "send")
        if leaf == "ShardBatch":
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._scan_payload(arg, "ShardBatch")

    def _scan_payload(self, expr: ast.AST, boundary: str) -> None:
        # a comprehension fed straight into a materializer is consumed
        # before pickling -- ``sorted(x for ...)`` is an ordered list
        materialized = {
            id(call.args[0])
            for call in ast.walk(expr)
            if isinstance(call, ast.Call)
            and _call_leaf(call.func) in ("sorted", "list", "tuple")
            and call.args
        }
        for node in ast.walk(expr):
            if id(node) in materialized and isinstance(node, ast.GeneratorExp):
                continue
            issue = _is_setish(node, self.set_names)
            if issue is not None:
                self.summary.payload_issues.append(
                    (boundary, issue, getattr(node, "lineno", getattr(expr, "lineno", 0)))
                )


class _ClassContext:
    """Mutable scratch state shared by a class's method scans."""

    def __init__(self) -> None:
        self.thread_targets: List[str] = []
        self.process_targets: List[str] = []
        self.ship_roots: Set[str] = set()


def _scan_global_stores(func: ast.AST, declared: Set[str]) -> List[Tuple[str, int]]:
    """``(name, line)`` stores to names the function declared ``global``."""
    writes: List[Tuple[str, int]] = []
    if not declared:
        return writes
    for node in _scope_walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id in declared:
                writes.append((node.id, node.lineno))
    return writes


def _lock_attr_factories(class_node: ast.ClassDef) -> Dict[str, str]:
    """Lock attributes assigned ``threading.Lock()``-style in ``__init__``."""
    locks: Dict[str, str] = {}
    for item in class_node.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            name = _call_leaf(value.func)
            if name not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    locks[target.attr] = name
    return locks


def _scan_function(
    func: ast.AST,
    summary: MethodSummary,
    self_name: Optional[str],
    lock_attrs: Set[str],
    class_context: Optional[_ClassContext],
) -> None:
    scanner = _FunctionScanner(summary, self_name, lock_attrs, class_context)
    scanner.scan(func)
    summary.global_writes.extend(_scan_global_stores(func, scanner.global_names))
    if summary.name in ("metrics", "stats"):
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        summary.emitted_keys.append((key.value, key.lineno))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        summary.emitted_keys.append((target.slice.value, target.lineno))


def _summarize_class(node: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(node.name, node.lineno)
    summary.init_line = node.lineno
    for base in node.bases:
        if isinstance(base, ast.Name):
            summary.bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            summary.bases.append(base.attr)
    summary.lock_attrs = _lock_attr_factories(node)
    context = _ClassContext()
    captured: Set[str] = set()
    restored: Set[str] = set()
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__len__":
            summary.defines_len = True
        if item.name == "state_dict" and isinstance(item, ast.FunctionDef):
            summary.has_state_dict = True
            captured |= captured_keys(item)
        if item.name in LOADER_NAMES and isinstance(item, ast.FunctionDef):
            summary.has_loader = True
            restored |= restored_keys(item)
        if item.name == "__init__":
            summary.init_line = item.lineno
            args = item.args
            self_name = args.args[0].arg if args.args else "self"
            summary.init_params = [
                arg.arg
                for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                if arg.arg != self_name
            ]
        self_name = item.args.args[0].arg if item.args.args else None
        method = MethodSummary(item.name, item.lineno)
        _scan_function(item, method, self_name, set(summary.lock_attrs), context)
        summary.methods[item.name] = method
    summary.captured_keys = sorted(captured)
    summary.restored_keys = sorted(restored)
    summary.init_attrs = init_attributes(node)
    summary.thread_targets = sorted(dict.fromkeys(context.thread_targets))
    summary.process_targets = sorted(dict.fromkeys(context.process_targets))
    summary.ship_roots = sorted(context.ship_roots)
    summary.ship_root_writes = _ship_root_writes(node, summary)
    return summary


def _ship_root_writes(node: ast.ClassDef, summary: ClassSummary) -> List[Tuple[str, str, int]]:
    """Direct stores to fork-shipped attributes outside ``__init__``/spawn.

    Detects ``self.R = ...`` / ``self.R[...] = ...`` / ``del self.R`` and
    one level of alias indirection (``for engine in self.R: engine.x = ...``
    or ``e = self.R[i]; e.x = ...``).  Calls that mutate (``self.R[i].m()``)
    are out of scope -- documented in the fork-safety rule.
    """
    if not summary.ship_roots:
        return []
    roots = set(summary.ship_roots)
    spawn_methods = {
        target[5:] for target in summary.process_targets if target.startswith("self.")
    }
    # the method that performs the Process() call is the spawn boundary
    spawners: Set[str] = set()
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(item):
            if isinstance(inner, ast.Call) and _call_leaf(inner.func) == "Process":
                spawners.add(item.name)
    writes: List[Tuple[str, str, int]] = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__" or item.name in spawners or item.name in spawn_methods:
            continue
        self_name = item.args.args[0].arg if item.args.args else None
        if self_name is None:
            continue
        aliases: Dict[str, str] = {}
        for inner in _scope_walk(item):
            # build alias map in walk order (assignments precede later uses)
            if isinstance(inner, ast.Assign) and isinstance(inner.value, (ast.Attribute, ast.Subscript)):
                root = _root_of(inner.value, self_name, roots)
                if root is not None:
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = root
            if isinstance(inner, ast.For):
                root = _root_of(inner.iter, self_name, roots)
                if root is not None and isinstance(inner.target, ast.Name):
                    aliases[inner.target.id] = root
            if isinstance(inner, (ast.Attribute, ast.Subscript)) and isinstance(
                inner.ctx, (ast.Store, ast.Del)
            ):
                root = _root_of(inner, self_name, roots)
                if root is None:
                    base = inner
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id in aliases:
                        root = aliases[base.id]
                if root is not None:
                    writes.append((root, item.name, inner.lineno))
    return writes


def _root_of(node: ast.AST, self_name: str, roots: Set[str]) -> Optional[str]:
    """The shipped root attribute an attribute/subscript chain is based on."""
    base = node
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == self_name
            and base.attr in roots
        ):
            return base.attr
        base = base.value
    return None


def build_file_summary(source: "SourceFile") -> FileSummary:
    """Reduce one parsed file to its cacheable :class:`FileSummary`."""
    summary = FileSummary(source.display_path, module_name_of(source.path.parts))
    for node in source.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    summary.imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    summary.imports[alias.asname or alias.name] = (alias.name, "*")
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, (ast.Tuple, ast.List)):
                values = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
                for target in node.targets:
                    if isinstance(target, ast.Name) and values:
                        summary.constants[target.id] = (values, node.lineno)
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _summarize_class(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = FunctionSummary(node.name, node.lineno)
            _scan_function(node, function, None, set(), None)
            summary.functions[node.name] = function
    for node in ast.walk(source.tree):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Attribute):
            inner = optional_inner_names(node.annotation)
            if inner:
                summary.optional_attrs.append((node.target.attr, sorted(inner)))
    summary.truthiness_sites = _truthiness_sites(source.tree)
    return summary


def _truthiness_operands(node: ast.AST) -> Iterator[ast.AST]:
    """Expressions evaluated *for their truth value* by ``node``."""
    if isinstance(node, (ast.If, ast.While)):
        yield node.test
    elif isinstance(node, ast.IfExp):
        yield node.test
    elif isinstance(node, ast.BoolOp):
        # every operand of and/or is truth-tested (the last of `or` is
        # returned, but its selection still hinged on the others)
        for value in node.values[:-1] if isinstance(node.op, ast.And) else node.values:
            yield value
    elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        yield node.operand
    elif isinstance(node, ast.Assert):
        yield node.test
    elif isinstance(node, ast.comprehension):
        for condition in node.ifs:
            yield condition


def _truthiness_sites(tree: ast.Module) -> List[Tuple[str, str, List[str], str, int]]:
    """Candidate sites for the optional-truthiness rule, one pass per file.

    The rule itself is cross-file (it needs the project-wide
    ``optional_len_attrs`` / ``len_classes`` indexes), so the summary only
    records *where* truthiness tests happen and on what; the rule filters
    against the indexes at check time.
    """
    sites: List[Tuple[str, str, List[str], str, int]] = []
    seen: Set[Tuple[str, str, int]] = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = func.args
        params: Dict[str, List[str]] = {}
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                inner = optional_inner_names(arg.annotation)
                if inner:
                    params[arg.arg] = sorted(inner)
        for node in ast.walk(func):
            for operand in _truthiness_operands(node):
                if isinstance(operand, ast.Name) and operand.id in params:
                    site = ("param", operand.id, operand.lineno)
                    if site not in seen:
                        seen.add(site)
                        sites.append(
                            ("param", operand.id, params[operand.id], operand.id, operand.lineno)
                        )
                elif isinstance(operand, ast.Attribute):
                    spelled = ast.unparse(operand)
                    site = ("attr", spelled, operand.lineno)
                    if site not in seen:
                        seen.add(site)
                        sites.append(
                            ("attr", operand.attr, [], spelled, operand.lineno)
                        )
    sites.sort(key=lambda item: (item[4], item[3]))
    return sites


# ----------------------------------------------------------------------
# the assembled model
# ----------------------------------------------------------------------
class ProjectModel:
    """Every file's summary plus the derived cross-file indexes."""

    def __init__(self, summaries: Sequence[FileSummary]):
        self.summaries = list(summaries)
        self.by_path: Dict[str, FileSummary] = {
            summary.display_path: summary for summary in self.summaries
        }
        #: ``{module name: FileSummary}`` (last definition wins, like imports).
        self.modules: Dict[str, FileSummary] = {}
        #: ``{class name: (FileSummary, ClassSummary)}``.
        self.classes: Dict[str, Tuple[FileSummary, ClassSummary]] = {}
        for summary in self.summaries:
            self.modules[summary.module] = summary
            for name, class_summary in summary.classes.items():
                self.classes[name] = (summary, class_summary)
        #: Classes defining ``__len__`` -- empty instances are falsy.
        self.len_classes: Set[str] = {
            name for name, (_, cls) in self.classes.items() if cls.defines_len
        }
        #: Attribute names annotated Optional-of-``__len__``-class anywhere.
        self.optional_len_attrs: Set[str] = set()
        for summary in self.summaries:
            for attr, inner in summary.optional_attrs:
                if set(inner) & self.len_classes:
                    self.optional_len_attrs.add(attr)

    def class_chain(self, name: str) -> List[Tuple[FileSummary, ClassSummary]]:
        """``name``'s summary plus its project-resolvable bases (MRO-ish)."""
        chain: List[Tuple[FileSummary, ClassSummary]] = []
        seen: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            file_summary, class_summary = self.classes[current]
            chain.append((file_summary, class_summary))
            queue.extend(class_summary.bases)
        return chain

    def chain_keys(self, name: str) -> Tuple[Set[str], Set[str]]:
        """Captured and restored snapshot keys across ``name``'s class chain."""
        captured: Set[str] = set()
        restored: Set[str] = set()
        for _, class_summary in self.class_chain(name):
            captured.update(class_summary.captured_keys)
            restored.update(class_summary.restored_keys)
        return captured, restored
