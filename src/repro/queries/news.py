"""News / social-media query catalogue (paper Fig. 2, Fig. 5, section 5.2).

The running example of the paper is the Fig. 2 query: *find three articles or
posts with a common keyword and location*.  The Fig. 5 map view runs a
collection of such queries, each pinning the keyword to a topic label such as
"politics" or "accident", and plots the hits by location.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..query.builder import QueryBuilder
from ..query.query_graph import QueryGraph

__all__ = [
    "common_topic_location_query",
    "labelled_topic_query",
    "breaking_story_query",
    "co_citation_query",
    "correlated_story_query",
    "NEWS_QUERIES",
]


def common_topic_location_query(article_count: int = 3, name: str = "common_topic_location") -> QueryGraph:
    """Fig. 2 query: ``article_count`` articles sharing one keyword and one location."""
    if article_count < 2:
        raise ValueError("the pattern needs at least two articles")
    builder = QueryBuilder(name).vertex("k", "Keyword").vertex("loc", "Location")
    for index in range(article_count):
        article = f"a{index + 1}"
        builder.vertex(article, "Article")
        builder.edge(article, "k", "mentions")
        builder.edge(article, "loc", "locatedIn")
    return builder.build()


def labelled_topic_query(
    topic: str,
    article_count: int = 3,
    name: Optional[str] = None,
) -> QueryGraph:
    """Fig. 5 query family: the Fig. 2 pattern with the keyword pinned to ``topic``.

    "Each query graph specifies a label (such as 'politics', 'accident' etc.)
    on the keyword vertex to indicate the event of interest."
    """
    query_name = name or f"topic:{topic}"
    builder = (
        QueryBuilder(query_name)
        .vertex("k", "Keyword", attrs={"label": topic})
        .vertex("loc", "Location")
    )
    for index in range(article_count):
        article = f"a{index + 1}"
        builder.vertex(article, "Article")
        builder.edge(article, "k", "mentions")
        builder.edge(article, "loc", "locatedIn")
    return builder.build()


def breaking_story_query(name: str = "breaking_story") -> QueryGraph:
    """Two articles citing the same person about the same keyword.

    A lighter-weight pattern used in the examples to show multi-entity
    queries (Article/Keyword/Person) beyond the Fig. 2 shape.
    """
    return (
        QueryBuilder(name)
        .vertex("k", "Keyword")
        .vertex("p", "Person")
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .edge("a1", "k", "mentions")
        .edge("a2", "k", "mentions")
        .edge("a1", "p", "cites")
        .edge("a2", "p", "cites")
        .build()
    )


def co_citation_query(name: str = "co_citation") -> QueryGraph:
    """Two articles in the same location citing the same organization."""
    return (
        QueryBuilder(name)
        .vertex("org", "Organization")
        .vertex("loc", "Location")
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .edge("a1", "org", "cites")
        .edge("a2", "org", "cites")
        .edge("a1", "loc", "locatedIn")
        .edge("a2", "loc", "locatedIn")
        .build()
    )


def correlated_story_query(name: str = "correlated_story") -> QueryGraph:
    """Two articles correlated on three axes: same keyword, same location, same cited person.

    The three relation types have very different frequencies in a realistic
    news stream (popular keywords are mentioned constantly, locations a bit
    less, and two articles citing the same person is rare), which makes this
    the canonical query for studying join-order selectivity (experiment E8):
    a good plan gates partial matches on the cites-pair, a bad plan joins the
    two frequent pairs first.
    """
    return (
        QueryBuilder(name)
        .vertex("k", "Keyword")
        .vertex("loc", "Location")
        .vertex("p", "Person")
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .edge("a1", "k", "mentions")
        .edge("a2", "k", "mentions")
        .edge("a1", "loc", "locatedIn")
        .edge("a2", "loc", "locatedIn")
        .edge("a1", "p", "cites")
        .edge("a2", "p", "cites")
        .build()
    )


#: Name -> constructor map (topic queries are built per topic via ``labelled_topic_query``).
NEWS_QUERIES = {
    "common_topic_location": common_topic_location_query,
    "breaking_story": breaking_story_query,
    "co_citation": co_citation_query,
    "correlated_story": correlated_story_query,
}
