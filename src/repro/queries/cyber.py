"""Cyber-security query catalogue (paper Fig. 3, section 5.1).

The paper models a cyber system as a graph of machines, IP addresses, users
and services, and registers graph queries for "worm spread, virus attack,
denial-of-service attack etc.".  These constructors build the query graphs
matching the attack footprints emitted by
:class:`~repro.workloads.attacks.AttackInjector`, so the cyber experiments
have a closed loop: inject pattern -> register query -> expect detection.

Every constructor returns a fresh :class:`~repro.query.query_graph.QueryGraph`
(query graphs are mutated by registration bookkeeping nowhere, but fresh
objects keep experiments independent).
"""

from __future__ import annotations

from ..query.builder import QueryBuilder
from ..query.predicates import AttrCompare, AttrEquals
from ..query.query_graph import QueryGraph

__all__ = [
    "smurf_ddos_query",
    "worm_propagation_query",
    "port_scan_query",
    "data_exfiltration_query",
    "exfiltration_campaign_query",
    "CYBER_QUERIES",
]


def smurf_ddos_query(reflector_count: int = 3, name: str = "smurf_ddos") -> QueryGraph:
    """Smurf DDoS: broadcast amplification ending in several replies to one victim.

    The pattern follows the attack mechanics end to end: an attacker sends an
    ``icmpRequest`` to a broadcast address, the broadcast forwards the request
    to ``reflector_count`` distinct hosts, and each of those hosts sends an
    ``icmpReply`` to the same (spoofed) victim.  ``reflector_count`` controls
    how much amplification must be seen before the query fires (3 by default
    -- large enough to avoid firing on ordinary ping traffic, small enough to
    fire early in an attack).
    """
    builder = (
        QueryBuilder(name)
        .vertex("attacker", "IP")
        .vertex("broadcast", "IP")
        .vertex("victim", "IP")
        .edge("attacker", "broadcast", "icmpRequest")
    )
    for index in range(reflector_count):
        reflector = f"reflector{index}"
        builder.vertex(reflector, "IP")
        builder.edge("broadcast", reflector, "icmpRequest")
        builder.edge(reflector, "victim", "icmpReply")
    return builder.build()


def worm_propagation_query(name: str = "worm_propagation") -> QueryGraph:
    """Worm spread: infection hops two levels out from an origin host.

    origin -> hostA -> hostB and origin -> hostC, all over the worm's port
    (445/tcp footprint in the injector, expressed here via the edge label
    only so the query also catches variants on other ports).
    """
    return (
        QueryBuilder(name)
        .vertex("origin", "IP")
        .vertex("hostA", "IP")
        .vertex("hostB", "IP")
        .vertex("hostC", "IP")
        .edge("origin", "hostA", "connectsTo", attrs={"port": 445})
        .edge("origin", "hostC", "connectsTo", attrs={"port": 445})
        .edge("hostA", "hostB", "connectsTo", attrs={"port": 445})
        .build()
    )


def port_scan_query(probe_count: int = 4, name: str = "port_scan") -> QueryGraph:
    """Port scan: one scanner opens ``probe_count`` half-open connections to one target.

    Each probe is a ``connectsTo`` edge flagged ``syn_only`` by the flow
    sensor.  The scanner and the target are shared across all probes, so a
    match requires ``probe_count`` parallel edges between the same pair of
    hosts inside the window.
    """
    builder = QueryBuilder(name).vertex("scanner", "IP").vertex("target", "IP")
    for _ in range(probe_count):
        builder.edge("scanner", "target", "connectsTo", attrs={"syn_only": True})
    return builder.build()


def data_exfiltration_query(min_upload_bytes: int = 1_000_000, name: str = "data_exfiltration") -> QueryGraph:
    """Exfiltration: fresh login, internal pull, then a large external upload.

    user -[loginTo]-> staging, staging -[connectsTo]-> internal server,
    staging -[connectsTo {external, bytes >= min_upload_bytes}]-> external host.
    """
    return (
        QueryBuilder(name)
        .vertex("user", "User")
        .vertex("staging", "IP")
        .vertex("internal", "IP")
        .vertex("external", "IP")
        .edge("user", "staging", "loginTo", attrs={"success": True})
        .edge("staging", "internal", "connectsTo")
        .edge(
            "staging",
            "external",
            "connectsTo",
            predicate=AttrEquals("external", True) & AttrCompare("bytes", ">=", min_upload_bytes),
        )
        .build()
    )


def exfiltration_campaign_query(name: str = "exfiltration_campaign") -> QueryGraph:
    """A broader exfiltration picture mixing frequent and rare relations.

    A staging host is logged into by a user (``loginTo``, rare), resolves an
    external domain (``resolvesTo``, uncommon), and opens outbound
    connections (``connectsTo``, very frequent) to two destinations that each
    perform a DNS resolution of their own.  Because the relation frequencies
    differ by an order of magnitude, the join order chosen for this query has
    a visible effect on how many partial matches are stored.  Note that on
    busy traffic this pattern is extremely common (every well-connected host
    matches it many times over), so register it with a short window.
    """
    return (
        QueryBuilder(name)
        .vertex("user", "User")
        .vertex("staging", "IP")
        .vertex("domain", "Domain")
        .vertex("domain2", "Domain")
        .vertex("domain3", "Domain")
        .vertex("dst1", "IP")
        .vertex("dst2", "IP")
        .edge("user", "staging", "loginTo")
        .edge("staging", "domain", "resolvesTo")
        .edge("staging", "dst1", "connectsTo")
        .edge("staging", "dst2", "connectsTo")
        .edge("dst1", "domain2", "resolvesTo")
        .edge("dst2", "domain3", "resolvesTo")
        .build()
    )


#: Name -> constructor map used by the Fig. 3 experiment and the examples.
CYBER_QUERIES = {
    "smurf_ddos": smurf_ddos_query,
    "worm_propagation": worm_propagation_query,
    "port_scan": port_scan_query,
    "data_exfiltration": data_exfiltration_query,
    "exfiltration_campaign": exfiltration_campaign_query,
}
