"""Ready-made query catalogues for the paper's two target domains."""

from .cyber import (
    CYBER_QUERIES,
    data_exfiltration_query,
    port_scan_query,
    smurf_ddos_query,
    worm_propagation_query,
)
from .news import (
    NEWS_QUERIES,
    breaking_story_query,
    co_citation_query,
    common_topic_location_query,
    labelled_topic_query,
)

__all__ = [
    "CYBER_QUERIES",
    "NEWS_QUERIES",
    "breaking_story_query",
    "co_citation_query",
    "common_topic_location_query",
    "data_exfiltration_query",
    "labelled_topic_query",
    "port_scan_query",
    "smurf_ddos_query",
    "worm_propagation_query",
]
