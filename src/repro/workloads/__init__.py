"""Synthetic workload generators (substitutes for the paper's proprietary feeds).

* :class:`NetflowGenerator` -- CAIDA-like internet traffic (background).
* :class:`AttackInjector` -- Smurf DDoS, worm, port-scan, exfiltration footprints.
* :class:`NewsStreamGenerator` -- NYT-like article/keyword/location stream.
* :class:`SocialStreamGenerator` -- user/post/hashtag activity stream.
* :class:`RmatGenerator` -- scale-free multi-relational background.
* :class:`DriftingGenerator` -- label mix shifts mid-stream (selectivity drift).
* :mod:`~repro.workloads.planted` -- embed arbitrary query instances as ground truth.
"""

from .attacks import AttackInjector, SmurfCascadePlan, high_cardinality_flood
from .drifting import DriftingConfig, DriftingGenerator
from .netflow import NetflowConfig, NetflowGenerator
from .nyt import NewsStreamConfig, NewsStreamGenerator, PlantedNewsEvent
from .planted import PlantedInstance, instances_detected, plant_query_instances
from .rmat import RmatConfig, RmatGenerator
from .social import SocialStreamConfig, SocialStreamGenerator

__all__ = [
    "AttackInjector",
    "DriftingConfig",
    "DriftingGenerator",
    "NetflowConfig",
    "NetflowGenerator",
    "NewsStreamConfig",
    "NewsStreamGenerator",
    "PlantedInstance",
    "PlantedNewsEvent",
    "RmatConfig",
    "RmatGenerator",
    "SmurfCascadePlan",
    "SocialStreamConfig",
    "SocialStreamGenerator",
    "high_cardinality_flood",
    "instances_detected",
    "plant_query_instances",
]
