"""Cyber-attack pattern injectors (the events the Fig. 3 queries look for).

Each injector emits the edge-level footprint of a named attack into an edge
stream at a chosen time, so that benchmarks can plant a known number of
events and check that the registered queries detect exactly those (plus
whatever the background traffic coincidentally forms).  The shapes follow
the paper's examples:

* **Smurf DDoS** -- an attacker sends ICMP echo requests to a broadcast
  address spoofing the victim; many hosts of the amplifying subnet then
  reply to the victim simultaneously (the Fig. 6/7 cascading scenario).
* **Worm propagation** -- an infected host connects to several peers, each of
  which soon connects onward to further hosts (two-hop fan-out).
* **Port scan** -- one source probes many distinct ports on one target in a
  short burst.
* **Data exfiltration** -- a host logs in from a new user, pulls data from an
  internal server and pushes a large upload to an external host.

The injectors only *emit edges*; combining them with background traffic is
done with :func:`repro.streaming.edge_stream.merge_streams`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..streaming.edge_stream import EdgeStream, StreamEdge
from .netflow import NetflowGenerator

__all__ = ["AttackInjector", "SmurfCascadePlan", "high_cardinality_flood"]


def high_cardinality_flood(
    count: int,
    seed: int = 41,
    signal_every: Optional[int] = None,
    start_time: float = 0.0,
    spacing: float = 0.001,
) -> List[StreamEdge]:
    """Adversarial stream: (almost) every record carries a brand-new label.

    The attacker's cheapest way to defeat a membership cache is cardinality:
    endless distinct edge labels blow up any per-key state the engine keeps.
    Every flood record here uses a fresh label and fresh endpoint vertices,
    so each one is (a) a guaranteed dispatch-index miss -- the workload the
    Bloom front must answer from its counting cells -- and (b) a distinct
    key in any per-label statistics structure.

    ``signal_every`` interleaves one matchable record (fixed ``signal``
    label over a small host pool) every N records, keeping registered
    queries and their duplicate-suppression memories active in the flood so
    bounded-memory tests can assert recall *while* under attack.
    """
    rng = random.Random(seed)
    records: List[StreamEdge] = []
    for index in range(count):
        timestamp = start_time + index * spacing
        if signal_every and index % signal_every == 0:
            records.append(
                StreamEdge(
                    f"S{rng.randrange(4)}",
                    f"T{rng.randrange(4)}",
                    "signal",
                    timestamp,
                    None,
                    "Host",
                    "Host",
                )
            )
        else:
            records.append(
                StreamEdge(
                    f"n{index}",
                    f"m{index}",
                    f"flood{index}",
                    timestamp,
                    None,
                    "Noise",
                    "Noise",
                )
            )
    return records


class SmurfCascadePlan:
    """Description of a multi-subnet Smurf DDoS cascade (experiment E4)."""

    def __init__(self, victim: str, subnet_order: List[int], start_times: List[float]):
        self.victim = victim
        self.subnet_order = subnet_order
        self.start_times = start_times

    def to_dict(self) -> Dict[str, object]:
        """Serialise for experiment reports."""
        return {
            "victim": self.victim,
            "subnet_order": list(self.subnet_order),
            "start_times": list(self.start_times),
        }


class AttackInjector:
    """Emit attack footprints against the host population of a :class:`NetflowGenerator`."""

    def __init__(self, generator: NetflowGenerator, seed: int = 23):
        self.generator = generator
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # individual attacks
    # ------------------------------------------------------------------
    def smurf_ddos(
        self,
        start_time: float,
        victim: Optional[str] = None,
        subnet: Optional[int] = None,
        reflector_count: int = 6,
        reply_spacing: float = 0.02,
    ) -> EdgeStream:
        """Return the edges of one Smurf DDoS burst.

        Footprint (the classic Smurf mechanics): the attacker sends an ICMP
        echo request to the subnet's broadcast address spoofing the victim
        (``attacker -[icmpRequest]-> broadcast``); the broadcast fans the
        request out to the subnet hosts (``broadcast -[icmpRequest]->
        reflector``); each reflector then replies to the spoofed source
        (``reflector -[icmpReply]-> victim``) within a tight time window.
        """
        hosts = self.generator.hosts
        victim = victim or self._rng.choice(hosts)
        if subnet is None:
            subnet = self._rng.randrange(self.generator.config.subnet_count)
        reflectors = [host for host in hosts if self.generator.subnet(host) == subnet and host != victim]
        if len(reflectors) < reflector_count:
            reflector_count = max(1, len(reflectors))
        chosen = self._rng.sample(reflectors, reflector_count)
        attacker = self._rng.choice([host for host in hosts if host != victim])
        broadcast = f"10.0.{subnet}.255"
        records = [
            StreamEdge(
                attacker,
                broadcast,
                "icmpRequest",
                start_time,
                {"spoofed_source": victim},
                source_label="IP",
                target_label="IP",
            )
        ]
        timestamp = start_time
        for reflector in chosen:
            timestamp += reply_spacing
            records.append(
                StreamEdge(
                    broadcast,
                    reflector,
                    "icmpRequest",
                    timestamp,
                    {"forwarded": True},
                    source_label="IP",
                    target_label="IP",
                )
            )
            records.append(
                StreamEdge(
                    reflector,
                    victim,
                    "icmpReply",
                    timestamp + reply_spacing / 2,
                    {"protocol": "icmp"},
                    source_label="IP",
                    target_label="IP",
                )
            )
        return EdgeStream(records, name=f"smurf@{start_time}")

    def smurf_cascade(
        self,
        start_time: float,
        subnet_count: Optional[int] = None,
        stage_gap: float = 5.0,
        reflector_count: int = 6,
        victim: Optional[str] = None,
    ) -> (EdgeStream, SmurfCascadePlan):
        """Return a cascade of Smurf bursts marching across subnets (Fig. 6).

        The same victim is hit from subnet 0, then subnet 1 after
        ``stage_gap`` seconds, and so on -- the "cascading effect of a Smurf
        DDoS attack across subnetworks" the grid view of the demo shows.
        """
        total_subnets = self.generator.config.subnet_count
        if subnet_count is None or subnet_count > total_subnets:
            subnet_count = total_subnets
        victim = victim or self._rng.choice(self.generator.hosts)
        streams = []
        order: List[int] = []
        starts: List[float] = []
        for stage in range(subnet_count):
            stage_start = start_time + stage * stage_gap
            streams.append(
                self.smurf_ddos(
                    stage_start,
                    victim=victim,
                    subnet=stage,
                    reflector_count=reflector_count,
                )
            )
            order.append(stage)
            starts.append(stage_start)
        combined: List[StreamEdge] = []
        for stream in streams:
            combined.extend(stream)
        plan = SmurfCascadePlan(victim=victim, subnet_order=order, start_times=starts)
        return EdgeStream(sorted(combined, key=lambda e: e.timestamp), name="smurf_cascade"), plan

    def worm_propagation(
        self,
        start_time: float,
        fan_out: int = 3,
        hop_gap: float = 1.0,
        origin: Optional[str] = None,
    ) -> EdgeStream:
        """Return a two-hop worm spread: origin infects ``fan_out`` hosts, each infects one more."""
        hosts = self.generator.hosts
        origin = origin or self._rng.choice(hosts)
        others = [host for host in hosts if host != origin]
        first_hop = self._rng.sample(others, min(fan_out, len(others)))
        records: List[StreamEdge] = []
        timestamp = start_time
        for victim in first_hop:
            timestamp += 0.05
            records.append(
                StreamEdge(
                    origin,
                    victim,
                    "connectsTo",
                    timestamp,
                    {"protocol": "tcp", "port": 445, "worm": True},
                    source_label="IP",
                    target_label="IP",
                )
            )
        for victim in first_hop:
            next_targets = [host for host in hosts if host not in (origin, victim)]
            second = self._rng.choice(next_targets)
            records.append(
                StreamEdge(
                    victim,
                    second,
                    "connectsTo",
                    timestamp + hop_gap + self._rng.random() * 0.5,
                    {"protocol": "tcp", "port": 445, "worm": True},
                    source_label="IP",
                    target_label="IP",
                )
            )
        return EdgeStream(sorted(records, key=lambda e: e.timestamp), name=f"worm@{start_time}")

    def port_scan(
        self,
        start_time: float,
        port_count: int = 10,
        scanner: Optional[str] = None,
        target: Optional[str] = None,
        spacing: float = 0.01,
    ) -> EdgeStream:
        """Return a burst of connections from one scanner to many ports of one target."""
        hosts = self.generator.hosts
        scanner = scanner or self._rng.choice(hosts)
        target = target or self._rng.choice([host for host in hosts if host != scanner])
        records = []
        timestamp = start_time
        for index in range(port_count):
            timestamp += spacing
            records.append(
                StreamEdge(
                    scanner,
                    target,
                    "connectsTo",
                    timestamp,
                    {"protocol": "tcp", "port": 1000 + index, "syn_only": True},
                    source_label="IP",
                    target_label="IP",
                )
            )
        return EdgeStream(records, name=f"scan@{start_time}")

    def data_exfiltration(
        self,
        start_time: float,
        internal_server: Optional[str] = None,
        staging_host: Optional[str] = None,
        external_host: str = "203.0.113.99",
        user: Optional[str] = None,
    ) -> EdgeStream:
        """Return the login -> internal pull -> external push footprint of an exfiltration."""
        hosts = self.generator.hosts
        internal_server = internal_server or self._rng.choice(self.generator.servers)
        staging_host = staging_host or self._rng.choice(
            [host for host in hosts if host != internal_server]
        )
        user = user or self._rng.choice(self.generator.users)
        records = [
            StreamEdge(
                user,
                staging_host,
                "loginTo",
                start_time,
                {"success": True, "new_source": True},
                source_label="User",
                target_label="IP",
            ),
            StreamEdge(
                staging_host,
                internal_server,
                "connectsTo",
                start_time + 1.0,
                {"protocol": "tcp", "port": 445, "bytes": 5_000_000},
                source_label="IP",
                target_label="IP",
            ),
            StreamEdge(
                staging_host,
                external_host,
                "connectsTo",
                start_time + 2.5,
                {"protocol": "tcp", "port": 443, "bytes": 8_000_000, "external": True},
                source_label="IP",
                target_label="IP",
            ),
        ]
        return EdgeStream(records, name=f"exfil@{start_time}")
