"""Synthetic internet-traffic (netflow) stream generator.

The demonstration setup of the paper uses CAIDA internet traffic traces
("the number of records in these datasets typically varies between 50-100
million/hour").  Those traces are not redistributable, so this module builds
the closest synthetic equivalent that exercises the same code paths:

* entities are IP hosts grouped into subnets, with a small population of
  servers and a large population of clients;
* each flow record becomes one ``connectsTo`` edge between two ``IP``
  vertices, carrying protocol, destination port, packet and byte counts;
* source/destination selection follows a Zipf-like heavy-tailed popularity
  distribution (a few talkers dominate), matching the skew that makes join
  ordering matter;
* inter-arrival times are exponential, so stream time advances realistically
  and window semantics are exercised;
* auxiliary relations (``resolvesTo`` DNS lookups, ``loginTo`` user logins)
  are mixed in at configurable rates so the graph is genuinely
  multi-relational.

Attack patterns (Smurf DDoS cascades, worm propagation, scans, exfiltration)
are injected separately by :mod:`repro.workloads.attacks` so benchmarks can
control exactly what is planted.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence

from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["NetflowConfig", "NetflowGenerator"]

_PROTOCOLS = ("tcp", "udp", "icmp")
_COMMON_PORTS = (80, 443, 53, 22, 25, 123, 3389, 8080)


class NetflowConfig:
    """Parameters of the synthetic traffic generator."""

    def __init__(
        self,
        host_count: int = 200,
        subnet_count: int = 8,
        server_fraction: float = 0.1,
        mean_interarrival: float = 0.05,
        zipf_exponent: float = 1.3,
        dns_fraction: float = 0.08,
        login_fraction: float = 0.03,
        seed: int = 11,
    ):
        if host_count < 2:
            raise ValueError("need at least two hosts")
        if subnet_count < 1:
            raise ValueError("need at least one subnet")
        if not 0.0 < server_fraction < 1.0:
            raise ValueError("server_fraction must be in (0, 1)")
        self.host_count = host_count
        self.subnet_count = subnet_count
        self.server_fraction = server_fraction
        self.mean_interarrival = mean_interarrival
        self.zipf_exponent = zipf_exponent
        self.dns_fraction = dns_fraction
        self.login_fraction = login_fraction
        self.seed = seed


class NetflowGenerator:
    """Generate a multi-relational network-traffic edge stream."""

    def __init__(self, config: Optional[NetflowConfig] = None):
        self.config = config or NetflowConfig()
        self._rng = random.Random(self.config.seed)
        self.hosts: List[str] = []
        self.subnet_of: Dict[str, int] = {}
        self.servers: List[str] = []
        self.clients: List[str] = []
        self.users: List[str] = []
        self._popularity: List[float] = []
        self._build_population()

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _build_population(self) -> None:
        config = self.config
        hosts_per_subnet = max(1, config.host_count // config.subnet_count)
        for index in range(config.host_count):
            subnet = min(index // hosts_per_subnet, config.subnet_count - 1)
            host = f"10.0.{subnet}.{index % hosts_per_subnet + 1}"
            self.hosts.append(host)
            self.subnet_of[host] = subnet
        server_count = max(1, int(config.host_count * config.server_fraction))
        self.servers = self.hosts[:server_count]
        self.clients = self.hosts[server_count:]
        self.users = [f"user{i}" for i in range(max(4, config.host_count // 10))]
        # Zipf-like popularity weights over all hosts (rank-based)
        self._popularity = [
            1.0 / ((rank + 1) ** config.zipf_exponent) for rank in range(config.host_count)
        ]

    def _pick_host(self) -> str:
        return self._rng.choices(self.hosts, weights=self._popularity, k=1)[0]

    def _pick_pair(self) -> (str, str):
        source = self._pick_host()
        target = self._pick_host()
        attempts = 0
        while target == source and attempts < 5:
            target = self._pick_host()
            attempts += 1
        if target == source:
            target = self.hosts[(self.hosts.index(source) + 1) % len(self.hosts)]
        return source, target

    def subnet(self, host: str) -> int:
        """Return the subnet index a host belongs to."""
        return self.subnet_of[host]

    # ------------------------------------------------------------------
    # record generation
    # ------------------------------------------------------------------
    def _flow_record(self, timestamp: float) -> StreamEdge:
        source, target = self._pick_pair()
        protocol = self._rng.choices(_PROTOCOLS, weights=(0.7, 0.25, 0.05), k=1)[0]
        port = self._rng.choice(_COMMON_PORTS)
        packets = max(1, int(self._rng.expovariate(1 / 20)))
        return StreamEdge(
            source,
            target,
            "connectsTo",
            timestamp,
            {
                "protocol": protocol,
                "port": port,
                "packets": packets,
                "bytes": packets * self._rng.randint(40, 1500),
            },
            source_label="IP",
            target_label="IP",
        )

    def _dns_record(self, timestamp: float) -> StreamEdge:
        host = self._pick_host()
        domain = f"domain{self._rng.randint(0, 50)}.example"
        return StreamEdge(
            host,
            domain,
            "resolvesTo",
            timestamp,
            {"qtype": "A"},
            source_label="IP",
            target_label="Domain",
        )

    def _login_record(self, timestamp: float) -> StreamEdge:
        user = self._rng.choice(self.users)
        host = self._pick_host()
        return StreamEdge(
            user,
            host,
            "loginTo",
            timestamp,
            {"success": self._rng.random() > 0.05},
            source_label="User",
            target_label="IP",
        )

    def records(self, count: int, start_time: float = 0.0) -> Iterator[StreamEdge]:
        """Yield ``count`` records with exponential inter-arrival times."""
        timestamp = start_time
        for _ in range(count):
            timestamp += self._rng.expovariate(1.0 / self.config.mean_interarrival)
            roll = self._rng.random()
            if roll < self.config.dns_fraction:
                yield self._dns_record(timestamp)
            elif roll < self.config.dns_fraction + self.config.login_fraction:
                yield self._login_record(timestamp)
            else:
                yield self._flow_record(timestamp)

    def stream(self, count: int, start_time: float = 0.0, name: str = "netflow") -> EdgeStream:
        """Return a concrete :class:`EdgeStream` of ``count`` records."""
        return EdgeStream(self.records(count, start_time), name=name)

    def duration_for(self, count: int) -> float:
        """Expected stream-time duration of ``count`` records."""
        return count * self.config.mean_interarrival
