"""Edge stream whose label distribution shifts mid-stream (selectivity drift).

The adaptive-replanning loop exists because production streams drift: a plan
ordered by the selectivities of the first N records degenerates when the
label mix changes.  This generator makes that drift explicit and
controllable so the replan-conformance suite can *guarantee* replans fire
(its trigger assertions would otherwise pass vacuously on stationary
streams): edge labels are drawn from ``initial_weights`` until ``drift_at``
records have been emitted, then from ``drifted_weights`` — e.g. the rare
label becoming the dominant one, inverting every marginal estimate the plan
recorded at registration.

Vertex labels stay a pure function of the vertex id (the data model's
one-type-per-identity rule), so only *edge-label* selectivity drifts and
the stream remains well-formed under label-routed sharding.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence

from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["DriftingConfig", "DriftingGenerator"]


class DriftingConfig:
    """Parameters of the drifting-selectivity generator."""

    def __init__(
        self,
        vertex_count: int = 64,
        edge_labels: Sequence[str] = ("alpha", "beta", "gamma"),
        vertex_labels: Sequence[str] = ("Host", "Server"),
        initial_weights: Sequence[float] = (0.80, 0.15, 0.05),
        drifted_weights: Sequence[float] = (0.05, 0.15, 0.80),
        drift_at: int = 500,
        mean_interarrival: float = 0.01,
        seed: int = 11,
    ):
        if vertex_count < 2:
            raise ValueError("vertex_count must be >= 2")
        if drift_at < 0:
            raise ValueError("drift_at must be >= 0")
        if len(initial_weights) != len(edge_labels) or len(drifted_weights) != len(edge_labels):
            raise ValueError("weights must have one entry per edge label")
        if min(initial_weights) < 0 or min(drifted_weights) < 0:
            raise ValueError("weights must be non-negative")
        if sum(initial_weights) <= 0 or sum(drifted_weights) <= 0:
            raise ValueError("weights must sum to a positive total")
        self.vertex_count = vertex_count
        self.edge_labels = list(edge_labels)
        self.vertex_labels = list(vertex_labels)
        self.initial_weights = list(initial_weights)
        self.drifted_weights = list(drifted_weights)
        self.drift_at = drift_at
        self.mean_interarrival = mean_interarrival
        self.seed = seed


class DriftingGenerator:
    """Generate a timestamped edge stream with a mid-stream label-mix shift.

    The drift point counts records *emitted by this generator instance*
    (across multiple :meth:`records` calls), so slicing one logical stream
    into several batches keeps a single well-defined drift position.
    """

    def __init__(self, config: Optional[DriftingConfig] = None):
        self.config = config or DriftingConfig()
        self._rng = random.Random(self.config.seed)
        self._emitted = 0

    def _vertex_label(self, vertex_index: int) -> str:
        labels = self.config.vertex_labels
        return labels[vertex_index % len(labels)]

    def _pick_label(self) -> str:
        weights = (
            self.config.initial_weights
            if self._emitted < self.config.drift_at
            else self.config.drifted_weights
        )
        return self._rng.choices(self.config.edge_labels, weights=weights, k=1)[0]

    def records(self, count: int, start_time: float = 0.0) -> Iterator[StreamEdge]:
        """Yield ``count`` edges with exponential inter-arrival times."""
        timestamp = start_time
        for _ in range(count):
            timestamp += self._rng.expovariate(1.0 / self.config.mean_interarrival)
            label = self._pick_label()
            row = self._rng.randrange(self.config.vertex_count)
            column = self._rng.randrange(self.config.vertex_count - 1)
            if column >= row:
                column += 1  # no self-loops
            self._emitted += 1
            yield StreamEdge(
                f"v{row}",
                f"v{column}",
                label,
                timestamp,
                {"weight": self._rng.random()},
                source_label=self._vertex_label(row),
                target_label=self._vertex_label(column),
            )

    def stream(self, count: int, start_time: float = 0.0, name: str = "drifting") -> EdgeStream:
        """Return a concrete :class:`EdgeStream` of ``count`` edges."""
        return EdgeStream(self.records(count, start_time), name=name)
