"""Synthetic news / social-media stream generator (NYT linked-data substitute).

The demo visualises queries over the New York Times linked-data feed
(articles annotated with people, organisations, locations and keyword
descriptors).  That feed is no longer available, so this generator produces a
structurally equivalent stream:

* each published article yields ``mentions`` edges to 1-3 ``Keyword``
  vertices, a ``locatedIn`` edge to a ``Location``, and optionally ``cites``
  edges to ``Person`` / ``Organization`` vertices;
* keyword and location popularity follow Zipf distributions (a handful of
  topics dominate coverage), which is what makes selectivity-aware planning
  worthwhile;
* *event bursts* can be planted: for a given topic keyword and location, a
  burst publishes several articles about that topic/location pair within a
  short interval -- exactly the structure the Fig. 2 query ("three articles
  share a keyword and a location") detects, and the labelled events the
  Fig. 5 map view plots.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["NewsStreamConfig", "PlantedNewsEvent", "NewsStreamGenerator"]

_DEFAULT_TOPICS = (
    "politics",
    "economy",
    "sports",
    "accident",
    "election",
    "protest",
    "technology",
    "health",
    "weather",
    "crime",
)

_DEFAULT_LOCATIONS = (
    "new_york",
    "washington",
    "london",
    "paris",
    "tokyo",
    "cairo",
    "moscow",
    "beijing",
    "berlin",
    "madrid",
)


class NewsStreamConfig:
    """Parameters of the synthetic news stream."""

    def __init__(
        self,
        topics: Sequence[str] = _DEFAULT_TOPICS,
        locations: Sequence[str] = _DEFAULT_LOCATIONS,
        person_count: int = 40,
        organization_count: int = 20,
        mean_interarrival: float = 2.0,
        keywords_per_article: Tuple[int, int] = (1, 3),
        cite_probability: float = 0.4,
        zipf_exponent: float = 1.2,
        seed: int = 17,
    ):
        if not topics or not locations:
            raise ValueError("topics and locations must be non-empty")
        self.topics = list(topics)
        self.locations = list(locations)
        self.person_count = person_count
        self.organization_count = organization_count
        self.mean_interarrival = mean_interarrival
        self.keywords_per_article = keywords_per_article
        self.cite_probability = cite_probability
        self.zipf_exponent = zipf_exponent
        self.seed = seed


class PlantedNewsEvent:
    """Ground truth for one planted topic/location burst."""

    def __init__(self, topic: str, location: str, start_time: float, article_ids: List[str]):
        self.topic = topic
        self.location = location
        self.start_time = start_time
        self.article_ids = article_ids

    def to_dict(self) -> Dict[str, object]:
        """Serialise for experiment reports."""
        return {
            "topic": self.topic,
            "location": self.location,
            "start_time": self.start_time,
            "articles": list(self.article_ids),
        }


class NewsStreamGenerator:
    """Generate article/keyword/location/person edges plus optional planted bursts."""

    def __init__(self, config: Optional[NewsStreamConfig] = None):
        self.config = config or NewsStreamConfig()
        self._rng = random.Random(self.config.seed)
        self._article_counter = 0
        self.people = [f"person{i}" for i in range(self.config.person_count)]
        self.organizations = [f"org{i}" for i in range(self.config.organization_count)]
        self._topic_weights = [
            1.0 / ((rank + 1) ** self.config.zipf_exponent) for rank in range(len(self.config.topics))
        ]
        self._location_weights = [
            1.0 / ((rank + 1) ** self.config.zipf_exponent)
            for rank in range(len(self.config.locations))
        ]

    # ------------------------------------------------------------------
    # single article
    # ------------------------------------------------------------------
    def _next_article_id(self) -> str:
        self._article_counter += 1
        return f"article{self._article_counter}"

    def article_edges(
        self,
        timestamp: float,
        topic: Optional[str] = None,
        location: Optional[str] = None,
        article_id: Optional[str] = None,
    ) -> List[StreamEdge]:
        """Return the edges published for one article.

        The primary keyword and location can be pinned (used by planted
        bursts); extra keywords are drawn from the topic distribution.
        """
        config = self.config
        article = article_id or self._next_article_id()
        primary_topic = topic or self._rng.choices(config.topics, weights=self._topic_weights, k=1)[0]
        chosen_location = (
            location
            or self._rng.choices(config.locations, weights=self._location_weights, k=1)[0]
        )
        low, high = config.keywords_per_article
        keyword_count = self._rng.randint(low, high)
        keywords = {primary_topic}
        while len(keywords) < keyword_count:
            keywords.add(self._rng.choices(config.topics, weights=self._topic_weights, k=1)[0])

        edges = []
        offset = 0.0
        for keyword in sorted(keywords):
            edges.append(
                StreamEdge(
                    article,
                    f"kw:{keyword}",
                    "mentions",
                    timestamp + offset,
                    {"label": keyword},
                    source_label="Article",
                    target_label="Keyword",
                    target_attrs={"label": keyword},
                )
            )
            offset += 0.001
        edges.append(
            StreamEdge(
                article,
                f"loc:{chosen_location}",
                "locatedIn",
                timestamp + offset,
                {"name": chosen_location},
                source_label="Article",
                target_label="Location",
                target_attrs={"name": chosen_location},
            )
        )
        offset += 0.001
        if self._rng.random() < config.cite_probability:
            if self._rng.random() < 0.5:
                person = self._rng.choice(self.people)
                edges.append(
                    StreamEdge(
                        article,
                        person,
                        "cites",
                        timestamp + offset,
                        {},
                        source_label="Article",
                        target_label="Person",
                    )
                )
            else:
                organization = self._rng.choice(self.organizations)
                edges.append(
                    StreamEdge(
                        article,
                        organization,
                        "cites",
                        timestamp + offset,
                        {},
                        source_label="Article",
                        target_label="Organization",
                    )
                )
        return edges

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def background_stream(self, article_count: int, start_time: float = 0.0) -> EdgeStream:
        """Return a stream of ``article_count`` background articles."""
        records: List[StreamEdge] = []
        timestamp = start_time
        for _ in range(article_count):
            timestamp += self._rng.expovariate(1.0 / self.config.mean_interarrival)
            records.extend(self.article_edges(timestamp))
        return EdgeStream(records, name="news_background")

    def planted_burst(
        self,
        topic: str,
        location: str,
        start_time: float,
        article_count: int = 3,
        spacing: float = 1.0,
    ) -> Tuple[EdgeStream, PlantedNewsEvent]:
        """Return a burst of ``article_count`` articles about the same topic and location."""
        records: List[StreamEdge] = []
        article_ids: List[str] = []
        timestamp = start_time
        for _ in range(article_count):
            article_id = self._next_article_id()
            article_ids.append(article_id)
            records.extend(
                self.article_edges(timestamp, topic=topic, location=location, article_id=article_id)
            )
            timestamp += spacing
        event = PlantedNewsEvent(topic, location, start_time, article_ids)
        return EdgeStream(records, name=f"burst:{topic}@{location}"), event

    def stream_with_bursts(
        self,
        article_count: int,
        bursts: Sequence[Tuple[str, str, float]],
        burst_articles: int = 3,
        burst_spacing: float = 1.0,
        start_time: float = 0.0,
    ) -> Tuple[EdgeStream, List[PlantedNewsEvent]]:
        """Return background articles merged with planted bursts.

        ``bursts`` is a sequence of ``(topic, location, start_time)`` triples.
        """
        background = self.background_stream(article_count, start_time)
        events: List[PlantedNewsEvent] = []
        all_records = list(background)
        for topic, location, burst_start in bursts:
            burst_stream, event = self.planted_burst(
                topic, location, burst_start, burst_articles, burst_spacing
            )
            events.append(event)
            all_records.extend(burst_stream)
        merged = EdgeStream(sorted(all_records, key=lambda e: e.timestamp), name="news_with_bursts")
        return merged, events
