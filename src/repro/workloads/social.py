"""Synthetic social-media activity stream.

The paper's introduction motivates StreamWorks with social media monitoring
alongside news and cyber data.  This generator produces a user / post /
hashtag / reshare stream whose structure exercises different query shapes
than the news stream (user-centred stars, reshare chains):

* users follow each other (static-ish ``follows`` edges emitted early),
* users publish posts (``posted``), posts tag hashtags (``tagged``),
* users reshare posts (``reshared``) preferentially soon after publication,
  creating the time-correlated cascades that windowed queries detect,
* users mention other users in posts (``mentions``).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["SocialStreamConfig", "SocialStreamGenerator"]


class SocialStreamConfig:
    """Parameters of the social activity generator."""

    def __init__(
        self,
        user_count: int = 100,
        hashtag_count: int = 30,
        follow_edges: int = 300,
        mean_interarrival: float = 0.5,
        reshare_probability: float = 0.35,
        mention_probability: float = 0.25,
        zipf_exponent: float = 1.1,
        seed: int = 29,
    ):
        if user_count < 2:
            raise ValueError("need at least two users")
        self.user_count = user_count
        self.hashtag_count = hashtag_count
        self.follow_edges = follow_edges
        self.mean_interarrival = mean_interarrival
        self.reshare_probability = reshare_probability
        self.mention_probability = mention_probability
        self.zipf_exponent = zipf_exponent
        self.seed = seed


class SocialStreamGenerator:
    """Generate follows/posts/tags/reshares/mentions edges."""

    def __init__(self, config: Optional[SocialStreamConfig] = None):
        self.config = config or SocialStreamConfig()
        self._rng = random.Random(self.config.seed)
        self.users = [f"user{i}" for i in range(self.config.user_count)]
        self.hashtags = [f"tag{i}" for i in range(self.config.hashtag_count)]
        self._user_weights = [
            1.0 / ((rank + 1) ** self.config.zipf_exponent) for rank in range(self.config.user_count)
        ]
        self._hashtag_weights = [
            1.0 / ((rank + 1) ** self.config.zipf_exponent)
            for rank in range(self.config.hashtag_count)
        ]
        self._post_counter = 0
        self._recent_posts: List[Tuple[str, str, float]] = []  # (post id, author, time)

    def _pick_user(self) -> str:
        return self._rng.choices(self.users, weights=self._user_weights, k=1)[0]

    def _pick_hashtag(self) -> str:
        return self._rng.choices(self.hashtags, weights=self._hashtag_weights, k=1)[0]

    def follow_graph(self, start_time: float = 0.0) -> EdgeStream:
        """Return the initial ``follows`` edges (emitted before the activity stream)."""
        records: List[StreamEdge] = []
        timestamp = start_time
        seen = set()
        while len(records) < self.config.follow_edges:
            follower = self._pick_user()
            followee = self._pick_user()
            if follower == followee or (follower, followee) in seen:
                continue
            seen.add((follower, followee))
            timestamp += 0.001
            records.append(
                StreamEdge(
                    follower,
                    followee,
                    "follows",
                    timestamp,
                    {},
                    source_label="User",
                    target_label="User",
                )
            )
        return EdgeStream(records, name="follows")

    def activity_records(self, count: int, start_time: float = 0.0) -> Iterator[StreamEdge]:
        """Yield ``count`` activity edges (posts, tags, reshares, mentions)."""
        timestamp = start_time
        emitted = 0
        while emitted < count:
            timestamp += self._rng.expovariate(1.0 / self.config.mean_interarrival)
            author = self._pick_user()
            roll = self._rng.random()
            if roll < self.config.reshare_probability and self._recent_posts:
                post_id, original_author, _ = self._rng.choice(self._recent_posts[-50:])
                resharer = self._pick_user()
                if resharer != original_author:
                    yield StreamEdge(
                        resharer,
                        post_id,
                        "reshared",
                        timestamp,
                        {},
                        source_label="User",
                        target_label="Post",
                    )
                    emitted += 1
                    continue
            self._post_counter += 1
            post_id = f"post{self._post_counter}"
            self._recent_posts.append((post_id, author, timestamp))
            yield StreamEdge(
                author,
                post_id,
                "posted",
                timestamp,
                {},
                source_label="User",
                target_label="Post",
            )
            emitted += 1
            if emitted >= count:
                return
            yield StreamEdge(
                post_id,
                self._pick_hashtag(),
                "tagged",
                timestamp + 0.001,
                {},
                source_label="Post",
                target_label="Hashtag",
            )
            emitted += 1
            if emitted >= count:
                return
            if self._rng.random() < self.config.mention_probability:
                mentioned = self._pick_user()
                if mentioned != author:
                    yield StreamEdge(
                        post_id,
                        mentioned,
                        "mentions",
                        timestamp + 0.002,
                        {},
                        source_label="Post",
                        target_label="User",
                    )
                    emitted += 1

    def stream(self, count: int, start_time: float = 0.0, include_follows: bool = True) -> EdgeStream:
        """Return a combined follows + activity stream of roughly ``count`` edges."""
        records: List[StreamEdge] = []
        activity_start = start_time
        if include_follows:
            follows = self.follow_graph(start_time)
            records.extend(follows)
            activity_start = start_time + len(follows) * 0.001 + 1.0
        records.extend(self.activity_records(count, activity_start))
        return EdgeStream(records, name="social")
