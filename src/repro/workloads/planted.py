"""Generic planted-pattern utilities.

Several experiments need ground truth: "we injected N instances of the query
pattern at known times; did the engine report exactly those (plus whatever
the background happened to form)?"  :func:`plant_query_instances` embeds
concrete instances of an arbitrary query graph into a stream, and
:func:`instances_detected` checks which planted instances appear among the
reported matches.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..isomorphism.match import Match
from ..query.query_graph import QueryGraph
from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["PlantedInstance", "plant_query_instances", "instances_detected"]


class PlantedInstance:
    """Ground truth for one embedded query instance."""

    def __init__(self, index: int, start_time: float, vertex_map: Dict[str, str]):
        self.index = index
        self.start_time = start_time
        #: query vertex name -> planted data vertex id
        self.vertex_map = vertex_map

    def data_vertices(self) -> Set[str]:
        """Return the data vertex ids used by the planted instance."""
        return set(self.vertex_map.values())

    def to_dict(self) -> Dict[str, object]:
        """Serialise for experiment reports."""
        return {
            "index": self.index,
            "start_time": self.start_time,
            "vertex_map": dict(self.vertex_map),
        }


def _label_default(label: Optional[str]) -> str:
    return label if label is not None else "node"


def plant_query_instances(
    query: QueryGraph,
    count: int,
    start_time: float = 0.0,
    instance_gap: float = 60.0,
    edge_spacing: float = 0.5,
    seed: int = 97,
    vertex_prefix: str = "planted",
    edge_attrs: Optional[Dict[str, object]] = None,
) -> Tuple[EdgeStream, List[PlantedInstance]]:
    """Embed ``count`` fresh instances of ``query`` into an edge stream.

    Every instance uses brand-new data vertices (so instances never overlap)
    and emits its edges ``edge_spacing`` apart in a random order starting at
    ``start_time + index * instance_gap``.

    Query edges must have concrete labels (a wildcard query edge has no
    natural label to emit); wildcard *vertex* labels fall back to ``"node"``.
    """
    rng = random.Random(seed)
    records: List[StreamEdge] = []
    instances: List[PlantedInstance] = []
    for index in range(count):
        base = start_time + index * instance_gap
        vertex_map = {
            name: f"{vertex_prefix}:{index}:{name}" for name in query.vertex_names()
        }
        edges = list(query.edges())
        rng.shuffle(edges)
        timestamp = base
        for query_edge in edges:
            if query_edge.label is None:
                raise ValueError(
                    f"query edge {query_edge.id} has no label; cannot synthesise a data edge for it"
                )
            records.append(
                StreamEdge(
                    vertex_map[query_edge.source],
                    vertex_map[query_edge.target],
                    query_edge.label,
                    timestamp,
                    dict(edge_attrs or {}),
                    source_label=_label_default(query.vertex(query_edge.source).label),
                    target_label=_label_default(query.vertex(query_edge.target).label),
                )
            )
            timestamp += edge_spacing
        instances.append(PlantedInstance(index, base, vertex_map))
    stream = EdgeStream(sorted(records, key=lambda e: e.timestamp), name=f"planted:{query.name}")
    return stream, instances


def instances_detected(
    instances: Sequence[PlantedInstance],
    matches: Iterable[Match],
) -> Dict[int, bool]:
    """Return ``{instance index: detected}`` by comparing data-vertex sets.

    An instance counts as detected when some reported match uses a subset of
    the instance's planted vertices (automorphic permutations of the query
    variables all map onto the same planted vertex set).
    """
    match_vertex_sets = [set(match.vertex_map.values()) for match in matches]
    result: Dict[int, bool] = {}
    for instance in instances:
        planted = instance.data_vertices()
        result[instance.index] = any(vertices <= planted for vertices in match_vertex_sets)
    return result
