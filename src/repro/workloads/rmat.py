"""R-MAT style power-law edge stream generator.

A scale-free background generator used by the statistics / summarization
experiments (E9) and the property-based tests: it produces graphs with a
controllable skew without any domain semantics, which is handy when a test
needs "a realistic messy graph" rather than a cyber or news scenario.

The recursive-matrix procedure follows Chakrabarti, Zhan and Faloutsos
(SDM 2004): each edge picks its (source, target) cell by recursively
descending into one of four quadrants with probabilities (a, b, c, d).
Edge labels and vertex labels are drawn from small configurable alphabets to
make the output multi-relational.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..streaming.edge_stream import EdgeStream, StreamEdge

__all__ = ["RmatConfig", "RmatGenerator"]


class RmatConfig:
    """Parameters of the R-MAT generator."""

    def __init__(
        self,
        scale: int = 8,
        a: float = 0.57,
        b: float = 0.19,
        c: float = 0.19,
        d: float = 0.05,
        edge_labels: Sequence[str] = ("rel_a", "rel_b", "rel_c"),
        vertex_labels: Sequence[str] = ("TypeA", "TypeB"),
        mean_interarrival: float = 0.01,
        seed: int = 5,
    ):
        total = a + b + c + d
        if abs(total - 1.0) > 1e-6:
            raise ValueError("R-MAT quadrant probabilities must sum to 1")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = scale
        self.a, self.b, self.c, self.d = a, b, c, d
        self.edge_labels = list(edge_labels)
        self.vertex_labels = list(vertex_labels)
        self.mean_interarrival = mean_interarrival
        self.seed = seed

    @property
    def vertex_count(self) -> int:
        """Number of possible vertices (2 ** scale)."""
        return 1 << self.scale


class RmatGenerator:
    """Generate a timestamped multi-relational R-MAT edge stream."""

    def __init__(self, config: Optional[RmatConfig] = None):
        self.config = config or RmatConfig()
        self._rng = random.Random(self.config.seed)

    def _pick_cell(self) -> Tuple[int, int]:
        row = 0
        column = 0
        span = self.config.vertex_count
        a, b, c = self.config.a, self.config.b, self.config.c
        while span > 1:
            span //= 2
            roll = self._rng.random()
            if roll < a:
                pass
            elif roll < a + b:
                column += span
            elif roll < a + b + c:
                row += span
            else:
                row += span
                column += span
        return row, column

    def _vertex_label(self, vertex_index: int) -> str:
        labels = self.config.vertex_labels
        return labels[vertex_index % len(labels)]

    def records(self, count: int, start_time: float = 0.0) -> Iterator[StreamEdge]:
        """Yield ``count`` edges with exponential inter-arrival times."""
        timestamp = start_time
        for _ in range(count):
            timestamp += self._rng.expovariate(1.0 / self.config.mean_interarrival)
            row, column = self._pick_cell()
            source = f"v{row}"
            target = f"v{column}"
            label = self._rng.choice(self.config.edge_labels)
            yield StreamEdge(
                source,
                target,
                label,
                timestamp,
                {"weight": self._rng.random()},
                source_label=self._vertex_label(row),
                target_label=self._vertex_label(column),
            )

    def stream(self, count: int, start_time: float = 0.0, name: str = "rmat") -> EdgeStream:
        """Return a concrete :class:`EdgeStream` of ``count`` edges."""
        return EdgeStream(self.records(count, start_time), name=name)
