"""Versioned, checksummed, atomically-written snapshot container.

A snapshot is one file holding a *manifest line* followed by a sequence of
named sections:

* line 1 -- a JSON manifest: magic string, format version, the snapshot
  *kind* (which engine class wrote it), a monotone *epoch* (bumped on every
  checkpoint of the same engine, so operators can pick the newest of a
  directory of autosaves), and a table of sections with byte lengths and
  SHA-256 digests;
* then each section's JSON payload, concatenated in manifest order.

The format is deliberately dependency-free and explicit about failure:

* **Atomicity** -- :func:`write_snapshot` writes to a temporary file in the
  same directory, flushes and ``fsync``\\ s it, then ``os.replace``\\ s it over
  the destination (and fsyncs the directory, best effort).  A crash during
  checkpointing leaves either the previous complete snapshot or none --
  never a torn file under the final name.
* **Torn/corrupt reads are typed errors** -- every way a snapshot can be
  damaged (missing manifest, truncated section, checksum mismatch, trailing
  garbage, undecodable payload) raises :class:`SnapshotCorruptError`;
  a snapshot written by an incompatible format raises
  :class:`SnapshotVersionError`.  ``restore()`` therefore either returns a
  fully-reconstructed engine or raises -- there is no silent partial load.

Payloads must be JSON-serialisable values (the engine state codecs in
:mod:`repro.persistence.state` guarantee that for engine-owned state;
stream *attribute values* must themselves be JSON-safe -- the same
contract as :meth:`repro.streaming.edge_stream.EdgeStream.to_jsonl`).
Non-finite floats (``Infinity``/``-Infinity``) are allowed; several engine
clocks legitimately sit at ``-inf``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotCorruptError",
    "SnapshotVersionError",
    "write_snapshot",
    "read_snapshot",
    "read_manifest",
]

SNAPSHOT_MAGIC = "streamworks-snapshot"
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(Exception):
    """Base class for snapshot write/read failures."""


class SnapshotCorruptError(SnapshotError):
    """The snapshot file is damaged (torn write, truncation, bit rot).

    Raised for *any* structural damage -- a restore never silently loads a
    partial snapshot.  The message names the first damaged part.
    """


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible format version."""


def _encode_section(name: str, payload: Any) -> bytes:
    try:
        return json.dumps(payload, separators=(",", ":"), allow_nan=True).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise SnapshotError(
            f"snapshot section {name!r} holds a value that is not JSON-serialisable: "
            f"{error} (stream/vertex attribute values must be JSON-safe to checkpoint)"
        ) from error


def write_snapshot(
    path: str, kind: str, epoch: int, sections: Mapping[str, Any]
) -> Dict[str, Any]:
    """Atomically write ``sections`` (name -> JSON-able payload) to ``path``.

    Returns the manifest that was written.  The write goes through a
    temporary sibling file + ``fsync`` + ``os.replace`` so a crash mid-write
    can never leave a torn file under ``path``.
    """
    blobs: List[Tuple[str, bytes]] = [
        (name, _encode_section(name, payload)) for name, payload in sections.items()
    ]
    manifest: Dict[str, Any] = {
        "magic": SNAPSHOT_MAGIC,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "kind": kind,
        "epoch": int(epoch),
        "sections": [
            {"name": name, "length": len(blob), "sha256": hashlib.sha256(blob).hexdigest()}
            for name, blob in blobs
        ],
    }
    manifest_line = json.dumps(manifest, separators=(",", ":")).encode("utf-8") + b"\n"
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(manifest_line)
            for _, blob in blobs:
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # never leave the temporary file behind on a failed write
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:  # durability of the rename itself (best effort: not all platforms allow it)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    return manifest


def _parse_manifest(data: bytes, path: str) -> Tuple[Dict[str, Any], bytes]:
    newline = data.find(b"\n")
    if newline < 0:
        raise SnapshotCorruptError(f"{path}: no manifest line (file truncated or empty)")
    try:
        manifest = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(f"{path}: manifest line is not valid JSON: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"{path}: not a StreamWorks snapshot (bad magic)")
    return manifest, data[newline + 1 :]


def read_manifest(path: str) -> Dict[str, Any]:
    """Read and validate only the manifest line (cheap epoch/kind inspection)."""
    with open(path, "rb") as handle:
        head = handle.readline()
    if not head.endswith(b"\n"):
        raise SnapshotCorruptError(f"{path}: no manifest line (file truncated or empty)")
    manifest, _ = _parse_manifest(head, path)
    return manifest


def read_snapshot(
    path: str, kind: Optional[str] = None
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Read, verify and decode a snapshot; return ``(manifest, sections)``.

    Every integrity violation raises :class:`SnapshotCorruptError`; a
    format-version mismatch raises :class:`SnapshotVersionError`; a ``kind``
    mismatch (restoring a sharded snapshot through the single engine, or
    vice versa) raises plain :class:`SnapshotError` naming both kinds.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    manifest, body = _parse_manifest(data, path)
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"{path}: snapshot format version {version!r} is not supported by this "
            f"build (expected {SNAPSHOT_FORMAT_VERSION}); re-create the snapshot with "
            f"checkpoint() from a matching version"
        )
    if kind is not None and manifest.get("kind") != kind:
        raise SnapshotError(
            f"{path}: snapshot kind {manifest.get('kind')!r} does not match the "
            f"restoring engine ({kind!r}); use the engine class that wrote it"
        )
    entries = manifest.get("sections")
    if not isinstance(entries, list):
        raise SnapshotCorruptError(f"{path}: manifest has no section table")
    sections: Dict[str, Any] = {}
    offset = 0
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("name"), str)
            or not isinstance(entry.get("length"), int)
            or not isinstance(entry.get("sha256"), str)
        ):
            raise SnapshotCorruptError(f"{path}: malformed section table entry {entry!r}")
        name, length = entry["name"], entry["length"]
        blob = body[offset : offset + length]
        offset += length
        if len(blob) != length:
            raise SnapshotCorruptError(
                f"{path}: section {name!r} truncated ({len(blob)} of {length} bytes)"
            )
        if hashlib.sha256(blob).hexdigest() != entry["sha256"]:
            raise SnapshotCorruptError(f"{path}: section {name!r} checksum mismatch")
        try:
            sections[name] = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotCorruptError(
                f"{path}: section {name!r} payload is not valid JSON: {error}"
            ) from error
    if offset != len(body):
        raise SnapshotCorruptError(
            f"{path}: {len(body) - offset} trailing bytes after the last section"
        )
    return manifest, sections
