"""Crash-consistent checkpoint/restore for the StreamWorks engines.

The partial-match store *is* the algorithm's value: rebuilding it by
replaying the lateness horizon's worth of stream is quadratic in window
size, so a restart must resume from durable state instead.  This package
provides

* :mod:`repro.persistence.snapshot` -- the versioned, checksummed,
  atomically-written snapshot container (typed corruption errors, never a
  silent partial load);
* :mod:`repro.persistence.state` -- exact whole-engine state capture and
  reconstruction for :class:`~repro.core.engine.StreamWorksEngine` and
  :class:`~repro.core.sharded.ShardedStreamEngine`.

Users normally go through ``engine.checkpoint(path)`` /
``StreamWorksEngine.restore(path)`` (and the sharded equivalents), or set
``EngineConfig(checkpoint_every=N, checkpoint_path=...)`` for batch-cadence
autosaves.  The resume contract -- restore + remaining stream equals the
uninterrupted run byte for byte -- is held by the crash-at-every-boundary
differential suite in ``tests/test_checkpoint.py``.
"""

from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    read_manifest,
    read_snapshot,
    write_snapshot,
)
from .state import (
    ENGINE_KIND,
    SHARDED_KIND,
    engine_sections,
    load_engine_sections,
    load_sharded_sections,
    sharded_sections,
)

__all__ = [
    "ENGINE_KIND",
    "SHARDED_KIND",
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "engine_sections",
    "load_engine_sections",
    "load_sharded_sections",
    "read_manifest",
    "read_snapshot",
    "sharded_sections",
    "write_snapshot",
]
