"""Whole-engine state capture and reconstruction (the snapshot payloads).

This module turns a live :class:`~repro.core.engine.StreamWorksEngine` (or
:class:`~repro.core.sharded.ShardedStreamEngine`) into the section payloads
of a snapshot file and back.  The contract is *exact resume*:

    ``restore(checkpoint(E))`` followed by the rest of the stream produces
    byte-for-byte the events (matches, order, sequence numbers) and the
    deterministic metrics the uninterrupted run produces.

Everything that influences future behaviour is therefore captured
explicitly: the window store with its index iteration orders, every
SJ-Tree's partial-match collections (bucket order included -- it decides
join candidate enumeration), the duplicate-suppression memory, the reorder
buffer's pending tail and watermark (including every per-source clock,
lateness estimate and the monotone watermark floor of the multi-source
buffer -- the ``kind`` tag in its payload picks the right class on load),
sampler RNG states, and every deterministic counter.  An engine fed
through an :class:`~repro.streaming.async_ingest.AsyncIngestFrontend`
checkpoints via ``frontend.checkpoint``, which quiesces admission first so
the buffer's pending tail here is exact.  Two things are deliberately
*not* captured:

* wall-clock measurements (latency samples, throughput elapsed time) are
  carried over as recorded but obviously cannot be byte-identical across a
  crash;
* ``on_match`` callbacks and custom sinks are arbitrary Python callables --
  the caller re-attaches them after ``restore()`` (the engine-owned
  collector, with its full event history, *is* restored).

Because the collector is append-only and fully captured, the ``events``
section -- and therefore autosave cost -- grows with every match ever
emitted, not with the window.  Long-running deployments that drain events
downstream should ``engine.collector.clear()`` periodically; future
matching is unaffected (in-flight state lives in the matchers).

Queries are persisted through :mod:`repro.query.serialize`; a query whose
predicates cannot round-trip (``CustomPredicate``) makes the engine
un-checkpointable and raises a :class:`~repro.persistence.snapshot.SnapshotError`
naming the query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping

from ..core.decomposition import Decomposition
from ..core.dispatch import DispatchIndex
from ..core.engine import (
    EngineConfig,
    RegisteredQuery,
    StreamWorksEngine,
    intern_query_vocabulary,
)
from ..core.matcher import ContinuousQueryMatcher
from ..core.planner import QueryPlan
from ..query.query_graph import QueryGraph
from ..graph.dynamic_graph import DynamicGraph
from ..graph.interning import InternTable
from ..graph.window import TimeWindow
from ..isomorphism.match import Match
from ..query.serialize import QuerySerializationError, query_from_dict, query_to_dict
from ..stats.plan_monitor import PlanMonitor
from ..stats.summarizer import StreamSummarizer
from ..streaming.events import MatchEvent
from ..streaming.metrics import LatencyRecorder, ThroughputMeter
from ..streaming.sources import reorder_buffer_from_state
from .snapshot import SnapshotCorruptError, SnapshotError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from ..core.sharded import ShardedStreamEngine

__all__ = [
    "ENGINE_KIND",
    "SHARDED_KIND",
    "engine_sections",
    "load_engine_sections",
    "sharded_sections",
    "load_sharded_sections",
]

#: Snapshot ``kind`` written by the single engine.
ENGINE_KIND = "streamworks-engine"
#: Snapshot ``kind`` written by the sharded engine.
SHARDED_KIND = "streamworks-sharded-engine"

#: EngineConfig attributes persisted verbatim (constructor keyword names).
_CONFIG_FIELDS = (
    "default_window",
    "collect_statistics",
    "track_triads",
    "triad_sample_cap",
    "dedupe_structural",
    "store_complete_matches",
    "plan_strategy",
    "primitive_size",
    "record_latency",
    "auto_replan_interval",
    "replan_threshold",
    "replan_check_every",
    "use_dispatch_index",
    "latency_sample_cap",
    "allowed_lateness",
    "late_policy",
    "idle_source_timeout",
    "checkpoint_every",
    "checkpoint_path",
    "sketch_dispatch",
    "dedup_memory_budget",
    "sketch_stats",
    "columnar",
)


# ----------------------------------------------------------------------
# small shared codecs
# ----------------------------------------------------------------------
def _config_state(config: EngineConfig) -> Dict[str, Any]:
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def _config_from_state(state: Mapping[str, Any]) -> EngineConfig:
    return EngineConfig(**dict(state))


def _window_state(window: TimeWindow) -> Dict[str, Any]:
    return {
        "duration": window.duration if window.bounded else None,
        "strict": window.strict,
    }


def _window_from_state(state: Mapping[str, Any]) -> TimeWindow:
    return TimeWindow(state["duration"], strict=state["strict"])


def _query_to_dict_checked(query: QueryGraph, owner: str) -> Dict[str, Any]:
    try:
        return query_to_dict(query)
    except QuerySerializationError as error:
        raise SnapshotError(
            f"registered query {owner!r} cannot be checkpointed: {error} "
            f"(CustomPredicate-bearing queries do not round-trip; re-register "
            f"them after restore instead)"
        ) from error


def _plan_state(plan: QueryPlan, owner: str) -> Dict[str, Any]:
    decomposition = plan.decomposition
    return {
        "strategy": plan.strategy,
        "decomposition_strategy": decomposition.strategy,
        "tree_shape": decomposition.tree_shape,
        "primitives": [
            _query_to_dict_checked(primitive, owner) for primitive in decomposition.primitives
        ],
        "estimates": [[name, value] for name, value in plan.estimates.items()],
        "summary_edge_count": plan.summary_edge_count,
    }


def _plan_from_state(query: QueryGraph, state: Mapping[str, Any]) -> QueryPlan:
    primitives = [query_from_dict(payload) for payload in state["primitives"]]
    estimates = {name: value for name, value in state["estimates"]}
    decomposition = Decomposition(
        query,
        primitives,
        strategy=state["decomposition_strategy"],
        tree_shape=state["tree_shape"],
        estimates=dict(estimates),
    )
    return QueryPlan(
        query=query,
        decomposition=decomposition,
        strategy=state["strategy"],
        estimates=estimates,
        summary_edge_count=state["summary_edge_count"],
    )


def _event_state(event: MatchEvent) -> Dict[str, Any]:
    return {
        "q": event.query_name,
        "m": event.match.state_dict(),
        "t": event.detected_at,
        "s": event.sequence,
        "i": event.trigger_index,
    }


def _event_from_state(state: Mapping[str, Any]) -> MatchEvent:
    return MatchEvent(
        query_name=state["q"],
        match=Match.from_state(state["m"]),
        detected_at=state["t"],
        sequence=state["s"],
        trigger_index=state["i"],
    )


def _dispatch_counters(dispatch: DispatchIndex) -> Dict[str, int]:
    # Only the counters travel: the sketch front's counting cells are
    # rebuilt exactly by the register() calls the loader replays (same
    # queries, same insertion order), so future false-positive patterns --
    # and therefore the restored counter stream -- stay byte-identical.
    return {
        "lookups": dispatch.lookups,
        "entries_matched": dispatch.entries_matched,
        "entries_skipped": dispatch.entries_skipped,
        "front_probes": dispatch.front_probes,
        "front_rejections": dispatch.front_rejections,
        "front_false_positives": dispatch.front_false_positives,
    }


# ----------------------------------------------------------------------
# single engine
# ----------------------------------------------------------------------
def engine_sections(engine: StreamWorksEngine) -> Dict[str, Any]:
    """Capture a single engine's full state as ordered snapshot sections."""
    queries = []
    for name, registration in engine.queries.items():
        matcher = registration.matcher
        queries.append(
            {
                "name": name,
                "query": _query_to_dict_checked(registration.query, name),
                "window": _window_state(registration.window),
                "plan": _plan_state(registration.plan, name),
                "dedupe_structural": matcher.dedupe_structural,
                "store_complete_matches": matcher.store_complete_matches,
                "match_count": registration.match_count,
                "plan_version": registration.plan_version,
                # shape marker only: compiled closures are never serialised.
                # Restore rebuilds the matcher, and matcher construction is
                # the compile point, so the loader recompiles and checks the
                # fresh tables against this marker.
                "compiled_plan": (
                    matcher.compiled.marker() if matcher.compiled is not None else None
                ),
                "matcher": matcher.state_dict(),
            }
        )
    return {
        "config": _config_state(engine.config),
        "interning": engine.interning.state_dict(),
        "graph": engine.graph.state_dict(),
        "summarizer": engine.summarizer.state_dict() if engine.summarizer is not None else None,
        # `is not None`, not truthiness: an EMPTY reorder buffer is falsy
        # (it has __len__), and dropping it would silently disable
        # event-time ingestion on the restored engine
        "reorder": engine.reorder.state_dict() if engine.reorder is not None else None,
        "queries": queries,
        "events": [_event_state(event) for event in engine.collector.events],
        "counters": {
            "sequence": engine._sequence,
            "edges_processed": engine.edges_processed,
            "records_batched": engine.records_batched,
            "records_per_record": engine.records_per_record,
            "records_dead_on_arrival": engine.records_dead_on_arrival,
            "event_time_watermark": engine.event_time_watermark,
            "batches_processed": engine.batches_processed,
            "checkpoint_epoch": engine.checkpoint_epoch,
            "throughput": engine.throughput.state_dict(),
            "latency": engine.latency.state_dict(),
            "dispatch": _dispatch_counters(engine.dispatch),
            "plan_monitor": engine.plan_monitor.state_dict(),
            "replan_next_check": engine._next_replan_check,
            "batches_vectorized": engine.batches_vectorized,
            "records_prefiltered": engine.records_prefiltered,
            "dispatch_memo_hits": engine.dispatch_memo_hits,
            "leaves_pruned": engine.leaves_pruned,
        },
    }


def load_engine_sections(sections: Mapping[str, Any]) -> StreamWorksEngine:
    """Rebuild a single engine from :func:`engine_sections` payloads."""
    try:
        config = _config_from_state(sections["config"])
        engine = StreamWorksEngine(config=config)
        engine.graph = DynamicGraph.from_state(sections["graph"])
        engine.summarizer = (
            StreamSummarizer.from_state(sections["summarizer"])
            if sections["summarizer"] is not None
            else None
        )
        engine.reorder = (
            # dispatch on the payload's "kind"; pre-multisource snapshots
            # are upgraded so the restored engine owns the multi-source
            # buffer a fresh engine would (register_source keeps working)
            reorder_buffer_from_state(sections["reorder"])
            if sections["reorder"] is not None
            else None
        )
        for payload in sections["queries"]:
            query = query_from_dict(payload["query"])
            window = _window_from_state(payload["window"])
            plan = _plan_from_state(query, payload["plan"])
            matcher = ContinuousQueryMatcher(
                query=query,
                decomposition=plan.decomposition,
                graph=engine.graph,
                window=window,
                dedupe_structural=payload["dedupe_structural"],
                store_complete_matches=payload["store_complete_matches"],
                dedup_memory_budget=config.dedup_memory_budget,
                # construction is the compile point: the restored matcher
                # runs on freshly compiled tables, never deserialised ones
                columnar=config.columnar,
            )
            marker = payload.get("compiled_plan")
            if marker is not None and matcher.compiled is not None:
                if matcher.compiled.marker() != marker:
                    raise SnapshotCorruptError(
                        f"query {payload['name']!r}: recompiled predicate "
                        f"tables {matcher.compiled.marker()} do not match the "
                        f"snapshot's compiled-plan marker {marker}"
                    )
            matcher.load_state(payload["matcher"])
            registration = RegisteredQuery(payload["name"], query, window, plan, matcher)
            registration.match_count = payload["match_count"]
            # pre-replan snapshots carry no version: they are plan version 0
            registration.plan_version = payload.get("plan_version", 0)
            engine.queries[payload["name"]] = registration
            engine.dispatch.register(payload["name"], matcher.tree.leaves())
            intern_query_vocabulary(engine.interning, query)
        interning_state = sections.get("interning")
        if interning_state is not None:
            # authoritative: includes stream-admitted labels with the exact
            # ids the pre-crash engine assigned
            engine.interning = InternTable.from_state(interning_state)
        else:
            # pre-columnar snapshot: no table was persisted.  Ids are
            # engine-internal (never serialised into events or matcher
            # state), so they need not match what a columnar engine would
            # have assigned live -- they only need to be deterministic,
            # which query vocabulary in registration order (above) plus
            # graph edge labels in insertion order gives.
            for edge in engine.graph.edges():
                engine.interning.intern(edge.label)
        counters = sections["counters"]
        engine._sequence = counters["sequence"]
        engine.edges_processed = counters["edges_processed"]
        engine.records_batched = counters["records_batched"]
        engine.records_per_record = counters["records_per_record"]
        engine.records_dead_on_arrival = counters["records_dead_on_arrival"]
        engine.event_time_watermark = float(counters["event_time_watermark"])
        engine.batches_processed = counters["batches_processed"]
        engine.checkpoint_epoch = counters["checkpoint_epoch"]
        engine.throughput = ThroughputMeter.from_state(counters["throughput"])
        engine.latency = LatencyRecorder.from_state(counters["latency"])
        dispatch_counters = counters["dispatch"]
        engine.dispatch.lookups = dispatch_counters["lookups"]
        engine.dispatch.entries_matched = dispatch_counters["entries_matched"]
        engine.dispatch.entries_skipped = dispatch_counters["entries_skipped"]
        # pre-sketch snapshots carry no front counters: the front started
        # from zero there too (sketch_dispatch defaulted off)
        engine.dispatch.front_probes = dispatch_counters.get("front_probes", 0)
        engine.dispatch.front_rejections = dispatch_counters.get("front_rejections", 0)
        engine.dispatch.front_false_positives = dispatch_counters.get(
            "front_false_positives", 0
        )
        # pre-replan snapshots: keep the fresh monitor / constructor cadence
        if "plan_monitor" in counters:
            engine.plan_monitor = PlanMonitor.from_state(counters["plan_monitor"])
        if "replan_next_check" in counters:
            engine._next_replan_check = counters["replan_next_check"]
        # pre-columnar snapshots: the hot path started from zero there too
        engine.batches_vectorized = counters.get("batches_vectorized", 0)
        engine.records_prefiltered = counters.get("records_prefiltered", 0)
        engine.dispatch_memo_hits = counters.get("dispatch_memo_hits", 0)
        engine.leaves_pruned = counters.get("leaves_pruned", 0)
        engine.collector.events.extend(
            _event_from_state(payload) for payload in sections["events"]
        )
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotCorruptError(
            f"snapshot payload is structurally valid but not loadable: {error!r}"
        ) from error
    return engine


# ----------------------------------------------------------------------
# sharded engine
# ----------------------------------------------------------------------
def sharded_sections(
    engine: "ShardedStreamEngine", shard_states: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Capture a sharded engine's parent state plus pre-collected shard states.

    ``shard_states`` is one :func:`engine_sections` payload per shard, in
    shard-id order -- collected by the caller because only it knows whether
    shard state lives in-process or in worker processes.
    """
    registrations = sorted(engine.queries.values(), key=lambda reg: reg.order)
    sections: Dict[str, Any] = {
        "config": {
            "shard_count": engine.config.shard_count,
            "workers": engine.config.workers,
            "routing": engine.config.routing,
            "engine": _config_state(engine.config.engine),
        },
        "queries": [
            {
                "name": registration.name,
                "query": _query_to_dict_checked(registration.query, registration.name),
                "shard_id": registration.shard_id,
                "order": registration.order,
                "cost": registration.cost,
                "window": _window_state(registration.window),
                "match_count": registration.match_count,
            }
            for registration in registrations
        ],
        # `is not None`: an empty parent buffer is falsy (see engine_sections)
        "reorder": engine.reorder.state_dict() if engine.reorder is not None else None,
        "events": [_event_state(event) for event in engine.collector.events],
        "counters": {
            "sequence": engine._sequence,
            "edges_processed": engine.edges_processed,
            "clock": engine._clock,
            "records_sent": list(engine._records_sent),
            "shard_loads": list(engine._shard_loads),
            "registration_seq": engine._registration_seq,
            "batches_processed": engine.batches_processed,
            "checkpoint_epoch": engine.checkpoint_epoch,
            "replan_next_check": engine._next_replan_check,
            "throughput": engine.throughput.state_dict(),
            "router": {
                "records_seen": engine.router.records_seen,
                "records_dropped": engine.router.records_dropped,
                "records_broadcast": engine.router.records_broadcast,
                "fanout_total": engine.router.fanout_total,
            },
        },
    }
    for shard_id, shard_state in enumerate(shard_states):
        sections[f"shard_{shard_id}"] = shard_state
    return sections


def load_sharded_sections(sections: Mapping[str, Any]) -> "ShardedStreamEngine":
    """Rebuild a sharded engine (serial state; pool restarts lazily) from sections."""
    from ..core.sharded import ShardConfig, ShardedQuery, ShardedStreamEngine

    try:
        config_state = sections["config"]
        config = ShardConfig(
            shard_count=config_state["shard_count"],
            workers=config_state["workers"],
            routing=config_state["routing"],
            engine=_config_from_state(config_state["engine"]),
        )
        engine = ShardedStreamEngine(config=config)
        engine.shards = [
            load_engine_sections(sections[f"shard_{shard_id}"])
            for shard_id in range(config.shard_count)
        ]
        for payload in sections["queries"]:
            query = query_from_dict(payload["query"])
            registration = ShardedQuery(
                payload["name"],
                query,
                payload["shard_id"],
                payload["order"],
                payload["cost"],
                window=_window_from_state(payload["window"]),
            )
            registration.match_count = payload["match_count"]
            engine.queries[payload["name"]] = registration
            engine.router.add_query(payload["shard_id"], query)
            # the parent table holds only query vocabulary (never stream
            # labels), so re-interning in registration order rebuilds it
            # exactly; the shards' own tables were restored verbatim above
            intern_query_vocabulary(engine.interning, query)
        engine.reorder = (
            reorder_buffer_from_state(sections["reorder"])
            if sections["reorder"] is not None
            else None
        )
        counters = sections["counters"]
        engine._sequence = counters["sequence"]
        engine.edges_processed = counters["edges_processed"]
        engine._clock = float(counters["clock"])
        engine._records_sent = list(counters["records_sent"])
        engine._shard_loads = [float(load) for load in counters["shard_loads"]]
        engine._registration_seq = counters["registration_seq"]
        engine.batches_processed = counters["batches_processed"]
        engine.checkpoint_epoch = counters["checkpoint_epoch"]
        # pre-replan snapshots: keep the constructor's cadence marker
        if "replan_next_check" in counters:
            engine._next_replan_check = counters["replan_next_check"]
        engine.throughput = ThroughputMeter.from_state(counters["throughput"])
        router_counters = counters["router"]
        engine.router.records_seen = router_counters["records_seen"]
        engine.router.records_dropped = router_counters["records_dropped"]
        engine.router.records_broadcast = router_counters["records_broadcast"]
        engine.router.fanout_total = router_counters["fanout_total"]
        engine.collector.events.extend(
            _event_from_state(payload) for payload in sections["events"]
        )
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotCorruptError(
            f"snapshot payload is structurally valid but not loadable: {error!r}"
        ) from error
    return engine
