"""Query graph model.

A query graph ``Gq`` is a small typed pattern: query vertices are variables
constrained by a vertex label and optional attribute predicates, query edges
are constrained by an edge label, direction and optional attribute
predicates.  A match binds every query vertex to a distinct data vertex and
every query edge to a data edge so that adjacency, labels and predicates are
respected (paper section 2.1).

The class also provides the subgraph/union/intersection operations the
SJ-Tree decomposition relies on (paper section 3.2, Properties 1-4):

* ``edge_subgraph`` extracts the query subgraph induced by a set of query
  edges (a *search primitive*);
* ``union`` implements the join operator ``G1 ⋈ G2`` on query subgraphs
  (vertex union + edge union);
* ``vertex_intersection`` yields the cut vertices shared by two subgraphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..graph.types import Direction
from .predicates import Predicate, always_true

__all__ = ["QueryVertex", "QueryEdge", "QueryGraph"]


class QueryVertex:
    """A query variable constrained by an optional vertex label and predicate.

    Parameters
    ----------
    name:
        Variable name, unique within the query graph (e.g. ``"a1"``).
    label:
        Required vertex label; ``None`` matches any label.
    predicate:
        Attribute predicate; defaults to accept-all.
    """

    __slots__ = ("name", "label", "predicate")

    def __init__(self, name: str, label: Optional[str] = None, predicate: Predicate = always_true):
        self.name = name
        self.label = label
        self.predicate = predicate

    def matches_vertex(self, label: str, attrs: Mapping) -> bool:
        """Return ``True`` when a data vertex with this label/attrs satisfies the constraints."""
        if self.label is not None and self.label != label:
            return False
        return self.predicate(attrs)

    def describe(self) -> str:
        """Return a compact description such as ``(k:Keyword {label='politics'})``."""
        label = f":{self.label}" if self.label else ""
        pred = self.predicate.describe()
        suffix = "" if pred == "*" else f" {{{pred}}}"
        return f"({self.name}{label}{suffix})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryVertex({self.name!r}, label={self.label!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryVertex):
            return NotImplemented
        return self.name == other.name and self.label == other.label

    def __hash__(self) -> int:
        return hash((self.name, self.label))


class QueryEdge:
    """A query edge constrained by label, direction and an attribute predicate.

    Parameters
    ----------
    edge_id:
        Identifier unique within the query graph (assigned by
        :class:`QueryGraph` when omitted).
    source, target:
        Names of the endpoint query vertices.  For ``directed=False`` the
        orientation is ignored during matching.
    label:
        Required edge label; ``None`` matches any label.
    predicate:
        Attribute predicate; defaults to accept-all.
    directed:
        Whether the edge orientation must be respected (default ``True``).
    """

    __slots__ = ("id", "source", "target", "label", "predicate", "directed")

    def __init__(
        self,
        edge_id: int,
        source: str,
        target: str,
        label: Optional[str] = None,
        predicate: Predicate = always_true,
        directed: bool = True,
    ):
        self.id = edge_id
        self.source = source
        self.target = target
        self.label = label
        self.predicate = predicate
        self.directed = directed

    @property
    def endpoints(self) -> Tuple[str, str]:
        """Return ``(source, target)`` variable names."""
        return (self.source, self.target)

    def other_endpoint(self, name: str) -> str:
        """Return the endpoint opposite to ``name``."""
        if name == self.source:
            return self.target
        if name == self.target:
            return self.source
        raise ValueError(f"{name!r} is not an endpoint of query edge {self.id}")

    def touches(self, name: str) -> bool:
        """Return ``True`` when ``name`` is an endpoint of this query edge."""
        return name == self.source or name == self.target

    def matches_edge_label(self, label: str, attrs: Mapping) -> bool:
        """Return ``True`` when a data edge with this label/attrs satisfies the constraints."""
        if self.label is not None and self.label != label:
            return False
        return self.predicate(attrs)

    def describe(self) -> str:
        """Return a compact description such as ``a -[mentions]-> k``."""
        label = self.label if self.label else "*"
        arrow = "->" if self.directed else "-"
        return f"{self.source} -[{label}]{arrow} {self.target}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryEdge({self.id}, {self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryEdge):
            return NotImplemented
        return (
            self.id == other.id
            and self.source == other.source
            and self.target == other.target
            and self.label == other.label
            and self.directed == other.directed
        )

    def __hash__(self) -> int:
        return hash((self.id, self.source, self.target, self.label, self.directed))


class QueryGraph:
    """A small typed pattern over which continuous matching is performed.

    The graph is a directed multigraph of :class:`QueryVertex` /
    :class:`QueryEdge`.  Query graphs are also used to represent *search
    primitives* and internal SJ-Tree subgraphs, hence the emphasis on cheap
    subgraph/union/intersection operations.
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._vertices: Dict[str, QueryVertex] = {}
        self._edges: Dict[int, QueryEdge] = {}
        self._incident: Dict[str, Set[int]] = defaultdict(set)
        self._next_edge_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        name: str,
        label: Optional[str] = None,
        predicate: Predicate = always_true,
    ) -> QueryVertex:
        """Add a query vertex (idempotent for identical re-adds)."""
        existing = self._vertices.get(name)
        if existing is not None:
            if label is not None and existing.label is None:
                # allow tightening an implicitly-created vertex
                existing = QueryVertex(name, label, predicate)
                self._vertices[name] = existing
            return existing
        vertex = QueryVertex(name, label, predicate)
        self._vertices[name] = vertex
        return vertex

    def add_edge(
        self,
        source: str,
        target: str,
        label: Optional[str] = None,
        predicate: Predicate = always_true,
        directed: bool = True,
        edge_id: Optional[int] = None,
    ) -> QueryEdge:
        """Add a query edge; missing endpoints are created unconstrained."""
        if source not in self._vertices:
            self.add_vertex(source)
        if target not in self._vertices:
            self.add_vertex(target)
        if edge_id is None:
            edge_id = self._next_edge_id
            self._next_edge_id += 1
        else:
            if edge_id in self._edges:
                raise ValueError(f"query edge id {edge_id} already present")
            self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = QueryEdge(edge_id, source, target, label, predicate, directed)
        self._edges[edge_id] = edge
        self._incident[source].add(edge_id)
        self._incident[target].add(edge_id)
        return edge

    def add_query_vertex(self, vertex: QueryVertex) -> QueryVertex:
        """Add a pre-built query vertex object."""
        self._vertices[vertex.name] = vertex
        return vertex

    def add_query_edge(self, edge: QueryEdge) -> QueryEdge:
        """Add a pre-built query edge object, preserving its id."""
        if edge.id in self._edges:
            raise ValueError(f"query edge id {edge.id} already present")
        for endpoint in edge.endpoints:
            if endpoint not in self._vertices:
                self.add_vertex(endpoint)
        self._edges[edge.id] = edge
        self._incident[edge.source].add(edge.id)
        self._incident[edge.target].add(edge.id)
        self._next_edge_id = max(self._next_edge_id, edge.id + 1)
        return edge

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def vertex(self, name: str) -> QueryVertex:
        """Return the query vertex with the given variable name."""
        return self._vertices[name]

    def has_vertex(self, name: str) -> bool:
        """Return ``True`` when the variable exists in the query."""
        return name in self._vertices

    def edge(self, edge_id: int) -> QueryEdge:
        """Return the query edge with the given id."""
        return self._edges[edge_id]

    def has_edge(self, edge_id: int) -> bool:
        """Return ``True`` when the query edge id exists."""
        return edge_id in self._edges

    def vertices(self) -> Iterator[QueryVertex]:
        """Iterate over query vertices."""
        return iter(self._vertices.values())

    def vertex_names(self) -> Set[str]:
        """Return the set of variable names."""
        return set(self._vertices.keys())

    def edges(self) -> Iterator[QueryEdge]:
        """Iterate over query edges."""
        return iter(self._edges.values())

    def edge_ids(self) -> Set[int]:
        """Return the set of query edge ids."""
        return set(self._edges.keys())

    def vertex_count(self) -> int:
        """Return the number of query vertices."""
        return len(self._vertices)

    def edge_count(self) -> int:
        """Return the number of query edges."""
        return len(self._edges)

    def incident_edges(self, name: str) -> List[QueryEdge]:
        """Return the query edges incident to a variable."""
        return [self._edges[eid] for eid in self._incident.get(name, ())]

    def degree(self, name: str) -> int:
        """Return the degree of a query vertex."""
        return len(self._incident.get(name, ()))

    def neighbors(self, name: str) -> Set[str]:
        """Return the neighbouring variable names."""
        result: Set[str] = set()
        for edge in self.incident_edges(name):
            result.add(edge.other_endpoint(name) if edge.source != edge.target else name)
        return result

    # ------------------------------------------------------------------
    # structure operations used by the SJ-Tree
    # ------------------------------------------------------------------
    def edge_subgraph(self, edge_ids: Iterable[int], name: Optional[str] = None) -> "QueryGraph":
        """Return the subgraph induced by ``edge_ids`` (a search primitive)."""
        sub = QueryGraph(name or f"{self.name}[sub]")
        for edge_id in sorted(set(edge_ids)):
            edge = self.edge(edge_id)
            for endpoint in edge.endpoints:
                if not sub.has_vertex(endpoint):
                    sub.add_query_vertex(self._vertices[endpoint])
            sub.add_query_edge(edge)
        return sub

    def union(self, other: "QueryGraph", name: Optional[str] = None) -> "QueryGraph":
        """Return the join ``self ⋈ other``: union of vertices and edges.

        This is the paper's join operator on query subgraphs (Property 2):
        ``V3 = V1 ∪ V2`` and ``E3 = E1 ∪ E2``.  Edges present in both inputs
        (same id) appear once.
        """
        result = QueryGraph(name or f"({self.name})∪({other.name})")
        for vertex in list(self.vertices()) + list(other.vertices()):
            if not result.has_vertex(vertex.name):
                result.add_query_vertex(vertex)
        for edge in list(self.edges()) + list(other.edges()):
            if not result.has_edge(edge.id):
                result.add_query_edge(edge)
        return result

    def vertex_intersection(self, other: "QueryGraph") -> Set[str]:
        """Return the variable names shared with ``other`` (the join cut)."""
        return self.vertex_names() & other.vertex_names()

    def is_connected(self) -> bool:
        """Return ``True`` when the query graph is weakly connected (or empty)."""
        if not self._vertices:
            return True
        names = list(self._vertices.keys())
        seen: Set[str] = set()
        stack = [names[0]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.neighbors(current) - seen)
        return len(seen) == len(self._vertices)

    def connected_components(self) -> List[Set[str]]:
        """Return the weakly connected components as sets of variable names."""
        remaining = set(self._vertices.keys())
        components: List[Set[str]] = []
        while remaining:
            start = next(iter(remaining))
            component: Set[str] = set()
            stack = [start]
            while stack:
                current = stack.pop()
                if current in component:
                    continue
                component.add(current)
                stack.extend(self.neighbors(current) - component)
            components.append(component)
            remaining -= component
        return components

    def same_structure(self, other: "QueryGraph") -> bool:
        """Return ``True`` when both graphs contain exactly the same vertex names and edge ids.

        This is the (cheap) equivalence used for SJ-Tree Property 1/2 checks:
        SJ-Tree node subgraphs are always built from the *same* underlying
        query graph, so identity of edge-id sets and vertex-name sets is the
        right notion of "isomorphic" here.
        """
        return self.vertex_names() == other.vertex_names() and self.edge_ids() == other.edge_ids()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def edge_signature(self, edge: QueryEdge) -> Tuple:
        """Return a hashable signature describing an edge's type constraints.

        The signature is ``(source label, edge label, target label,
        directed)`` and is the key used by statistics-based selectivity
        estimation.
        """
        return (
            self._vertices[edge.source].label,
            edge.label,
            self._vertices[edge.target].label,
            edge.directed,
        )

    def describe(self) -> str:
        """Return a multi-line human-readable description of the pattern."""
        lines = [f"QueryGraph {self.name!r}: {self.vertex_count()} vertices, {self.edge_count()} edges"]
        for vertex in sorted(self._vertices.values(), key=lambda v: v.name):
            lines.append(f"  {vertex.describe()}")
        for edge in sorted(self._edges.values(), key=lambda e: e.id):
            lines.append(f"  [{edge.id}] {edge.describe()}")
        return "\n".join(lines)

    def copy(self, name: Optional[str] = None) -> "QueryGraph":
        """Return a copy sharing vertex/edge objects (they are immutable in practice)."""
        result = QueryGraph(name or self.name)
        for vertex in self.vertices():
            result.add_query_vertex(vertex)
        for edge in self.edges():
            result.add_query_edge(edge)
        return result

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph({self.name!r}, |V|={self.vertex_count()}, |E|={self.edge_count()})"
