"""Fluent builder for query graphs.

The builder offers a compact way to write the query graphs that the paper's
target users register against the stream, e.g. the Fig. 2 news query::

    query = (
        QueryBuilder("common_topic_location")
        .vertex("k", "Keyword")
        .vertex("loc", "Location")
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .vertex("a3", "Article")
        .edge("a1", "k", "mentions")
        .edge("a1", "loc", "locatedIn")
        .edge("a2", "k", "mentions")
        .edge("a2", "loc", "locatedIn")
        .edge("a3", "k", "mentions")
        .edge("a3", "loc", "locatedIn")
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .predicates import And, AttrEquals, Predicate, always_true
from .query_graph import QueryGraph

__all__ = ["QueryBuilder"]


def _attrs_to_predicate(attrs: Optional[Mapping[str, Any]], predicate: Optional[Predicate]) -> Predicate:
    """Combine a dict of required attribute values and an explicit predicate."""
    parts = []
    if attrs:
        parts.extend(AttrEquals(key, value) for key, value in attrs.items())
    if predicate is not None:
        parts.append(predicate)
    if not parts:
        return always_true
    if len(parts) == 1:
        return parts[0]
    return And(parts)


class QueryBuilder:
    """Incrementally assemble a :class:`~repro.query.query_graph.QueryGraph`."""

    def __init__(self, name: str = "query"):
        self._graph = QueryGraph(name)

    def vertex(
        self,
        name: str,
        label: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Predicate] = None,
    ) -> "QueryBuilder":
        """Declare a query vertex.

        ``attrs`` is shorthand for one :class:`AttrEquals` per key; an
        explicit ``predicate`` is AND-ed with it.
        """
        self._graph.add_vertex(name, label, _attrs_to_predicate(attrs, predicate))
        return self

    def edge(
        self,
        source: str,
        target: str,
        label: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Predicate] = None,
        directed: bool = True,
    ) -> "QueryBuilder":
        """Declare a query edge between two (possibly implicit) vertices."""
        self._graph.add_edge(
            source,
            target,
            label,
            _attrs_to_predicate(attrs, predicate),
            directed=directed,
        )
        return self

    def undirected_edge(
        self,
        source: str,
        target: str,
        label: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Predicate] = None,
    ) -> "QueryBuilder":
        """Declare an orientation-insensitive query edge."""
        return self.edge(source, target, label, attrs, predicate, directed=False)

    def build(self) -> QueryGraph:
        """Return the assembled query graph.

        Raises
        ------
        ValueError
            If the pattern has no edges or is not weakly connected --
            StreamWorks queries are connected patterns (a disconnected
            pattern would force unconstrained cross products during joins).
        """
        if self._graph.edge_count() == 0:
            raise ValueError("a query graph needs at least one edge")
        if not self._graph.is_connected():
            raise ValueError(
                f"query graph {self._graph.name!r} is not connected; "
                "register each connected component as its own query"
            )
        return self._graph
