"""(De)serialisation of query graphs.

Registered queries are long-lived objects: a monitoring deployment wants to
persist them, ship them between processes, and audit what is currently
registered.  This module converts query graphs to and from plain dictionaries
(and JSON strings) -- including the structured predicate algebra, which is
rebuilt class-by-class.  ``CustomPredicate`` wraps arbitrary Python callables
and therefore cannot round-trip; attempting to serialise one raises
:class:`QuerySerializationError` rather than silently dropping the constraint.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from .predicates import (
    And,
    AttrCompare,
    AttrEquals,
    AttrExists,
    AttrIn,
    AttrRange,
    Not,
    Or,
    Predicate,
    TruePredicate,
    always_true,
)
from .query_graph import QueryGraph

__all__ = [
    "QuerySerializationError",
    "predicate_to_dict",
    "predicate_from_dict",
    "query_to_dict",
    "query_from_dict",
    "query_to_json",
    "query_from_json",
]


class QuerySerializationError(ValueError):
    """Raised when a query (or predicate) cannot be serialised or parsed."""


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def predicate_to_dict(predicate: Predicate) -> Dict[str, Any]:
    """Convert a structured predicate into a JSON-friendly dictionary."""
    if isinstance(predicate, TruePredicate):
        return {"type": "true"}
    if isinstance(predicate, AttrEquals):
        return {"type": "equals", "key": predicate.key, "value": predicate.value}
    if isinstance(predicate, AttrIn):
        return {"type": "in", "key": predicate.key, "values": sorted(predicate.values, key=repr)}
    if isinstance(predicate, AttrRange):
        return {
            "type": "range",
            "key": predicate.key,
            "low": predicate.low,
            "high": predicate.high,
            "low_exclusive": predicate.low_exclusive,
            "high_exclusive": predicate.high_exclusive,
        }
    if isinstance(predicate, AttrExists):
        return {"type": "exists", "key": predicate.key}
    if isinstance(predicate, AttrCompare):
        return {"type": "compare", "key": predicate.key, "op": predicate.op, "value": predicate.value}
    if isinstance(predicate, And):
        return {"type": "and", "parts": [predicate_to_dict(part) for part in predicate.predicates]}
    if isinstance(predicate, Or):
        return {"type": "or", "parts": [predicate_to_dict(part) for part in predicate.predicates]}
    if isinstance(predicate, Not):
        return {"type": "not", "part": predicate_to_dict(predicate.predicate)}
    raise QuerySerializationError(
        f"predicate {predicate.describe()!r} of type {type(predicate).__name__} is not serialisable"
    )


def predicate_from_dict(payload: Mapping[str, Any]) -> Predicate:
    """Rebuild a predicate from :func:`predicate_to_dict` output."""
    kind = payload.get("type")
    if kind == "true":
        return always_true
    if kind == "equals":
        return AttrEquals(payload["key"], payload["value"])
    if kind == "in":
        return AttrIn(payload["key"], payload["values"])
    if kind == "range":
        return AttrRange(
            payload["key"],
            payload.get("low"),
            payload.get("high"),
            payload.get("low_exclusive", False),
            payload.get("high_exclusive", False),
        )
    if kind == "exists":
        return AttrExists(payload["key"])
    if kind == "compare":
        return AttrCompare(payload["key"], payload["op"], payload["value"])
    if kind == "and":
        return And([predicate_from_dict(part) for part in payload["parts"]])
    if kind == "or":
        return Or([predicate_from_dict(part) for part in payload["parts"]])
    if kind == "not":
        return Not(predicate_from_dict(payload["part"]))
    raise QuerySerializationError(f"unknown predicate type {kind!r}")


# ----------------------------------------------------------------------
# query graphs
# ----------------------------------------------------------------------
def query_to_dict(query: QueryGraph) -> Dict[str, Any]:
    """Convert a query graph into a JSON-friendly dictionary."""
    return {
        "name": query.name,
        "vertices": [
            {
                "name": vertex.name,
                "label": vertex.label,
                "predicate": predicate_to_dict(vertex.predicate),
            }
            for vertex in sorted(query.vertices(), key=lambda v: v.name)
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "directed": edge.directed,
                "predicate": predicate_to_dict(edge.predicate),
            }
            for edge in sorted(query.edges(), key=lambda e: e.id)
        ],
    }


def query_from_dict(payload: Mapping[str, Any]) -> QueryGraph:
    """Rebuild a query graph from :func:`query_to_dict` output."""
    try:
        query = QueryGraph(payload.get("name", "query"))
        for vertex in payload["vertices"]:
            query.add_vertex(
                vertex["name"],
                vertex.get("label"),
                predicate_from_dict(vertex.get("predicate", {"type": "true"})),
            )
        for edge in payload["edges"]:
            query.add_edge(
                edge["source"],
                edge["target"],
                edge.get("label"),
                predicate_from_dict(edge.get("predicate", {"type": "true"})),
                directed=edge.get("directed", True),
                edge_id=edge.get("id"),
            )
    except (KeyError, TypeError) as error:
        raise QuerySerializationError(f"malformed query payload: {error}") from error
    return query


def query_to_json(query: QueryGraph, indent: int = 2) -> str:
    """Serialise a query graph as a JSON string."""
    return json.dumps(query_to_dict(query), indent=indent, default=str)


def query_from_json(text: str) -> QueryGraph:
    """Parse a query graph from a JSON string produced by :func:`query_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise QuerySerializationError(f"invalid JSON: {error}") from error
    return query_from_dict(payload)
