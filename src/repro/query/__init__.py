"""Query model: typed graph patterns with attribute predicates.

The package contains the query graph representation (:class:`QueryGraph`),
the predicate algebra used to constrain vertex/edge attributes, a fluent
:class:`QueryBuilder` and a small Cypher-flavoured text parser
(:func:`parse_query`).
"""

from .builder import QueryBuilder
from .parser import ParsedQuery, QueryParseError, parse_query
from .serialize import (
    QuerySerializationError,
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
)
from .predicates import (
    And,
    AttrCompare,
    AttrEquals,
    AttrExists,
    AttrIn,
    AttrRange,
    CustomPredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    always_true,
)
from .query_graph import QueryEdge, QueryGraph, QueryVertex

__all__ = [
    "And",
    "AttrCompare",
    "AttrEquals",
    "AttrExists",
    "AttrIn",
    "AttrRange",
    "CustomPredicate",
    "Not",
    "Or",
    "ParsedQuery",
    "Predicate",
    "QueryBuilder",
    "QueryEdge",
    "QueryGraph",
    "QueryParseError",
    "QuerySerializationError",
    "QueryVertex",
    "TruePredicate",
    "always_true",
    "parse_query",
    "query_from_dict",
    "query_from_json",
    "query_to_dict",
    "query_to_json",
]
