"""Attribute predicates for query vertices and edges.

A StreamWorks query constrains vertices and edges by *type* (label) and by
*attribute predicates* -- e.g. "a Keyword vertex whose ``label`` attribute is
``politics``" (Fig. 5 of the paper) or "a flow edge whose destination port is
53".  Predicates are small composable objects so that query plans can inspect
them (the planner uses equality predicates to sharpen selectivity estimates)
and so that queries can be serialised.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

__all__ = [
    "Predicate",
    "TruePredicate",
    "AttrEquals",
    "AttrIn",
    "AttrRange",
    "AttrExists",
    "AttrCompare",
    "And",
    "Or",
    "Not",
    "CustomPredicate",
    "always_true",
]


class Predicate:
    """Base class: a boolean test over an attribute mapping."""

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)

    # -- introspection ---------------------------------------------------
    def equality_constraints(self) -> Mapping[str, Any]:
        """Return attribute equality constraints implied by this predicate.

        Used by the selectivity estimator: an equality constraint on an
        attribute typically restricts the candidate set far more than the
        label alone.  Predicates that imply no equality return ``{}``.
        """
        return {}

    def describe(self) -> str:
        """Return a short human-readable description."""
        return self.__class__.__name__


class TruePredicate(Predicate):
    """Predicate that accepts everything (the default for unconstrained items)."""

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return True

    def describe(self) -> str:
        return "*"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TruePredicate()"


#: Shared instance used as the default predicate everywhere.
always_true = TruePredicate()


class AttrEquals(Predicate):
    """``attrs[key] == value``; missing keys fail."""

    def __init__(self, key: str, value: Any):
        self.key = key
        self.value = value

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return key_present(attrs, self.key) and attrs[self.key] == self.value

    def equality_constraints(self) -> Mapping[str, Any]:
        return {self.key: self.value}

    def describe(self) -> str:
        return f"{self.key}={self.value!r}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttrEquals({self.key!r}, {self.value!r})"


class AttrIn(Predicate):
    """``attrs[key] in values``; missing keys fail."""

    def __init__(self, key: str, values: Iterable[Any]):
        self.key = key
        self.values = frozenset(values)

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return key_present(attrs, self.key) and attrs[self.key] in self.values

    def describe(self) -> str:
        return f"{self.key} in {sorted(map(repr, self.values))}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttrIn({self.key!r}, {sorted(map(repr, self.values))})"


class AttrRange(Predicate):
    """Closed/open numeric range test on ``attrs[key]``.

    ``low``/``high`` of ``None`` mean unbounded on that side; bounds are
    inclusive unless the corresponding ``*_exclusive`` flag is set.
    """

    def __init__(
        self,
        key: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
        low_exclusive: bool = False,
        high_exclusive: bool = False,
    ):
        if low is None and high is None:
            raise ValueError("AttrRange requires at least one bound")
        self.key = key
        self.low = low
        self.high = high
        self.low_exclusive = low_exclusive
        self.high_exclusive = high_exclusive

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        if not key_present(attrs, self.key):
            return False
        value = attrs[self.key]
        try:
            if self.low is not None:
                if self.low_exclusive:
                    if not value > self.low:
                        return False
                elif not value >= self.low:
                    return False
            if self.high is not None:
                if self.high_exclusive:
                    if not value < self.high:
                        return False
                elif not value <= self.high:
                    return False
        except TypeError:
            return False
        return True

    def describe(self) -> str:
        lo = "(-inf" if self.low is None else ("(" if self.low_exclusive else "[") + str(self.low)
        hi = "inf)" if self.high is None else str(self.high) + (")" if self.high_exclusive else "]")
        return f"{self.key} in {lo}, {hi}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttrRange({self.key!r}, {self.low}, {self.high})"


class AttrExists(Predicate):
    """``key in attrs``."""

    def __init__(self, key: str):
        self.key = key

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return key_present(attrs, self.key)

    def describe(self) -> str:
        return f"has {self.key}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttrExists({self.key!r})"


_COMPARATORS: Mapping[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class AttrCompare(Predicate):
    """Generic comparison ``attrs[key] <op> value`` with ``op`` in ``== != < <= > >=``."""

    def __init__(self, key: str, op: str, value: Any):
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparator {op!r}")
        self.key = key
        self.op = op
        self.value = value

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        if not key_present(attrs, self.key):
            return False
        try:
            return _COMPARATORS[self.op](attrs[self.key], self.value)
        except TypeError:
            return False

    def equality_constraints(self) -> Mapping[str, Any]:
        if self.op == "==":
            return {self.key: self.value}
        return {}

    def describe(self) -> str:
        return f"{self.key} {self.op} {self.value!r}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttrCompare({self.key!r}, {self.op!r}, {self.value!r})"


class And(Predicate):
    """Conjunction of predicates; an empty conjunction is true."""

    def __init__(self, predicates: Sequence[Predicate]):
        self.predicates = list(predicates)

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return all(p(attrs) for p in self.predicates)

    def equality_constraints(self) -> Mapping[str, Any]:
        merged: dict = {}
        for predicate in self.predicates:
            merged.update(predicate.equality_constraints())
        return merged

    def describe(self) -> str:
        return " AND ".join(p.describe() for p in self.predicates) or "*"

    def __repr__(self) -> str:  # pragma: no cover
        return f"And({self.predicates!r})"


class Or(Predicate):
    """Disjunction of predicates; an empty disjunction is false."""

    def __init__(self, predicates: Sequence[Predicate]):
        self.predicates = list(predicates)

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return any(p(attrs) for p in self.predicates)

    def describe(self) -> str:
        return "(" + " OR ".join(p.describe() for p in self.predicates) + ")"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Or({self.predicates!r})"


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return not self.predicate(attrs)

    def describe(self) -> str:
        return f"NOT ({self.predicate.describe()})"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Not({self.predicate!r})"


class CustomPredicate(Predicate):
    """Wrap an arbitrary callable; the planner treats it as opaque."""

    def __init__(self, fn: Callable[[Mapping[str, Any]], bool], description: str = "custom"):
        self.fn = fn
        self.description = description

    def __call__(self, attrs: Mapping[str, Any]) -> bool:
        return bool(self.fn(attrs))

    def describe(self) -> str:
        return self.description

    def __repr__(self) -> str:  # pragma: no cover
        return f"CustomPredicate({self.description!r})"


def key_present(attrs: Mapping[str, Any], key: str) -> bool:
    """Return ``True`` when ``key`` is present in ``attrs``."""
    return key in attrs
