"""One-time predicate compilation for the columnar hot path.

The interpreted matcher walks a :class:`~repro.query.predicates.Predicate`
tree per candidate edge/vertex: every test pays attribute lookups on the
predicate object (``self.key`` / ``self.low`` / ``self.op``), a dynamic
``__call__`` dispatch per tree node, and -- for compositions -- a generator
per evaluation.  None of that work depends on the candidate; it only
depends on the query, which is fixed at registration.

:func:`compile_predicate` does that query-dependent work exactly once,
producing a flat closure over pre-extracted constants.  The closure
replicates the interpreted semantics bit for bit:

* missing attribute keys fail (``AttrEquals`` / ``AttrIn`` / ``AttrRange``
  / ``AttrCompare``), ``AttrExists`` is pure key presence;
* ``AttrRange`` / ``AttrCompare`` treat a ``TypeError`` from the comparison
  (mixed-type attribute values) as ``False``, with the same bound and
  exclusivity logic;
* an empty ``And`` is true, an empty ``Or`` is false;
* :class:`~repro.query.predicates.CustomPredicate` (and any unknown
  ``Predicate`` subclass) is opaque and used as its own compiled form --
  it is already a callable of the right shape.

``None`` is the compiled form of "always true" (``TruePredicate`` and
compositions that reduce to it), so hot-path callers can skip the call
entirely.  The one observable difference is *evaluation count*, never
value: a disjunct after an always-true branch of an ``Or`` is provably
unreachable and is not evaluated.

:class:`CompiledQuery` maps a whole query's predicate trees into lookup
tables keyed by query-vertex name and query-edge id.  SJ-tree primitives
and node subgraphs share the originating query's ``QueryVertex`` /
``QueryEdge`` objects (``edge_subgraph`` / ``union`` / ``copy`` copy
references, not values), so one table per registered query covers every
subgraph the matcher touches.  Compiled tables are owned by the matcher
that built them -- never attached to the query objects themselves, which
may simultaneously drive a columnar and an interpreted engine.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from .predicates import (
    _COMPARATORS,
    And,
    AttrCompare,
    AttrEquals,
    AttrExists,
    AttrIn,
    AttrRange,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .query_graph import QueryEdge, QueryGraph, QueryVertex

__all__ = ["AttrCheck", "CompiledQuery", "compile_predicate", "referenced_attr_names"]

#: A compiled attribute test: same call shape as ``Predicate.__call__``.
AttrCheck = Callable[[Mapping[str, Any]], bool]


def _compile_equals(predicate: AttrEquals) -> AttrCheck:
    key, value = predicate.key, predicate.value

    def check(attrs: Mapping[str, Any]) -> bool:
        return key in attrs and bool(attrs[key] == value)

    return check


def _compile_in(predicate: AttrIn) -> AttrCheck:
    key, values = predicate.key, predicate.values

    def check(attrs: Mapping[str, Any]) -> bool:
        return key in attrs and attrs[key] in values

    return check


def _compile_exists(predicate: AttrExists) -> AttrCheck:
    key = predicate.key

    def check(attrs: Mapping[str, Any]) -> bool:
        return key in attrs

    return check


def _compile_range(predicate: AttrRange) -> AttrCheck:
    key = predicate.key
    low, high = predicate.low, predicate.high
    low_exclusive, high_exclusive = predicate.low_exclusive, predicate.high_exclusive

    def check(attrs: Mapping[str, Any]) -> bool:
        if key not in attrs:
            return False
        value = attrs[key]
        try:
            if low is not None:
                if low_exclusive:
                    if not value > low:
                        return False
                elif not value >= low:
                    return False
            if high is not None:
                if high_exclusive:
                    if not value < high:
                        return False
                elif not value <= high:
                    return False
        except TypeError:
            return False
        return True

    return check


def _compile_compare(predicate: AttrCompare) -> AttrCheck:
    key, value = predicate.key, predicate.value
    comparator = _COMPARATORS[predicate.op]

    def check(attrs: Mapping[str, Any]) -> bool:
        if key not in attrs:
            return False
        try:
            return bool(comparator(attrs[key], value))
        except TypeError:
            return False

    return check


def _compile_and(predicate: And) -> Optional[AttrCheck]:
    # always-true conjuncts contribute nothing; dropping them preserves the
    # short-circuit order of the rest
    parts = [compile_predicate(p) for p in predicate.predicates]
    checks: List[AttrCheck] = [part for part in parts if part is not None]
    if not checks:
        return None
    if len(checks) == 1:
        return checks[0]

    def check(attrs: Mapping[str, Any]) -> bool:
        for fn in checks:
            if not fn(attrs):
                return False
        return True

    return check


def _never(attrs: Mapping[str, Any]) -> bool:
    """Compiled form of a constantly-false predicate."""
    return False


def _compile_or(predicate: Or) -> Optional[AttrCheck]:
    parts = [compile_predicate(p) for p in predicate.predicates]
    if any(part is None for part in parts):
        # an always-true disjunct makes the whole disjunction true
        return None
    checks = [part for part in parts if part is not None]
    if not checks:
        return _never  # empty disjunction is false
    if len(checks) == 1:
        return checks[0]

    def check(attrs: Mapping[str, Any]) -> bool:
        for fn in checks:
            if fn(attrs):
                return True
        return False

    return check


def _compile_not(predicate: Not) -> AttrCheck:
    inner = compile_predicate(predicate.predicate)
    if inner is None:
        return _never

    def check(attrs: Mapping[str, Any]) -> bool:
        return not inner(attrs)

    return check


def compile_predicate(predicate: Predicate) -> Optional[AttrCheck]:
    """Compile a predicate tree into a flat closure; ``None`` = always true.

    Exact-type dispatch, deliberately: a user-defined ``Predicate``
    subclass may override ``__call__`` with semantics the structural
    compilers would silently miscompile, so anything but the known builder
    types falls back to the predicate object itself (already a correct,
    if slower, callable).
    """
    kind = type(predicate)
    if kind is TruePredicate:
        return None
    if kind is AttrEquals:
        return _compile_equals(predicate)  # type: ignore[arg-type]
    if kind is AttrIn:
        return _compile_in(predicate)  # type: ignore[arg-type]
    if kind is AttrExists:
        return _compile_exists(predicate)  # type: ignore[arg-type]
    if kind is AttrRange:
        return _compile_range(predicate)  # type: ignore[arg-type]
    if kind is AttrCompare:
        return _compile_compare(predicate)  # type: ignore[arg-type]
    if kind is And:
        return _compile_and(predicate)  # type: ignore[arg-type]
    if kind is Or:
        return _compile_or(predicate)  # type: ignore[arg-type]
    if kind is Not:
        return _compile_not(predicate)  # type: ignore[arg-type]
    # CustomPredicate and unknown subclasses: opaque but callable
    return predicate


def referenced_attr_names(predicate: Predicate) -> List[str]:
    """Return the attribute names a builder-constructed predicate tree reads.

    First-mention order, duplicates removed -- the deterministic order the
    engine interns attribute names in.  Opaque predicates (CustomPredicate
    and unknown subclasses) contribute nothing: their attribute access is
    invisible to static inspection.
    """
    names: List[str] = []
    seen: set = set()

    def walk(node: Predicate) -> None:
        kind = type(node)
        if kind in (AttrEquals, AttrIn, AttrExists, AttrRange, AttrCompare):
            key = node.key  # type: ignore[attr-defined]
            if key not in seen:
                seen.add(key)
                names.append(key)
        elif kind is And or kind is Or:
            for child in node.predicates:  # type: ignore[attr-defined]
                walk(child)
        elif kind is Not:
            walk(node.predicate)  # type: ignore[attr-defined]

    walk(predicate)
    return names


class CompiledQuery:
    """Per-query lookup tables of compiled predicate checks.

    Keyed by query-vertex *name* and query-edge *id*: those identities are
    stable across every SJ-tree subgraph of the query (the subgraphs share
    the original ``QueryVertex`` / ``QueryEdge`` objects), so the matcher
    resolves a check with one dict probe regardless of which tree node it
    is searching under.  A ``None`` check means always-true: skip the call.
    """

    __slots__ = ("vertex_checks", "edge_checks", "compiled_checks")

    def __init__(self, query: QueryGraph) -> None:
        self.vertex_checks: Dict[str, Optional[AttrCheck]] = {
            vertex.name: compile_predicate(vertex.predicate)
            for vertex in query.vertices()
        }
        self.edge_checks: Dict[int, Optional[AttrCheck]] = {
            edge.id: compile_predicate(edge.predicate) for edge in query.edges()
        }
        #: Non-trivial checks actually compiled (always-true slots excluded).
        self.compiled_checks: int = sum(
            1 for fn in self.vertex_checks.values() if fn is not None
        ) + sum(1 for fn in self.edge_checks.values() if fn is not None)

    # ------------------------------------------------------------------
    # hot-path checks (mirror candidates.edge_satisfies / vertex_satisfies)
    # ------------------------------------------------------------------
    def edge_ok(self, query_edge: QueryEdge, label: str, attrs: Mapping[str, Any]) -> bool:
        """Compiled equivalent of ``QueryEdge.matches_edge_label``."""
        if query_edge.label is not None and query_edge.label != label:
            return False
        fn = self.edge_checks[query_edge.id]
        return True if fn is None else fn(attrs)

    def vertex_ok(self, query_vertex: QueryVertex, label: str, attrs: Mapping[str, Any]) -> bool:
        """Compiled equivalent of ``QueryVertex.matches_vertex``."""
        if query_vertex.label is not None and query_vertex.label != label:
            return False
        fn = self.vertex_checks[query_vertex.name]
        return True if fn is None else fn(attrs)

    # ------------------------------------------------------------------
    # snapshot marker
    # ------------------------------------------------------------------
    def marker(self) -> Dict[str, int]:
        """Snapshot marker: compiled-table shape, for restore sanity checks.

        The closures themselves are never serialised -- restore rebuilds
        the matcher, and matcher construction recompiles from the query.
        """
        return {
            "vertices": len(self.vertex_checks),
            "edges": len(self.edge_checks),
            "compiled_checks": self.compiled_checks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledQuery(vertices={len(self.vertex_checks)}, "
            f"edges={len(self.edge_checks)}, compiled={self.compiled_checks})"
        )
