"""A tiny text query language for StreamWorks patterns.

The demo paper's target users compose queries visually (Fig. 4); this module
provides the programmatic equivalent -- a compact, Cypher-flavoured pattern
syntax so that queries can be written as strings::

    MATCH (a1:Article)-[:mentions]->(k:Keyword {label="politics"}),
          (a1:Article)-[:locatedIn]->(loc:Location),
          (a2:Article)-[:mentions]->(k),
          (a2:Article)-[:locatedIn]->(loc)
    WITHIN 3600

Supported features:

* node patterns ``(name:Label {attr=value, ...})`` -- the label and the
  attribute map are optional; re-using a name refers to the same variable;
* relationship patterns ``-[:label {attr=value}]->`` (directed right),
  ``<-[:label]-`` (directed left) and ``-[:label]-`` (undirected);
* comma-separated pattern chains of arbitrary length;
* an optional ``WITHIN <seconds>`` clause defining the query time window;
* ``#`` comments and free-form whitespace.

The parser returns a :class:`ParsedQuery` carrying the
:class:`~repro.query.query_graph.QueryGraph` and the optional window length.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from .predicates import And, AttrEquals, Predicate, always_true
from .query_graph import QueryGraph

__all__ = ["ParsedQuery", "QueryParseError", "parse_query"]


class QueryParseError(ValueError):
    """Raised when the query text cannot be parsed."""


class ParsedQuery(NamedTuple):
    """Result of :func:`parse_query`."""

    graph: QueryGraph
    window: Optional[float]


_NODE_RE = re.compile(
    r"""
    \(\s*
    (?P<name>[A-Za-z_][A-Za-z_0-9]*)?          # variable name (optional)
    \s*
    (?::\s*(?P<label>[A-Za-z_][A-Za-z_0-9]*))? # :Label (optional)
    \s*
    (?:\{(?P<attrs>[^}]*)\})?                  # {attr=value, ...} (optional)
    \s*\)
    """,
    re.VERBOSE,
)

_REL_RE = re.compile(
    r"""
    (?P<left><)?-\s*
    (?:\[\s*
        (?::\s*(?P<label>[A-Za-z_][A-Za-z_0-9]*))?
        \s*
        (?:\{(?P<attrs>[^}]*)\})?
    \s*\])?
    \s*-(?P<right>>)?
    """,
    re.VERBOSE,
)

_ATTR_ITEM_RE = re.compile(
    r"""
    \s*(?P<key>[A-Za-z_][A-Za-z_0-9]*)\s*
    (?:=|:)\s*
    (?P<value>
        "(?:[^"\\]|\\.)*"      # double-quoted string
        | '(?:[^'\\]|\\.)*'    # single-quoted string
        | [^,}]+               # bare token (number, bool, word)
    )\s*
    """,
    re.VERBOSE,
)

_WITHIN_RE = re.compile(r"\bWITHIN\s+(?P<window>[0-9]+(?:\.[0-9]+)?)\b", re.IGNORECASE)
_MATCH_RE = re.compile(r"^\s*MATCH\b", re.IGNORECASE)
_COMMENT_RE = re.compile(r"#[^\n]*")


def _parse_value(token: str) -> Any:
    token = token.strip()
    if not token:
        raise QueryParseError("empty attribute value")
    if (token[0] == '"' and token[-1] == '"') or (token[0] == "'" and token[-1] == "'"):
        body = token[1:-1]
        return body.replace("\\\"", '"').replace("\\'", "'")
    lowered = token.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "none"):
        return None
    try:
        if "." in token or "e" in lowered:
            return float(token)
        return int(token)
    except ValueError:
        # bare words are treated as strings ("politics" and politics are equivalent)
        return token


def _parse_attrs(body: Optional[str]) -> Dict[str, Any]:
    if not body or not body.strip():
        return {}
    attrs: Dict[str, Any] = {}
    position = 0
    while position < len(body):
        match = _ATTR_ITEM_RE.match(body, position)
        if match is None:
            raise QueryParseError(f"cannot parse attribute map near: {body[position:]!r}")
        attrs[match.group("key")] = _parse_value(match.group("value"))
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                raise QueryParseError(f"expected ',' in attribute map near: {body[position:]!r}")
            position += 1
    return attrs


def _attrs_predicate(attrs: Dict[str, Any]) -> Predicate:
    if not attrs:
        return always_true
    parts = [AttrEquals(key, value) for key, value in attrs.items()]
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def _split_patterns(text: str) -> List[str]:
    """Split the MATCH body on commas that are not inside parens/brackets/braces."""
    patterns: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            patterns.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        patterns.append("".join(current))
    return [pattern.strip() for pattern in patterns if pattern.strip()]


def parse_query(text: str, name: str = "query") -> ParsedQuery:
    """Parse a pattern expression into a query graph.

    Parameters
    ----------
    text:
        The query text (see module docstring for the grammar).
    name:
        Name given to the resulting :class:`QueryGraph`.

    Raises
    ------
    QueryParseError
        On any syntax problem, with an indication of the offending text.
    """
    stripped = _COMMENT_RE.sub("", text).strip()
    if not stripped:
        raise QueryParseError("empty query text")

    window: Optional[float] = None
    window_match = _WITHIN_RE.search(stripped)
    if window_match is not None:
        window = float(window_match.group("window"))
        stripped = stripped[: window_match.start()] + stripped[window_match.end():]

    match_clause = _MATCH_RE.match(stripped)
    if match_clause is not None:
        stripped = stripped[match_clause.end():]
    stripped = stripped.strip()
    if not stripped:
        raise QueryParseError("query has no pattern after MATCH")

    graph = QueryGraph(name)
    anonymous_counter = 0

    def parse_node(chunk: str, position: int) -> Tuple[str, int]:
        nonlocal anonymous_counter
        node_match = _NODE_RE.match(chunk, position)
        if node_match is None:
            raise QueryParseError(f"expected a node pattern near: {chunk[position:position + 40]!r}")
        var_name = node_match.group("name")
        if var_name is None:
            var_name = f"_anon{anonymous_counter}"
            anonymous_counter += 1
        label = node_match.group("label")
        attrs = _parse_attrs(node_match.group("attrs"))
        graph.add_vertex(var_name, label, _attrs_predicate(attrs))
        return var_name, node_match.end()

    for pattern in _split_patterns(stripped):
        position = 0
        left_name, position = parse_node(pattern, position)
        while position < len(pattern):
            remainder = pattern[position:].strip()
            if not remainder:
                break
            # skip whitespace between elements
            while position < len(pattern) and pattern[position].isspace():
                position += 1
            rel_match = _REL_RE.match(pattern, position)
            if rel_match is None or rel_match.end() == rel_match.start():
                raise QueryParseError(
                    f"expected a relationship pattern near: {pattern[position:position + 40]!r}"
                )
            position = rel_match.end()
            while position < len(pattern) and pattern[position].isspace():
                position += 1
            right_name, position = parse_node(pattern, position)

            label = rel_match.group("label")
            attrs = _parse_attrs(rel_match.group("attrs"))
            points_left = rel_match.group("left") is not None
            points_right = rel_match.group("right") is not None
            if points_left and points_right:
                raise QueryParseError("a relationship cannot point both ways")
            directed = points_left or points_right
            if points_left:
                source, target = right_name, left_name
            else:
                source, target = left_name, right_name
            graph.add_edge(source, target, label, _attrs_predicate(attrs), directed=directed)
            left_name = right_name

    if graph.edge_count() == 0:
        raise QueryParseError("query pattern contains no relationships")
    if not graph.is_connected():
        raise QueryParseError("query pattern must be connected")
    return ParsedQuery(graph=graph, window=window)
