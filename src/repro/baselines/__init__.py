"""Baseline engines the SJ-Tree incremental algorithm is compared against.

* :class:`RepeatedSearchEngine` -- re-run a full subgraph search per batch
  (the Fan et al. style strategy discussed in related work).
* :class:`NaiveIncrementalEngine` -- anchored whole-query search per edge
  without decomposition (the "simplistic approach" of paper section 3.1).
"""

from .naive_incremental import NaiveIncrementalEngine
from .repeated_search import RepeatedSearchEngine

__all__ = ["NaiveIncrementalEngine", "RepeatedSearchEngine"]
