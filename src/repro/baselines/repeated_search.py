"""Repeated-search baseline (the strategy the paper argues against).

Related work such as Fan et al. (SIGMOD'11) handles subgraph isomorphism on
updated graphs by *re-running the search* after each update batch.  This
module implements that strategy faithfully so the incremental SJ-Tree engine
has something honest to be compared with (experiment E7):

* edges are ingested into the same windowed dynamic-graph store;
* after each batch the full backtracking search runs over the retained graph
  (with the query's time window applied);
* matches already reported in a previous batch are filtered out, so the
  baseline's *output* is identical to the incremental engine's output --
  only the cost profile differs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..graph.dynamic_graph import DynamicGraph
from ..graph.window import TimeWindow
from ..isomorphism.match import Match
from ..isomorphism.vf2 import SubgraphMatcher
from ..query.query_graph import QueryGraph
from ..streaming.edge_stream import StreamEdge
from ..streaming.metrics import LatencyRecorder, Stopwatch

__all__ = ["RepeatedSearchEngine"]


class RepeatedSearchEngine:
    """Per-batch full re-search over the retained window graph."""

    def __init__(
        self,
        query: QueryGraph,
        window: Optional[float] = None,
        dedupe_structural: bool = False,
    ):
        self.query = query
        self.window = TimeWindow(window) if window is not None else TimeWindow(None)
        self.graph = DynamicGraph(window=self.window)
        self.dedupe_structural = dedupe_structural
        self._reported: Set[tuple] = set()
        self._reported_edge_sets: Set[frozenset] = set()
        self.batches_processed = 0
        self.edges_processed = 0
        self.total_matches = 0
        self.search_latency = LatencyRecorder()

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------
    def ingest_batch(self, records: Sequence[StreamEdge]) -> None:
        """Ingest a batch of edges without searching (used by custom loops)."""
        for record in records:
            self.graph.ingest(
                record.source,
                record.target,
                record.label,
                record.timestamp,
                record.attrs,
                source_label=record.source_label,
                target_label=record.target_label,
            )
            self.edges_processed += 1

    def search(self) -> List[Match]:
        """Run the full search over the current window graph; return *new* matches."""
        stopwatch = Stopwatch()
        stopwatch.start()
        matcher = SubgraphMatcher(self.graph, self.window)
        new_matches: List[Match] = []
        for match in matcher.find_matches(self.query):
            identity = match.identity()
            if identity in self._reported:
                continue
            if self.dedupe_structural:
                edge_set = match.structural_identity()
                if edge_set in self._reported_edge_sets:
                    continue
                self._reported_edge_sets.add(edge_set)
            self._reported.add(identity)
            new_matches.append(match)
        self.search_latency.record(stopwatch.stop())
        self.total_matches += len(new_matches)
        return new_matches

    def process_batch(self, records: Sequence[StreamEdge]) -> List[Match]:
        """Ingest a batch, re-run the search, and return the new matches."""
        self.ingest_batch(records)
        self.batches_processed += 1
        return self.search()

    def process_stream(self, stream: Iterable[StreamEdge], batch_size: int = 100) -> List[Match]:
        """Process an entire stream in fixed-size batches, returning all new matches."""
        batch: List[StreamEdge] = []
        results: List[Match] = []
        for record in stream:
            batch.append(record)
            if len(batch) >= batch_size:
                results.extend(self.process_batch(batch))
                batch = []
        if batch:
            results.extend(self.process_batch(batch))
        return results

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """Return batches/edges/matches counters and per-search latency summary."""
        return {
            "batches_processed": self.batches_processed,
            "edges_processed": self.edges_processed,
            "total_matches": self.total_matches,
            "search_latency": self.search_latency.summary(),
            "graph_edges": self.graph.edge_count(),
        }
