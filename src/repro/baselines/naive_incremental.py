"""Naive incremental baseline: per-edge anchored search of the *whole* query.

Paper section 3.1: "A simplistic approach to solving this problem would be to
check, for every edge update, if that edge matches one in the query graph.
Once an edge is considered as a matching candidate, the next step is to
consider different combinations of matches it can participate in."

That is exactly what this baseline does: for every incoming edge, seed the
backtracking matcher with the new edge bound to every query edge it can play
and enumerate all completions.  It produces the same matches as the SJ-Tree
engine (each complete match is found when its last edge arrives), but it

* never amortises work across edges -- partial structure discovered while an
  event is assembling is thrown away and re-derived, and
* explores every combination ordering, rather than the selectivity-driven
  join order the SJ-Tree enforces,

which is the combinatorial explosion the paper warns about.  It exists as a
correctness cross-check and as the second baseline in experiment E7/E8.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..graph.dynamic_graph import DynamicGraph
from ..graph.types import Edge
from ..graph.window import TimeWindow
from ..isomorphism.candidates import edge_orientations, edge_satisfies, vertex_satisfies
from ..isomorphism.match import Match, MatchConflictError
from ..isomorphism.vf2 import SubgraphMatcher
from ..query.query_graph import QueryGraph
from ..streaming.edge_stream import StreamEdge
from ..streaming.metrics import LatencyRecorder, Stopwatch

__all__ = ["NaiveIncrementalEngine"]


class NaiveIncrementalEngine:
    """Anchored whole-query search per incoming edge (no decomposition, no state)."""

    def __init__(
        self,
        query: QueryGraph,
        window: Optional[float] = None,
        dedupe_structural: bool = False,
    ):
        self.query = query
        self.window = TimeWindow(window) if window is not None else TimeWindow(None)
        self.graph = DynamicGraph(window=self.window)
        self.dedupe_structural = dedupe_structural
        self._reported: Set[tuple] = set()
        self._reported_edge_sets: Set[frozenset] = set()
        self.edges_processed = 0
        self.total_matches = 0
        self.seeded_searches = 0
        self.edge_latency = LatencyRecorder()

    # ------------------------------------------------------------------
    # per-edge processing
    # ------------------------------------------------------------------
    def _seeds(self, edge: Edge) -> List[Match]:
        seeds: List[Match] = []
        for query_edge in self.query.edges():
            if not edge_satisfies(edge, query_edge):
                continue
            for source_vertex, target_vertex in edge_orientations(edge, query_edge):
                if (query_edge.source == query_edge.target) != (source_vertex == target_vertex):
                    continue
                if not vertex_satisfies(self.graph, source_vertex, self.query.vertex(query_edge.source)):
                    continue
                if not vertex_satisfies(self.graph, target_vertex, self.query.vertex(query_edge.target)):
                    continue
                try:
                    seeds.append(
                        Match().with_binding(
                            query_edge.id,
                            edge,
                            {query_edge.source: source_vertex, query_edge.target: target_vertex},
                        )
                    )
                except MatchConflictError:
                    continue
        return seeds

    def process_record(self, record: StreamEdge) -> List[Match]:
        """Ingest one record and return the new complete matches it creates."""
        stopwatch = Stopwatch()
        stopwatch.start()
        edge = self.graph.ingest(
            record.source,
            record.target,
            record.label,
            record.timestamp,
            record.attrs,
            source_label=record.source_label,
            target_label=record.target_label,
        )
        self.edges_processed += 1
        matcher = SubgraphMatcher(self.graph, self.window)
        new_matches: List[Match] = []
        seen_this_edge: Set[tuple] = set()
        for seed in self._seeds(edge):
            self.seeded_searches += 1
            for match in matcher.find_matches(self.query, seed=seed):
                identity = match.identity()
                if identity in seen_this_edge or identity in self._reported:
                    continue
                seen_this_edge.add(identity)
                if self.dedupe_structural:
                    edge_set = match.structural_identity()
                    if edge_set in self._reported_edge_sets:
                        continue
                    self._reported_edge_sets.add(edge_set)
                self._reported.add(identity)
                new_matches.append(match)
        self.total_matches += len(new_matches)
        self.edge_latency.record(stopwatch.stop())
        return new_matches

    def process_batch(self, records: Sequence[StreamEdge]) -> List[Match]:
        """Process a batch record-by-record; return all new matches."""
        results: List[Match] = []
        for record in records:
            results.extend(self.process_record(record))
        return results

    def process_stream(self, stream: Iterable[StreamEdge]) -> List[Match]:
        """Process an entire stream; return all new matches."""
        return self.process_batch(list(stream))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """Return counters and the per-edge latency summary."""
        return {
            "edges_processed": self.edges_processed,
            "total_matches": self.total_matches,
            "seeded_searches": self.seeded_searches,
            "edge_latency": self.edge_latency.summary(),
            "graph_edges": self.graph.edge_count(),
        }
