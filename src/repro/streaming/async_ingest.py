"""Asynchronous ingestion front-end: admission off the matcher's thread.

The engines' event-time path is synchronous: ``process_batch`` admits into
the reorder buffer, advances watermarks and runs the matcher on whatever
was released -- all on the caller's thread.  Under production traffic that
couples producer hiccups to matcher latency in both directions: a slow
batch of matching stalls admission (the feed backs up), and a burst of
admissions stalls matching.  Incremental evaluation only stays cheap if
admission never waits on the matcher (cf. Berkholz et al., "Answering
FO+MOD queries under updates", arXiv:1702.08764 -- the update-processing
path must be decoupled from enumeration).

:class:`AsyncIngestFrontend` splits the two across threads with *zero*
semantic drift:

* a background **ingest thread** (stdlib :mod:`threading`, no new
  dependencies) owns the engine's reorder buffer: it pops submitted record
  batches from a bounded queue, admits them (sort + watermark bookkeeping)
  and parks each batch's watermark-released prefix on a ready queue;
* the **caller's thread** drains ready prefixes through the engine
  (:meth:`drain` / :meth:`flush`), so all matcher/graph state stays
  single-threaded.  On the sharded engine this is where the overlap pays:
  while the pool scheduler blocks on worker round-trips (releasing the
  GIL), the ingest thread is admitting the next batches.

**Equivalence contract.**  The ingest thread processes one submitted batch
at a time -- admit, drain the buffer once, capture the watermark -- which
is exactly the per-``process_batch`` release cadence of the synchronous
path.  Released prefixes are processed in submission order on one thread.
The event stream (matches, order, sequence numbers) after ``flush()`` or
``close()`` is therefore **byte-for-byte identical** to feeding the same
batches through ``engine.process_batch`` + ``engine.flush()`` -- pinned by
the conformance and crash-recovery tests.

**Checkpointing.**  :meth:`checkpoint` quiesces (waits until every
submitted batch is admitted), drains released work through the engine, and
then delegates to ``engine.checkpoint`` -- the buffer's pending tail is
engine state, so the snapshot captures it exactly.  Restore with the
engine class's ``restore`` and wrap the result in a fresh frontend.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .edge_stream import StreamEdge
from .events import MatchEvent

__all__ = ["AsyncIngestFrontend"]

#: Sentinel shutting the ingest thread down.
_STOP = object()


class AsyncIngestFrontend:
    """Threaded admission front-end over an event-time-configured engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.engine.StreamWorksEngine` or
        :class:`~repro.core.sharded.ShardedStreamEngine` whose config sets
        ``allowed_lateness`` (the frontend owns that reorder buffer while
        open).
    max_queue_batches:
        Bound on the submission queue; :meth:`submit` blocks once this many
        batches are waiting for admission (backpressure toward the
        producer, keeping memory proportional to the bound).

    Raises
    ------
    ValueError
        If the engine has no reorder buffer (event-time ingestion is not
        configured) or ``max_queue_batches`` is not positive.

    Threading contract: :meth:`submit` may be called from one producer
    thread; :meth:`drain` / :meth:`flush` / :meth:`checkpoint` /
    :meth:`close` must come from a single consumer thread (typically the
    same one), because they run the engine, whose state is deliberately
    not thread-safe.  While the frontend is open, do not call the engine's
    own ``process_*``/``flush`` directly -- admissions would race the
    ingest thread's view of the buffer.  Usable as a context manager
    (``close()`` on exit).
    """

    def __init__(self, engine: Any, max_queue_batches: int = 64):
        buffer = getattr(engine, "reorder", None)
        if buffer is None:
            raise ValueError(
                "AsyncIngestFrontend requires an event-time engine: configure "
                "EngineConfig(allowed_lateness=...) so the engine owns a reorder buffer"
            )
        if max_queue_batches <= 0:
            raise ValueError("max_queue_batches must be positive")
        engine_config = getattr(engine.config, "engine", engine.config)
        if engine_config.checkpoint_every is not None:
            # batch-cadence autosave fires inside process_batch, which the
            # frontend bypasses; an autosave racing the ingest thread could
            # also snapshot an inconsistent cut.  Refuse loudly instead of
            # silently never autosaving.
            raise ValueError(
                "EngineConfig(checkpoint_every=...) autosave is a synchronous-"
                "ingest feature; with AsyncIngestFrontend, call "
                "frontend.checkpoint(path) on your own cadence instead (it "
                "quiesces admission first)"
            )
        self.engine = engine
        self._buffer = buffer
        #: Guards the reorder buffer (shared: ingest thread admits, the
        #: consumer thread flushes/checkpoints).
        self._buffer_lock = threading.Lock()
        self._submitted: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue_batches)
        #: Released work in submission order: ``(ready, late, watermark)``.
        self._released: List[Tuple[List[StreamEdge], List[StreamEdge], float]] = []
        self._released_lock = threading.Lock()
        #: Sticky admission failure; shared with the ingest thread, so every
        #: access after __init__ holds ``_released_lock``.
        self._error: Optional[BaseException] = None
        self._closed = False
        # counters (exposed via stats())
        self.batches_submitted = 0
        self.batches_admitted = 0
        self.records_submitted = 0
        self.max_queue_depth = 0
        self._thread = threading.Thread(
            target=self._ingest_loop, name="streamworks-async-ingest", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # ingest thread
    # ------------------------------------------------------------------
    def _ingest_loop(self) -> None:
        while True:
            item = self._submitted.get()
            try:
                if item is _STOP:
                    return
                with self._released_lock:
                    poisoned = self._error is not None
                if poisoned:
                    continue  # drain the queue so join()/barrier never hang
                with self._buffer_lock:
                    late = self._buffer.offer_all(item)
                    ready = self._buffer.drain_ready()
                    watermark = self._buffer.watermark
                # park an item for EVERY batch (empty releases included):
                # drain() then mirrors the synchronous path call for call --
                # one _process_released + one batches_processed bump per
                # submitted batch -- so watermark stamps and batch counters
                # stay byte-identical to feeding process_batch directly
                with self._released_lock:
                    self._released.append((ready, late, watermark))
                    # bumped strictly AFTER the park, inside the same lock
                    # _quiesced reads the counters under: the gate on
                    # batches_admitted == batches_submitted can never hold
                    # while a popped batch's released prefix is still in
                    # the ingest thread's hands
                    self.batches_admitted += 1
            except BaseException as error:  # surfaced on the next API call
                with self._released_lock:
                    self._error = error
            finally:
                self._submitted.task_done()

    def _check_error(self) -> None:
        """Raise if the ingest thread failed.  The error is *sticky*: a failed
        admission may have left the buffer partially mutated, so the frontend
        stays poisoned (every later call raises too) rather than pretending
        the next call is healthy; only :meth:`close` still works (it stops
        the thread, then re-raises)."""
        with self._released_lock:
            error = self._error
        if error is not None:
            raise RuntimeError(
                "async ingest thread failed during admission; the frontend is "
                "unusable (the failed batch may be partially admitted)"
            ) from error

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, records: Sequence[StreamEdge]) -> None:
        """Enqueue one batch for admission; returns without waiting for it.

        Blocks only when the submission queue is full (backpressure).
        Events produced by whatever this batch releases are returned by a
        later :meth:`drain` / :meth:`flush` and are always available via
        ``engine.events()``.  Raises ``RuntimeError`` after :meth:`close`
        or if the ingest thread failed.
        """
        if self._closed:
            raise RuntimeError("submit() on a closed AsyncIngestFrontend")
        self._check_error()
        # counters share _released_lock with the ingest thread's admission
        # bookkeeping (NOT _buffer_lock: holding that here would serialise
        # the producer with admission and kill the ingest overlap)
        with self._released_lock:
            self.batches_submitted += 1
            self.records_submitted += len(records)
            depth = self._submitted.qsize() + 1
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
        self._submitted.put(list(records))

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def _take_released(self) -> List[Tuple[List[StreamEdge], List[StreamEdge], float]]:
        with self._released_lock:
            items, self._released = self._released, []
        return items

    def drain(self) -> List[MatchEvent]:
        """Run every currently-released prefix through the engine.

        Non-blocking with respect to admission: batches still queued or
        mid-admission are left for a later drain.  Returns the events in
        exactly the order the synchronous path would have produced them;
        also advances ``engine.batches_processed`` one-for-one with the
        submitted batches, as ``process_batch`` would.
        """
        self._check_error()
        events: List[MatchEvent] = []
        for ready, late, watermark in self._take_released():
            events.extend(self.engine._process_released(ready, late, watermark))
            self.engine.batches_processed += 1
        return events

    def _barrier(self) -> None:
        """Block until every submitted batch has been admitted to the buffer."""
        self._submitted.join()
        self._check_error()

    def _quiesced(self, action: Callable[[], Any]) -> Tuple[List[MatchEvent], Any]:
        """Drain to a clean submitted-batch boundary, then run ``action``.

        Loops barrier + drain until, *under the buffer lock*, no
        released-but-undrained work exists and every submitted batch has
        been fully admitted AND parked (``batches_admitted`` is bumped
        strictly after the ``_released`` append, so the counter equality
        cannot hold while a popped batch's prefix is still in the ingest
        thread's hands -- a plain queue-emptiness check would);
        ``action()`` then runs while the lock is still held, so a producer
        thread submitting concurrently can never strand a released prefix
        outside the cut — a batch it submits during the call simply lands
        after it.  With a producer that never pauses, the loop keeps
        chasing the queue until it catches it idle.  Returns ``(drained
        events, action result)``.
        """
        events: List[MatchEvent] = []
        while True:
            self._barrier()
            events.extend(self.drain())
            with self._buffer_lock:
                with self._released_lock:
                    clean = (
                        not self._released
                        and self.batches_admitted == self.batches_submitted
                    )
                if clean:
                    return events, action()

    def flush(self) -> List[MatchEvent]:
        """Synchronously drain everything: queue, buffer tail, late records.

        Quiesces to a submitted-batch boundary (see :meth:`_quiesced` — a
        concurrently-submitted batch cannot interleave its older released
        prefix after the flushed tail), processes every released prefix,
        then flushes the reorder buffer's remaining tail through the
        engine (end-of-stream).  After ``flush()`` the engine has
        processed exactly what the synchronous path would have --
        byte-for-byte.  The frontend stays usable (more ``submit`` calls
        may follow, as after ``engine.flush()``).
        """
        events, (remainder, watermark) = self._quiesced(
            lambda: (self._buffer.flush(), self._buffer.watermark)
        )
        if remainder:
            events.extend(self.engine._process_flushed(remainder, watermark))
        return events

    def checkpoint(self, path: str) -> Dict[str, Any]:
        """Quiesce and snapshot the engine at a submitted-batch boundary.

        Equivalent to checkpointing the synchronous engine after the same
        submitted batches: admission is quiesced (see :meth:`_quiesced`),
        released work is drained through the engine (those events are in
        ``engine.events()``), and the engine's own ``checkpoint`` captures
        graph, matchers, the reorder buffer's pending tail and all
        counters.  Returns the snapshot manifest.  Restore via the engine
        class's ``restore``, wrap the new engine in a new frontend, and
        ``close()`` this one (its ingest thread keeps running otherwise).
        """
        _, manifest = self._quiesced(lambda: self.engine.checkpoint(path))
        return manifest

    def close(self) -> List[MatchEvent]:
        """Flush synchronously, stop the ingest thread, return the tail's events.

        Idempotent: the first call returns whatever the final flush
        produced, later calls return ``[]``.  The ingest thread is stopped
        even when the final flush raises (a sticky admission error is
        re-raised *after* the thread is shut down), so a failed frontend
        never leaks its thread.  After ``close()`` the engine is
        exclusively the caller's again (its full event history is in
        ``engine.events()``).
        """
        if self._closed:
            return []
        try:
            return self.flush()
        finally:
            self._closed = True
            self._submitted.put(_STOP)
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "AsyncIngestFrontend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Return frontend counters (queue depths, batch/record totals)."""
        # _closed is a GIL-atomic flag flipped once by close(); it is read
        # outside the lock on purpose (taking _released_lock around every
        # flag read would buy nothing -- close() does not hold it either)
        closed = self._closed
        with self._released_lock:
            return {
                "batches_submitted": self.batches_submitted,
                "batches_admitted": self.batches_admitted,
                "records_submitted": self.records_submitted,
                "queue_depth": self._submitted.qsize(),
                "max_queue_depth": self.max_queue_depth,
                "released_pending": len(self._released),
                "closed": closed,
            }

    def metrics(self) -> Dict[str, Any]:
        """Return ``engine.metrics()`` augmented with ``{"async_ingest": stats}``.

        Taken under the buffer lock: ``engine.metrics()`` reads the shared
        reorder buffer (source map iteration, watermark computation), which
        the ingest thread mutates during admissions.
        """
        with self._buffer_lock:
            merged = self.engine.metrics()
        merged["async_ingest"] = self.stats()
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._released_lock:
            submitted = self.batches_submitted
        return (
            f"AsyncIngestFrontend(queued={self._submitted.qsize()}, "
            f"submitted={submitted}, closed={self._closed})"
        )
