"""Query-shard partitioning and stream routing for the sharded engine.

Query sharding is the classic correct-by-construction parallelisation for
standing-query streams: the *queries* are partitioned across N shards, each
shard runs a full engine over (a filtered view of) the same stream, and the
per-shard results are merged.  Because every shard sees every record its own
queries could possibly bind, no shard ever needs another shard's state.

This module holds the stream-layer half of that design, kept free of any
dependency on :mod:`repro.core` so the layering stays acyclic:

* :func:`greedy_partition` -- longest-processing-time assignment of query
  costs to shards (the classic 4/3-approximation to makespan balancing);
* :class:`LabelShardMap` -- the merged edge-label -> shard-set routing table
  built from every registered query's label signature;
* :class:`BatchRouter` -- fans a batch of :class:`StreamEdge` records out to
  the shards whose queries can bind them, tagging each record with its
  global stream index so per-shard match events can be merged back into the
  exact single-engine order.

Routing is *necessary-condition* filtering, like the per-engine dispatch
index one layer down: a shard is skipped only when none of its queries could
possibly bind the record, so filtering can never change the match set.  Two
conservative rules keep that guarantee:

* a query containing a wildcard (``label=None``) query edge forces its shard
  onto every record;
* in ``labels`` mode, a record carrying vertex attributes
  (``source_attrs`` / ``target_attrs``) is broadcast to every shard, because
  vertex attributes are shared mutable state that any query's predicates may
  later read.  ``broadcast`` mode sends every record to every shard (each
  shard then holds the full graph), which is the unconditionally safe mode
  for workloads whose vertex-attribute state is written by records outside
  the registered queries' label sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .edge_stream import StreamEdge

__all__ = [
    "Routing",
    "ShardBatch",
    "least_loaded_shard",
    "greedy_partition",
    "LabelShardMap",
    "BatchRouter",
]


class ShardBatch:
    """One shard's slice of a routed parent batch, with its time metadata.

    ``entries`` are ``(global stream index, record)`` pairs in global order
    (the index lets per-shard match events merge back into the exact
    single-engine order).  ``watermark`` is the event-time horizon the
    parent had reached when the batch was dispatched -- the reorder
    buffer's watermark when event-time ingestion is configured (under
    multi-source ingestion that is the *minimum across active per-source
    watermarks*, and with an async front-end it is captured at release
    time so an admission thread running ahead cannot skew it), otherwise
    the largest timestamp offered to the parent so far.  ``clock`` is the
    scheduler-opaque eviction/expiry payload the owning engine attaches so
    a worker process can mirror the single engine's sweep sequence without
    any shared state; the stream layer never interprets it.
    ``replan_checks`` is how many selectivity-drift replan checks the
    parent's global cadence says are due after this sub-batch -- the parent
    decides *when*, the shard engine applies them (equally opaque to the
    stream layer).
    """

    __slots__ = ("shard_id", "entries", "watermark", "clock", "replan_checks")

    def __init__(
        self,
        shard_id: int,
        entries: List[Tuple[int, StreamEdge]],
        watermark: float = float("-inf"),
        clock: object = None,
        replan_checks: int = 0,
    ):
        self.shard_id = shard_id
        self.entries = entries
        self.watermark = watermark
        self.clock = clock
        self.replan_checks = replan_checks

    def records(self) -> List[StreamEdge]:
        """Return the batch's records without their global indices."""
        return [record for _, record in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardBatch(shard={self.shard_id}, records={len(self.entries)}, "
            f"watermark={self.watermark})"
        )


class Routing:
    """Routing mode names for :class:`BatchRouter`."""

    LABELS = "labels"
    BROADCAST = "broadcast"

    ALL = (LABELS, BROADCAST)


def least_loaded_shard(loads: Sequence[float]) -> int:
    """Return the index of the least-loaded shard (lowest index on ties).

    The single greedy step shared by online assignment (queries registered
    one at a time take the currently lightest shard) and the offline
    :func:`greedy_partition`.
    """
    return min(range(len(loads)), key=lambda index: (loads[index], index))


def greedy_partition(
    costs: Mapping[str, float],
    shard_count: int,
    initial_loads: Optional[Sequence[float]] = None,
) -> Dict[str, int]:
    """Assign named costs to shards with longest-processing-time greedy balance.

    Items are sorted by descending cost (ties broken by name for
    determinism) and each is assigned to the currently least-loaded shard.
    ``initial_loads`` seeds the per-shard load (one entry per shard) so a
    batch of new items can balance *around* already-assigned ones.  Returns
    ``{name: shard id}``.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if initial_loads is None:
        loads = [0.0] * shard_count
    else:
        if len(initial_loads) != shard_count:
            raise ValueError("initial_loads must have one entry per shard")
        loads = [float(load) for load in initial_loads]
    assignment: Dict[str, int] = {}
    for name, cost in sorted(costs.items(), key=lambda item: (-item[1], item[0])):
        shard = least_loaded_shard(loads)
        assignment[name] = shard
        loads[shard] += cost
    return assignment


class LabelShardMap:
    """Merged edge-label -> shard-set routing table over all registered queries.

    Every registered query contributes its label signature (the set of edge
    labels its query edges accept, plus a wildcard flag when any query edge
    has ``label=None``) under the shard it was assigned to.  Lookups return
    the sorted set of shards that host at least one query which could bind
    an edge with the given label.  Reference-counted so queries can be
    removed without rebuilding.
    """

    def __init__(self) -> None:
        #: ``{edge label: {shard id: query count}}``
        self._by_label: Dict[str, Dict[int, int]] = {}
        #: ``{shard id: wildcard query count}``
        self._wildcard: Dict[int, int] = {}
        #: Memoized ``shards_for_label`` results; the routing table only
        #: changes on (un)registration, while lookups run once per routed
        #: record, so the hot path must not rebuild and sort shard sets.
        self._lookup_cache: Dict[str, List[int]] = {}

    @staticmethod
    def signature_of(query) -> Tuple[frozenset, bool]:
        """Return ``(label set, has wildcard)`` for a query graph."""
        labels = set()
        has_wildcard = False
        for edge in query.edges():
            if edge.label is None:
                has_wildcard = True
            else:
                labels.add(edge.label)
        return frozenset(labels), has_wildcard

    def add_query(self, shard_id: int, labels: Iterable[str], has_wildcard: bool) -> None:
        """Register one query's label signature under a shard."""
        self._lookup_cache.clear()
        for label in labels:
            bucket = self._by_label.setdefault(label, {})
            bucket[shard_id] = bucket.get(shard_id, 0) + 1
        if has_wildcard:
            self._wildcard[shard_id] = self._wildcard.get(shard_id, 0) + 1

    def remove_query(self, shard_id: int, labels: Iterable[str], has_wildcard: bool) -> None:
        """Drop one query's label signature (inverse of :meth:`add_query`)."""
        self._lookup_cache.clear()
        for label in labels:
            bucket = self._by_label.get(label)
            if not bucket:
                continue
            count = bucket.get(shard_id, 0) - 1
            if count > 0:
                bucket[shard_id] = count
            else:
                bucket.pop(shard_id, None)
                if not bucket:
                    del self._by_label[label]
        if has_wildcard:
            count = self._wildcard.get(shard_id, 0) - 1
            if count > 0:
                self._wildcard[shard_id] = count
            else:
                self._wildcard.pop(shard_id, None)

    def wildcard_shards(self) -> List[int]:
        """Return the shards hosting at least one wildcard query."""
        return sorted(self._wildcard)

    def shards_for_label(self, label: str) -> List[int]:
        """Return the sorted shards whose queries could bind an edge label."""
        cached = self._lookup_cache.get(label)
        if cached is None:
            shards = set(self._by_label.get(label, ()))
            shards.update(self._wildcard)
            cached = self._lookup_cache[label] = sorted(shards)
        return cached

    def labels(self) -> List[str]:
        """Return every edge label currently routed (wildcards excluded)."""
        return sorted(self._by_label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabelShardMap(labels={len(self._by_label)}, "
            f"wildcard_shards={self.wildcard_shards()})"
        )


class BatchRouter:
    """Fan batches of stream records out to the shards that can bind them.

    Parameters
    ----------
    shard_count:
        Total number of shards (shard ids are ``0..shard_count-1``).
    mode:
        :attr:`Routing.LABELS` (default) routes by edge label through the
        :class:`LabelShardMap`; :attr:`Routing.BROADCAST` sends every record
        to every shard.

    Counters (``records_seen``, ``records_dropped``, ``fanout_total``,
    ``records_broadcast``) expose how selective routing was; the sharded
    engine folds them into its metrics.
    """

    def __init__(self, shard_count: int, mode: str = Routing.LABELS) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if mode not in Routing.ALL:
            raise ValueError(f"unknown routing mode {mode!r}")
        self.shard_count = shard_count
        self.mode = mode
        self.label_map = LabelShardMap()
        self._all_shards = list(range(shard_count))
        self.records_seen = 0
        self.records_dropped = 0
        self.records_broadcast = 0
        self.fanout_total = 0

    # ------------------------------------------------------------------
    # query registration (delegated bookkeeping)
    # ------------------------------------------------------------------
    def add_query(self, shard_id: int, query) -> None:
        """Route the given query graph's label signature to a shard."""
        labels, has_wildcard = LabelShardMap.signature_of(query)
        self.label_map.add_query(shard_id, labels, has_wildcard)

    def remove_query(self, shard_id: int, query) -> None:
        """Stop routing the given query graph's labels to a shard."""
        labels, has_wildcard = LabelShardMap.signature_of(query)
        self.label_map.remove_query(shard_id, labels, has_wildcard)

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------
    def shards_for(self, record: StreamEdge) -> Sequence[int]:
        """Return the shards that must receive ``record``."""
        if self.mode == Routing.BROADCAST:
            return self._all_shards
        if record.source_attrs or record.target_attrs:
            # vertex attributes are shared mutable state: deliver everywhere
            # so every shard's vertex store stays consistent with the single
            # engine's for the records it does hold
            return self._all_shards
        return self.label_map.shards_for_label(record.label)

    def route(
        self,
        records: Sequence[StreamEdge],
        base_index: int,
    ) -> Dict[int, List[Tuple[int, StreamEdge]]]:
        """Split a batch into per-shard sub-batches of ``(global index, record)``.

        ``base_index`` is the global stream index of ``records[0]``; every
        record is tagged with its global index so downstream event merging
        can reconstruct the exact single-engine order.  Records no
        registered query can bind are dropped entirely (counted in
        ``records_dropped``).
        """
        per_shard: Dict[int, List[Tuple[int, StreamEdge]]] = {}
        broadcast_width = self.shard_count
        for offset, record in enumerate(records):
            self.records_seen += 1
            shards = self.shards_for(record)
            if not shards:
                self.records_dropped += 1
                continue
            if len(shards) == broadcast_width and broadcast_width > 1:
                self.records_broadcast += 1
            self.fanout_total += len(shards)
            tagged = (base_index + offset, record)
            for shard_id in shards:
                per_shard.setdefault(shard_id, []).append(tagged)
        return per_shard

    def stats(self) -> Dict[str, float]:
        """Return the routing counters (plus mean fan-out) as a plain dict."""
        routed = self.records_seen - self.records_dropped
        return {
            "mode": self.mode,
            "shard_count": self.shard_count,
            "records_seen": self.records_seen,
            "records_dropped": self.records_dropped,
            "records_broadcast": self.records_broadcast,
            "fanout_total": self.fanout_total,
            "mean_fanout": (self.fanout_total / routed) if routed else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchRouter(shards={self.shard_count}, mode={self.mode!r})"
