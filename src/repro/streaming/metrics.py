"""Throughput and latency instrumentation for the streaming engine.

The demo setup (paper section 6.1) quotes stream rates of 50-100 million
records per hour on a 48-core machine; experiment E6 reproduces the *shape*
of that claim (sustained edges/second, per-edge latency percentiles) on the
Python engine.  These helpers collect the numbers without dragging in any
external dependency.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["LatencyRecorder", "ThroughputMeter", "Stopwatch", "replan_summary"]


def replan_summary(
    monitor: Any,
    *,
    enabled: bool,
    threshold: Optional[float],
    check_every: Optional[int],
    plan_versions: Dict[str, int],
) -> Dict[str, Any]:
    """Build the ``metrics()["replan"]`` section from a plan monitor.

    ``monitor`` is a :class:`repro.stats.plan_monitor.PlanMonitor`, accepted
    duck-typed so this module stays import-light.  ``enabled`` reports whether
    *automatic* cadence checks are armed (threshold + check_every both set);
    manual ``run_replan_check()`` calls are counted either way.  Error
    aggregates cover finite observations only; ``last_errors`` maps query name
    to its most recent worst error (``inf`` for stats-blind plans).
    """
    return {
        "enabled": enabled,
        "threshold": threshold,
        "check_every": check_every,
        "checks_run": monitor.checks_run,
        "triggers_fired": monitor.triggers_fired,
        "plans_applied": monitor.plans_applied,
        "partials_migrated": monitor.partials_migrated,
        "partials_dropped": monitor.partials_dropped,
        "max_error_seen": monitor.max_error_seen,
        "mean_error": monitor.mean_error(),
        "error_count": monitor.error_count,
        "last_errors": dict(monitor.last_errors),
        "plan_versions": plan_versions,
    }


class Stopwatch:
    """Context manager measuring wall-clock duration in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        """Start (or restart) timing."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


class LatencyRecorder:
    """Collect per-operation latencies and report percentiles.

    Latencies are recorded in seconds.  Storage is a bounded reservoir
    (Vitter's Algorithm R with a deterministic seed): the first ``cap``
    samples are kept verbatim, after which each new sample replaces a random
    retained one with probability ``cap / count`` -- a uniform sample of the
    whole stream, so memory stays bounded on arbitrarily long runs.  Mean,
    max and count are tracked exactly over *all* recorded samples;
    percentiles use the nearest-rank method on the (cached) sorted reservoir,
    which is exact until the cap is first exceeded and an unbiased estimate
    afterwards.

    Parameters
    ----------
    cap:
        Maximum retained samples; ``None`` keeps every sample (the old
        unbounded behaviour, for short diagnostic runs only).
    """

    DEFAULT_CAP = 8192

    def __init__(self, cap: Optional[int] = DEFAULT_CAP, seed: int = 9) -> None:
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive or None")
        self._cap = cap
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        # lazily-computed percentile cache, rebuilt on first read
        self._sorted: Optional[List[float]] = None  # repro-lint: ignore[snapshot-coverage]
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency sample."""
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds
        if self._cap is None or len(self._samples) < self._cap:
            self._samples.append(seconds)
            self._sorted = None
            return
        slot = self._rng.randrange(self._count)
        if slot < self._cap:
            self._samples[slot] = seconds
            self._sorted = None

    def time(self) -> Stopwatch:
        """Return a stopwatch whose ``stop()`` value the caller records manually."""
        return Stopwatch()

    @property
    def count(self) -> int:
        """Total number of samples recorded (not just those retained)."""
        return self._count

    @property
    def retained(self) -> int:
        """Number of samples currently held in the reservoir."""
        return len(self._samples)

    def mean(self) -> float:
        """Mean latency in seconds over all recorded samples (0.0 with none)."""
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def max(self) -> float:
        """Maximum latency in seconds over all recorded samples (0.0 with none)."""
        return self._max

    def percentile(self, q: float) -> float:
        """Return the ``q``-quantile (``q`` in [0, 1]) by nearest rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """Return count/mean/p50/p90/p99/max in a dict (seconds)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max(),
        }

    def state_dict(self) -> Dict[str, object]:
        """Serialise the recorder: exact totals, reservoir and RNG state."""
        rng_version, rng_internal, rng_gauss = self._rng.getstate()
        return {
            "cap": self._cap,
            "samples": list(self._samples),
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
            "rng_state": [rng_version, list(rng_internal), rng_gauss],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LatencyRecorder":
        """Rebuild a recorder from :meth:`state_dict` output."""
        recorder = cls(cap=state["cap"])
        rng_version, rng_internal, rng_gauss = state["rng_state"]
        recorder._rng.setstate((rng_version, tuple(rng_internal), rng_gauss))
        recorder._samples = list(state["samples"])
        recorder._count = state["count"]
        recorder._sum = state["sum"]
        recorder._max = state["max"]
        return recorder

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Return a new recorder combining both sample sets.

        The merged reservoir re-records every retained sample from both
        inputs (capped at the larger of the two caps); exact totals (count,
        sum, max) are carried over so mean/max stay exact.
        """
        if self._cap is None or other._cap is None:
            cap: Optional[int] = None
        else:
            cap = max(self._cap, other._cap)
        merged = LatencyRecorder(cap=cap)
        for sample in self._samples + other._samples:
            merged.record(sample)
        # replace the approximate totals accumulated above with exact ones
        merged._count = self._count + other._count
        merged._sum = self._sum + other._sum
        merged._max = max(self._max, other._max)
        return merged


class ThroughputMeter:
    """Track items processed against wall-clock time."""

    def __init__(self) -> None:
        self._items = 0
        # wall-clock interval start; snapshots are taken between
        # intervals (state_dict stores accumulated elapsed only)
        self._started: Optional[float] = None  # repro-lint: ignore[snapshot-coverage]
        self._elapsed = 0.0

    def start(self) -> None:
        """Start (or resume) the meter."""
        if self._started is None:
            self._started = time.perf_counter()

    def stop(self) -> None:
        """Pause the meter, accumulating elapsed time."""
        if self._started is not None:
            self._elapsed += time.perf_counter() - self._started
            self._started = None

    def add(self, items: int = 1) -> None:
        """Record ``items`` processed."""
        self._items += items

    @property
    def items(self) -> int:
        """Total items recorded."""
        return self._items

    @property
    def elapsed(self) -> float:
        """Total measured seconds (including a currently-running interval)."""
        running = 0.0
        if self._started is not None:
            running = time.perf_counter() - self._started
        return self._elapsed + running

    def rate(self) -> float:
        """Return items per second (0.0 before any time has elapsed)."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return self._items / elapsed

    def summary(self) -> Dict[str, float]:
        """Return items/elapsed/rate in a dict."""
        return {"items": float(self._items), "elapsed_s": self.elapsed, "rate_per_s": self.rate()}

    def state_dict(self) -> Dict[str, float]:
        """Serialise the meter (items + accumulated seconds; never mid-interval)."""
        return {"items": self._items, "elapsed": self.elapsed}

    @classmethod
    def from_state(cls, state: Dict[str, float]) -> "ThroughputMeter":
        """Rebuild a meter from :meth:`state_dict` output."""
        meter = cls()
        meter._items = int(state["items"])
        meter._elapsed = float(state["elapsed"])
        return meter
