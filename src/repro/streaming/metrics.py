"""Throughput and latency instrumentation for the streaming engine.

The demo setup (paper section 6.1) quotes stream rates of 50-100 million
records per hour on a 48-core machine; experiment E6 reproduces the *shape*
of that claim (sustained edges/second, per-edge latency percentiles) on the
Python engine.  These helpers collect the numbers without dragging in any
external dependency.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

__all__ = ["LatencyRecorder", "ThroughputMeter", "Stopwatch"]


class Stopwatch:
    """Context manager measuring wall-clock duration in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        """Start (or restart) timing."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


class LatencyRecorder:
    """Collect per-operation latencies and report percentiles.

    Latencies are stored in seconds.  Percentile computation uses the
    nearest-rank method on the sorted sample, which is exact and avoids a
    numpy dependency in the hot path.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        """Record one latency sample."""
        self._samples.append(seconds)

    def time(self) -> Stopwatch:
        """Return a stopwatch whose ``stop()`` value the caller records manually."""
        return Stopwatch()

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    def mean(self) -> float:
        """Mean latency in seconds (0.0 with no samples)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        """Maximum latency in seconds (0.0 with no samples)."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Return the ``q``-quantile (``q`` in [0, 1]) by nearest rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """Return count/mean/p50/p90/p99/max in a dict (seconds)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max(),
        }

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Return a new recorder containing both sample sets."""
        merged = LatencyRecorder()
        merged._samples = self._samples + other._samples
        return merged


class ThroughputMeter:
    """Track items processed against wall-clock time."""

    def __init__(self) -> None:
        self._items = 0
        self._started: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> None:
        """Start (or resume) the meter."""
        if self._started is None:
            self._started = time.perf_counter()

    def stop(self) -> None:
        """Pause the meter, accumulating elapsed time."""
        if self._started is not None:
            self._elapsed += time.perf_counter() - self._started
            self._started = None

    def add(self, items: int = 1) -> None:
        """Record ``items`` processed."""
        self._items += items

    @property
    def items(self) -> int:
        """Total items recorded."""
        return self._items

    @property
    def elapsed(self) -> float:
        """Total measured seconds (including a currently-running interval)."""
        running = 0.0
        if self._started is not None:
            running = time.perf_counter() - self._started
        return self._elapsed + running

    def rate(self) -> float:
        """Return items per second (0.0 before any time has elapsed)."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return self._items / elapsed

    def summary(self) -> Dict[str, float]:
        """Return items/elapsed/rate in a dict."""
        return {"items": float(self._items), "elapsed_s": self.elapsed, "rate_per_s": self.rate()}
