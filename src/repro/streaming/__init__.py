"""Streaming infrastructure: edge streams, batching, events and metrics."""

from .batching import BatchReplay, BatchResult, batch_by_count, batch_by_time
from .edge_stream import EdgeStream, StreamEdge, merge_streams
from .events import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    EventSink,
    MatchEvent,
    MultiSink,
    QueryFilterSink,
    merge_events,
)
from .metrics import LatencyRecorder, Stopwatch, ThroughputMeter
from .partition import BatchRouter, LabelShardMap, Routing, greedy_partition

__all__ = [
    "BatchReplay",
    "BatchResult",
    "BatchRouter",
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "EdgeStream",
    "EventSink",
    "LabelShardMap",
    "LatencyRecorder",
    "MatchEvent",
    "MultiSink",
    "QueryFilterSink",
    "Routing",
    "Stopwatch",
    "StreamEdge",
    "ThroughputMeter",
    "batch_by_count",
    "batch_by_time",
    "greedy_partition",
    "merge_events",
    "merge_streams",
]
