"""Streaming infrastructure: edge streams, batching, events and metrics."""

from .batching import BatchReplay, BatchResult, batch_by_count, batch_by_time
from .edge_stream import EdgeStream, StreamEdge, merge_streams
from .events import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    EventSink,
    MatchEvent,
    MultiSink,
    QueryFilterSink,
    merge_events,
)
from .metrics import LatencyRecorder, Stopwatch, ThroughputMeter
from .partition import BatchRouter, LabelShardMap, Routing, ShardBatch, greedy_partition
from .reorder import (
    LatePolicy,
    ReorderBuffer,
    bounded_shuffle,
    max_time_displacement,
    ordered_run_slices,
)
from .sources import (
    ADAPTIVE_LATENESS,
    DEFAULT_SOURCE,
    MultiSourceReorderBuffer,
    reorder_buffer_from_state,
    skewed_interleave,
    split_by_source,
    tag_sources,
)
from .async_ingest import AsyncIngestFrontend

__all__ = [
    "ADAPTIVE_LATENESS",
    "AsyncIngestFrontend",
    "BatchReplay",
    "BatchResult",
    "BatchRouter",
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "DEFAULT_SOURCE",
    "EdgeStream",
    "EventSink",
    "LabelShardMap",
    "LatePolicy",
    "LatencyRecorder",
    "MatchEvent",
    "MultiSink",
    "MultiSourceReorderBuffer",
    "QueryFilterSink",
    "ReorderBuffer",
    "Routing",
    "ShardBatch",
    "Stopwatch",
    "StreamEdge",
    "ThroughputMeter",
    "batch_by_count",
    "batch_by_time",
    "bounded_shuffle",
    "greedy_partition",
    "max_time_displacement",
    "merge_events",
    "merge_streams",
    "ordered_run_slices",
    "reorder_buffer_from_state",
    "skewed_interleave",
    "split_by_source",
    "tag_sources",
]
