"""Streaming infrastructure: edge streams, batching, events and metrics."""

from .batching import BatchReplay, BatchResult, batch_by_count, batch_by_time
from .edge_stream import EdgeStream, StreamEdge, merge_streams
from .events import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    EventSink,
    MatchEvent,
    MultiSink,
    QueryFilterSink,
)
from .metrics import LatencyRecorder, Stopwatch, ThroughputMeter

__all__ = [
    "BatchReplay",
    "BatchResult",
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "EdgeStream",
    "EventSink",
    "LatencyRecorder",
    "MatchEvent",
    "MultiSink",
    "QueryFilterSink",
    "Stopwatch",
    "StreamEdge",
    "ThroughputMeter",
    "batch_by_count",
    "batch_by_time",
    "merge_streams",
]
