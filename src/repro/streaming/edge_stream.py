"""Edge streams: the input abstraction of the continuous query engine.

An *edge stream* is simply an iterable of :class:`StreamEdge` records -- an
edge payload plus the vertex labels of its endpoints, which raw feeds (flow
logs, article metadata) always know at emission time.  The module provides
constructors from lists, generators and files, plus merging of several
streams in timestamp order (e.g. background traffic + injected attack).
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..graph.types import Edge, Timestamp, VertexId

__all__ = ["StreamEdge", "EdgeStream", "merge_streams"]


class StreamEdge:
    """A raw stream record: an edge plus its endpoint vertex labels/attributes.

    ``source_id`` names the *collector* (feed, ingestion pipeline) the record
    arrived from -- not to be confused with ``source``, the source *vertex*
    of the edge.  It is optional: records without one belong to a single
    implicit default source.  The multi-source event-time layer
    (:class:`~repro.streaming.sources.MultiSourceReorderBuffer`) tracks one
    watermark per ``source_id`` so independently-skewed collector clocks do
    not push each other's records past the lateness horizon.
    """

    __slots__ = (
        "source",
        "target",
        "label",
        "timestamp",
        "attrs",
        "source_label",
        "target_label",
        "source_attrs",
        "target_attrs",
        "source_id",
    )

    def __init__(
        self,
        source: VertexId,
        target: VertexId,
        label: str,
        timestamp: Timestamp,
        attrs: Optional[Mapping[str, Any]] = None,
        source_label: str = "node",
        target_label: str = "node",
        source_attrs: Optional[Mapping[str, Any]] = None,
        target_attrs: Optional[Mapping[str, Any]] = None,
        source_id: Optional[str] = None,
    ):
        self.source = source
        self.target = target
        self.label = label
        self.timestamp = float(timestamp)
        self.attrs = dict(attrs or {})
        self.source_label = source_label
        self.target_label = target_label
        self.source_attrs = dict(source_attrs or {})
        self.target_attrs = dict(target_attrs or {})
        self.source_id = source_id

    def to_edge(self, edge_id: int = -1) -> Edge:
        """Convert to a bare :class:`Edge` (mostly for tests)."""
        return Edge(edge_id, self.source, self.target, self.label, self.timestamp, self.attrs)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-friendly dict (inverse of :meth:`from_dict`)."""
        return {
            "source": self.source,
            "target": self.target,
            "label": self.label,
            "timestamp": self.timestamp,
            "attrs": dict(self.attrs),
            "source_label": self.source_label,
            "target_label": self.target_label,
            "source_attrs": dict(self.source_attrs),
            "target_attrs": dict(self.target_attrs),
            "source_id": self.source_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamEdge":
        """Inverse of :meth:`to_dict` (missing optional keys take their defaults)."""
        return cls(
            payload["source"],
            payload["target"],
            payload["label"],
            payload["timestamp"],
            payload.get("attrs"),
            payload.get("source_label", "node"),
            payload.get("target_label", "node"),
            payload.get("source_attrs"),
            payload.get("target_attrs"),
            payload.get("source_id"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamEdge({self.source!r}-[{self.label}]->{self.target!r}, t={self.timestamp})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamEdge):
            return NotImplemented
        return self.to_dict() == other.to_dict()


class EdgeStream:
    """A (re-)iterable sequence of :class:`StreamEdge` records.

    Wrapping a concrete list keeps replays cheap for the benchmarks, which
    run the same stream through several engine configurations.
    """

    def __init__(self, edges: Iterable[StreamEdge], name: str = "stream"):
        self._edges: List[StreamEdge] = list(edges)
        self.name = name

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[Sequence],
        source_label: str = "node",
        target_label: str = "node",
        name: str = "stream",
    ) -> "EdgeStream":
        """Build a stream from ``(source, target, label, timestamp[, attrs])`` tuples."""
        edges = []
        for row in rows:
            attrs = row[4] if len(row) > 4 else None
            edges.append(
                StreamEdge(row[0], row[1], row[2], row[3], attrs, source_label, target_label)
            )
        return cls(edges, name=name)

    @classmethod
    def from_jsonl(cls, path: str, name: Optional[str] = None) -> "EdgeStream":
        """Load a stream from a JSON-lines file written by :meth:`to_jsonl`."""
        edges = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    edges.append(StreamEdge.from_dict(json.loads(line)))
        return cls(edges, name=name or path)

    def to_jsonl(self, path: str) -> None:
        """Persist the stream as JSON lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for edge in self._edges:
                handle.write(json.dumps(edge.to_dict(), default=str) + "\n")

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def sorted_by_time(self) -> "EdgeStream":
        """Return a copy sorted by timestamp (stable)."""
        return EdgeStream(sorted(self._edges, key=lambda e: e.timestamp), name=self.name)

    def is_time_ordered(self) -> bool:
        """Return ``True`` when timestamps are non-decreasing."""
        return all(
            self._edges[i].timestamp <= self._edges[i + 1].timestamp
            for i in range(len(self._edges) - 1)
        )

    def filter(self, predicate: Callable[[StreamEdge], bool], name: Optional[str] = None) -> "EdgeStream":
        """Return a stream containing only the records accepted by ``predicate``."""
        return EdgeStream(
            [edge for edge in self._edges if predicate(edge)],
            name=name or f"{self.name}[filtered]",
        )

    def slice_time(self, start: float, end: float) -> "EdgeStream":
        """Return the records with ``start <= timestamp < end``."""
        return self.filter(lambda edge: start <= edge.timestamp < end, name=f"{self.name}[{start},{end})")

    def limit(self, count: int) -> "EdgeStream":
        """Return the first ``count`` records."""
        return EdgeStream(self._edges[:count], name=f"{self.name}[:{count}]")

    def concat(self, other: "EdgeStream") -> "EdgeStream":
        """Return the concatenation of two streams (no re-sorting)."""
        return EdgeStream(self._edges + other._edges, name=f"{self.name}+{other.name}")

    def label_counts(self) -> Dict[str, int]:
        """Return ``{edge label: count}`` over the stream."""
        counts: Dict[str, int] = {}
        for edge in self._edges:
            counts[edge.label] = counts.get(edge.label, 0) + 1
        return counts

    def time_span(self) -> float:
        """Return last timestamp minus first timestamp (0 for empty streams)."""
        if not self._edges:
            return 0.0
        timestamps = [edge.timestamp for edge in self._edges]
        return max(timestamps) - min(timestamps)

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EdgeStream(self._edges[index], name=f"{self.name}[{index}]")
        return self._edges[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeStream({self.name!r}, {len(self._edges)} edges)"


def merge_streams(*streams: EdgeStream, name: str = "merged") -> EdgeStream:
    """Merge several streams into one, ordered by timestamp.

    Uses a heap merge so already-sorted inputs merge in O(n log k); unsorted
    inputs are sorted first (stably).  Timestamp ties are broken
    deterministically by the position of the stream in the argument list and
    then by the record's position within its (sorted) stream, so merging the
    same streams always yields the same record order -- an explicit contract
    rather than an accident of the heap implementation, because downstream
    engines derive event sequence numbers from the merged record order.
    """

    def keyed(stream_index: int, stream: EdgeStream) -> Iterator[tuple]:
        for position, edge in enumerate(stream.sorted_by_time()):
            yield (edge.timestamp, stream_index, position), edge

    merged = heapq.merge(
        *(keyed(index, stream) for index, stream in enumerate(streams)),
        key=lambda item: item[0],
    )
    return EdgeStream((edge for _, edge in merged), name=name)
