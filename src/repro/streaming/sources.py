"""Multi-source event time: per-source watermarks, idle timeout, adaptive lateness.

The single-buffer event-time layer (:mod:`repro.streaming.reorder`) models
the input as ONE merged feed: a global watermark trails the largest
timestamp seen by ``allowed_lateness``, so the lateness horizon must cover
the *total* disorder of the merged stream.  Real deployments merge
per-collector streams whose clocks skew independently -- a netflow probe
two minutes behind the others, an article wire that batches uploads -- and
under a global watermark one fast collector pushes the horizon past every
slow collector's records: they all become "late" even though each
collector's own stream is perfectly ordered.

This module implements the classic multi-input fix:

* :class:`MultiSourceReorderBuffer` -- one watermark per ``source_id``
  (``max timestamp seen from that source - its lateness``), releasing on the
  **minimum across active sources**.  A slow collector then *holds* the
  release horizon instead of losing records, and the lateness horizon only
  needs to cover each source's *own* disorder, not the inter-source skew.
* **Idle-source timeout** (``idle_timeout``, stream-time units) -- the dual
  failure mode: with a min-watermark, one *silent* collector freezes the
  horizon forever.  A source whose clock lags the global maximum by more
  than the timeout is excluded from the minimum until it speaks again;
  records it then delivers below the (monotone) watermark are late and
  follow the normal late policy.  The timeout is therefore also the largest
  inter-source skew the buffer tolerates without declaring records late.
* **Adaptive lateness** (``allowed_lateness="adaptive"``) -- each source's
  lateness horizon tracks a running quantile of its own observed
  displacement (how far records arrive behind that source's clock), so the
  completeness/latency trade-off is made online per collector instead of
  provisioned for the worst case up front.

The released stream is kept globally non-decreasing by a **monotone
watermark floor**: the raw minimum can regress when a source (re)appears
with an old clock, but the effective watermark never moves backwards --
such records are classified late rather than released out of order.  With
every source known up front (:meth:`MultiSourceReorderBuffer.register_source`)
and lateness covering each source's own disorder, the release order is
exactly the stable timestamp sort of the arrival sequence -- i.e. the
sorted merge of the per-source streams -- which is the conformance oracle
the engine tests pin.

Records name their collector via :attr:`repro.streaming.edge_stream.StreamEdge.source_id`;
records without one share a single implicit default source, in which case
the buffer behaves byte-for-byte like the single-watermark
:class:`~repro.streaming.reorder.ReorderBuffer` (pinned by regression
tests).
"""

from __future__ import annotations

import math
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .edge_stream import StreamEdge
from .reorder import LatePolicy, ReorderBuffer

__all__ = [
    "ADAPTIVE_LATENESS",
    "DEFAULT_SOURCE",
    "MultiSourceReorderBuffer",
    "reorder_buffer_from_state",
    "skewed_interleave",
    "split_by_source",
    "tag_sources",
]

#: Source key used for records that carry no ``source_id``.
DEFAULT_SOURCE = "__default__"

#: ``allowed_lateness`` sentinel selecting per-source adaptive horizons.
ADAPTIVE_LATENESS = "adaptive"

_NEG_INF = float("-inf")


class _SourceState:
    """Per-source watermark bookkeeping (one instance per collector)."""

    __slots__ = (
        "max_seen",
        "baseline",
        "lateness",
        "records_seen",
        "records_reordered",
        "records_late",
        "max_displacement_seen",
        "samples",
        "since_refresh",
    )

    def __init__(self, lateness: float, baseline: float = _NEG_INF):
        #: Largest event timestamp this source has delivered (its clock).
        self.max_seen = _NEG_INF
        #: Stream time at which this source became known (its registration
        #: epoch, or the stream's first record for sources registered before
        #: any data).  A source that has never spoken has its idle-timeout
        #: silence measured from here -- NOT treated as idle immediately --
        #: so a skewed-but-live collector's first record is not orphaned.
        self.baseline = baseline
        #: This source's lateness horizon (fixed, or the adaptive estimate).
        self.lateness = lateness
        self.records_seen = 0
        #: Records behind this source's own clock but not late.
        self.records_reordered = 0
        #: Records from this source below the release watermark on arrival.
        self.records_late = 0
        #: Largest displacement behind this source's own clock.
        self.max_displacement_seen = 0.0
        #: Recent own-clock displacements (adaptive mode only; bounded).
        self.samples: List[float] = []
        self.since_refresh = 0


def _quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Return the ``q``-quantile of an ascending sample list (nearest-rank)."""
    if not sorted_samples:
        return 0.0
    rank = math.ceil(q * len(sorted_samples)) - 1
    return sorted_samples[max(0, min(rank, len(sorted_samples) - 1))]


class MultiSourceReorderBuffer(ReorderBuffer):
    """Bounded-lateness reorder buffer with one watermark per stream source.

    Parameters
    ----------
    allowed_lateness:
        A float horizon (stream-time units, applied to every source), or the
        string ``"adaptive"`` to let each source's horizon track the
        ``adaptive_quantile`` of its own observed displacement.
    late_policy:
        :attr:`~repro.streaming.reorder.LatePolicy.DROP` (default) or
        :attr:`~repro.streaming.reorder.LatePolicy.PROCESS_DEGRADED`; a
        record is *late* when its timestamp lies below the current release
        watermark (it can no longer be released in sorted position).
    idle_timeout:
        Stream-time units after which a source whose clock lags the global
        maximum is excluded from the release minimum (``None`` -- never:
        a silent source holds the horizon indefinitely).  Doubles as the
        largest tolerated inter-source skew: a live source lagging by more
        than the timeout is treated as idle and its records may be late.
    adaptive_quantile / adaptive_sample_cap / adaptive_refresh / adaptive_floor:
        Adaptive-mode tuning: the per-source horizon is
        ``max(adaptive_floor, quantile(last adaptive_sample_cap own-clock
        displacements))``, recomputed every ``adaptive_refresh`` records per
        source (quantiles are amortised off the per-record hot path).

    Raises
    ------
    ValueError
        On a negative/NaN ``allowed_lateness`` (anything that is neither a
        non-negative float nor ``"adaptive"``), a non-positive
        ``idle_timeout``, an unknown ``late_policy``, or an
        ``adaptive_quantile`` outside ``(0, 1]``.

    Release semantics are inherited from :class:`ReorderBuffer` (stable
    timestamp sort of the pending list, watermark-closed prefix per
    :meth:`drain_ready`); only the watermark arithmetic and the admission
    bookkeeping differ.  With a single (implicit) source, fixed lateness and
    no idle timeout, behaviour is byte-for-byte the single-buffer one.
    """

    def __init__(
        self,
        allowed_lateness: Union[float, str],
        late_policy: str = LatePolicy.DROP,
        idle_timeout: Optional[float] = None,
        adaptive_quantile: float = 0.99,
        adaptive_sample_cap: int = 256,
        adaptive_refresh: int = 32,
        adaptive_floor: float = 0.0,
    ):
        self.adaptive = allowed_lateness == ADAPTIVE_LATENESS
        if self.adaptive:
            if not 0.0 < adaptive_quantile <= 1.0:
                raise ValueError("adaptive_quantile must be in (0, 1]")
            if adaptive_sample_cap <= 0 or adaptive_refresh <= 0:
                raise ValueError("adaptive_sample_cap and adaptive_refresh must be positive")
            adaptive_floor = float(adaptive_floor)
            if not adaptive_floor >= 0.0:  # also rejects NaN
                raise ValueError("adaptive_floor must be >= 0 (stream-time units)")
            super().__init__(0.0, late_policy=late_policy)
        elif isinstance(allowed_lateness, str):
            raise ValueError(
                f"allowed_lateness must be a non-negative float or "
                f"{ADAPTIVE_LATENESS!r}, got {allowed_lateness!r}"
            )
        else:
            super().__init__(allowed_lateness, late_policy=late_policy)
        if idle_timeout is not None:
            idle_timeout = float(idle_timeout)
            if not idle_timeout > 0.0:  # also rejects NaN
                raise ValueError(
                    "idle_timeout must be a positive duration in stream-time "
                    "units (or None to let silent sources hold the watermark)"
                )
        self.idle_timeout = idle_timeout
        self.adaptive_quantile = adaptive_quantile
        self.adaptive_sample_cap = adaptive_sample_cap
        self.adaptive_refresh = adaptive_refresh
        self.adaptive_floor = adaptive_floor
        #: ``{source key: _SourceState}`` in first-seen/registration order.
        self._sources: Dict[str, _SourceState] = {}
        #: Monotone release horizon: the raw min-watermark can regress when a
        #: source (re)appears with an old clock, but released batches must
        #: stay globally non-decreasing, so the effective watermark is the
        #: running maximum of the raw one and such records are late instead.
        self._watermark_floor = _NEG_INF

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _initial_lateness(self) -> float:
        return self.adaptive_floor if self.adaptive else self.allowed_lateness

    def register_source(self, source_id: str) -> None:
        """Declare a collector before its first record arrives.

        A registered-but-silent source participates in the release minimum
        with a watermark of ``-inf``, i.e. **nothing is released until every
        registered source has spoken** (or gone idle: under ``idle_timeout``
        its silence is measured in stream time from its registration epoch,
        so it is excluded only once the stream has advanced past the
        timeout without it -- never merely because another source spoke
        first).  Pre-registering the known collector set is what makes the
        sorted-merge conformance guarantee hold regardless of which
        collector's records happen to arrive first; an *unregistered* source
        is added on its first record instead, and that record is admitted
        against the watermark the stream had already reached (so a brand-new
        collector whose clock starts behind the released horizon sees its
        backlog classified late).  Registering an already-known source is a
        no-op.
        """
        key = source_id if source_id is not None else DEFAULT_SOURCE
        if key not in self._sources:
            self._sources[key] = _SourceState(
                self._initial_lateness(), baseline=self._max_seen
            )

    def sources(self) -> List[str]:
        """Return the known source keys in registration/first-seen order."""
        return list(self._sources)

    def _is_idle(self, state: _SourceState) -> bool:
        if self.idle_timeout is None:
            return False
        # a never-spoke source's silence is measured from its baseline (its
        # registration epoch, or the stream's first record); its clock once
        # it has spoken
        reference = state.max_seen if state.max_seen != _NEG_INF else state.baseline
        if reference == _NEG_INF:
            return False  # no stream time has passed that it could have missed
        return self._max_seen - reference > self.idle_timeout

    # ------------------------------------------------------------------
    # watermark arithmetic
    # ------------------------------------------------------------------
    def _raw_watermark(self) -> float:
        if not self._sources or self._max_seen == _NEG_INF:
            return _NEG_INF
        horizon = float("inf")
        any_active = False
        for state in self._sources.values():
            if self._is_idle(state):
                continue
            any_active = True
            candidate = state.max_seen - state.lateness
            if candidate < horizon:
                horizon = candidate
        # the source holding the global maximum is never idle, so with any
        # record seen at least one source is active; defensive nonetheless
        return horizon if any_active else _NEG_INF

    def _current_watermark(self) -> float:
        raw = self._raw_watermark()
        if raw > self._watermark_floor:
            self._watermark_floor = raw
        return self._watermark_floor

    def _is_late(self, timestamp: float) -> bool:
        """Is a record below the release horizon (cannot release in order)?

        The min-watermark test runs in *displacement space* -- late iff
        ``max_seen - timestamp > lateness`` for **every** active source --
        rather than comparing against the subtraction-form watermark, so a
        borderline record (displacement exactly equal to the horizon, e.g.
        when the horizon was sized with
        :func:`~repro.streaming.reorder.max_time_displacement`) classifies
        bit-for-bit as the single-watermark buffer classifies it.  The
        monotone floor is consulted only when it strictly exceeds the raw
        minimum (a source (re)appeared with an old clock); in steady state
        the raw minimum is monotone and the floor clause never fires.
        """
        raw = self._raw_watermark()
        if raw > self._watermark_floor:
            self._watermark_floor = raw
        late = False
        if self._sources and self._max_seen != _NEG_INF:
            any_active = False
            late = True
            for state in self._sources.values():
                if self._is_idle(state):
                    continue
                any_active = True
                if not state.max_seen - timestamp > state.lateness:
                    late = False
                    break
            late = late and any_active
        if not late and self._watermark_floor > raw and timestamp < self._watermark_floor:
            late = True
        return late

    @property
    def watermark(self) -> float:
        """The monotone release watermark: min over active per-source watermarks.

        Each source's watermark is its largest delivered timestamp minus its
        lateness horizon; idle sources (see ``idle_timeout``) are excluded;
        the result never regresses (see the class docstring).
        """
        return self._current_watermark()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def offer(self, record: StreamEdge) -> Optional[StreamEdge]:
        """Admit one record under its source's watermark bookkeeping.

        Returns the record back only when it is late *and* the policy is
        :attr:`~repro.streaming.reorder.LatePolicy.PROCESS_DEGRADED`
        (mirroring :meth:`ReorderBuffer.offer`); ``None`` otherwise.  A late
        record still advances its source's clock -- the record is dropped or
        degraded, but the collector's progress is real, so a source that
        fell behind the released horizon catches back up instead of pinning
        the watermark (or the idle test) at its last good record forever.
        """
        key = record.source_id if record.source_id is not None else DEFAULT_SOURCE
        state = self._sources.get(key)
        if state is None:
            state = _SourceState(self._initial_lateness())
            self._sources[key] = state
        self.records_seen += 1
        state.records_seen += 1
        timestamp = record.timestamp
        # global displacement keeps the single-buffer counter semantics
        displacement = self._max_seen - timestamp
        if displacement > self.max_displacement_seen:
            self.max_displacement_seen = displacement
        own_displacement = state.max_seen - timestamp
        if own_displacement < 0.0:
            own_displacement = 0.0
        if own_displacement > state.max_displacement_seen:
            state.max_displacement_seen = own_displacement
        if self.adaptive:
            self._observe_displacement(state, own_displacement)
        late = self._is_late(timestamp)
        if timestamp > state.max_seen:
            state.max_seen = timestamp
        if late:
            self.records_late += 1
            state.records_late += 1
            if self.late_policy == LatePolicy.PROCESS_DEGRADED:
                self.records_late_degraded += 1
                return record
            self.records_late_dropped += 1
            return None
        if displacement > 0:
            self.records_reordered += 1
        if own_displacement > 0:
            state.records_reordered += 1
        self._pending.append(record)
        if timestamp < self._min_pending:
            self._min_pending = timestamp
        if timestamp > self._max_seen:
            first_data = self._max_seen == _NEG_INF
            self._max_seen = timestamp
            if first_data:
                # stream time starts now: sources registered before any data
                # begin their idle-timeout silence at the first record
                for other in self._sources.values():
                    if other.baseline == _NEG_INF:
                        other.baseline = timestamp
        return None

    def _observe_displacement(self, state: _SourceState, own_displacement: float) -> None:
        """Fold one own-clock displacement into the source's adaptive horizon."""
        samples = state.samples
        samples.append(own_displacement)
        if len(samples) > self.adaptive_sample_cap:
            del samples[: len(samples) - self.adaptive_sample_cap]
        state.since_refresh += 1
        # quantiles are O(n log n); recompute on a cadence, not per record
        if state.since_refresh >= self.adaptive_refresh or state.records_seen <= 1:
            state.since_refresh = 0
            estimate = _quantile(sorted(samples), self.adaptive_quantile)
            state.lateness = max(self.adaptive_floor, estimate)

    # ------------------------------------------------------------------
    # introspection / persistence
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Return the single-buffer counters plus a per-source breakdown.

        The top-level keys match :meth:`ReorderBuffer.stats` (so existing
        ``metrics()["reorder"]`` consumers keep working); ``sources`` maps
        each source key to its watermark, clock, lateness horizon, idle
        flag and admission counters.
        """
        data = super().stats()
        data["kind"] = "multisource"
        data["allowed_lateness"] = ADAPTIVE_LATENESS if self.adaptive else self.allowed_lateness
        data["idle_timeout"] = self.idle_timeout
        idle = [key for key, state in self._sources.items() if self._is_idle(state)]
        data["source_count"] = len(self._sources)
        data["idle_sources"] = idle
        data["sources"] = {
            key: {
                "watermark": state.max_seen - state.lateness,
                "max_seen": state.max_seen,
                "lateness": state.lateness,
                "idle": key in idle,
                "records_seen": float(state.records_seen),
                "records_reordered": float(state.records_reordered),
                "records_late": float(state.records_late),
                "max_displacement_seen": state.max_displacement_seen,
            }
            for key, state in self._sources.items()
        }
        return data

    def state_dict(self) -> Dict[str, Any]:
        """Serialise the buffer: single-buffer state + per-source states.

        Source order is preserved (a dict round-trips insertion order), the
        watermark floor is explicit (it is *not* derivable from the source
        clocks -- it remembers horizons reached before a source appeared),
        and adaptive sample windows round-trip exactly so a restored buffer
        computes the same horizons at the same refresh points.
        """
        state = super().state_dict()
        state["kind"] = "multisource"
        state["allowed_lateness"] = ADAPTIVE_LATENESS if self.adaptive else self.allowed_lateness
        state["idle_timeout"] = self.idle_timeout
        state["adaptive_quantile"] = self.adaptive_quantile
        state["adaptive_sample_cap"] = self.adaptive_sample_cap
        state["adaptive_refresh"] = self.adaptive_refresh
        state["adaptive_floor"] = self.adaptive_floor
        state["watermark_floor"] = self._watermark_floor
        state["sources"] = [
            [
                key,
                {
                    "max_seen": source.max_seen,
                    "baseline": source.baseline,
                    "lateness": source.lateness,
                    "records_seen": source.records_seen,
                    "records_reordered": source.records_reordered,
                    "records_late": source.records_late,
                    "max_displacement_seen": source.max_displacement_seen,
                    "samples": list(source.samples),
                    "since_refresh": source.since_refresh,
                },
            ]
            for key, source in self._sources.items()
        ]
        return state

    @classmethod
    def from_single_state(cls, state: Mapping[str, Any]) -> "MultiSourceReorderBuffer":
        """Upgrade a single-watermark :class:`ReorderBuffer` payload in place.

        Engines now always own the multi-source buffer, but snapshots
        written before it existed carry a plain single-buffer state.  The
        upgrade is behaviour-preserving: the whole history is attributed to
        the implicit default source (its clock is the old global maximum,
        its lateness the old horizon, and the watermark floor is the old
        watermark), so a sourceless resumed stream releases byte-for-byte
        as the old buffer would -- while ``register_source`` and
        ``source_id``-tagged records work on the restored engine exactly as
        on a fresh one.
        """
        buffer = cls(state["allowed_lateness"], late_policy=state["late_policy"])
        buffer._load_base_state(state)
        if buffer._max_seen != _NEG_INF:
            source = _SourceState(buffer.allowed_lateness, baseline=buffer._max_seen)
            source.max_seen = buffer._max_seen
            source.records_seen = buffer.records_seen
            source.records_reordered = buffer.records_reordered
            source.records_late = buffer.records_late
            source.max_displacement_seen = buffer.max_displacement_seen
            buffer._sources[DEFAULT_SOURCE] = source
            buffer._watermark_floor = buffer._max_seen - buffer.allowed_lateness
        return buffer

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "MultiSourceReorderBuffer":
        """Rebuild a buffer from :meth:`state_dict` output (exact resume)."""
        buffer = cls(
            state["allowed_lateness"],
            late_policy=state["late_policy"],
            idle_timeout=state["idle_timeout"],
            adaptive_quantile=state["adaptive_quantile"],
            adaptive_sample_cap=state["adaptive_sample_cap"],
            adaptive_refresh=state["adaptive_refresh"],
            adaptive_floor=state["adaptive_floor"],
        )
        buffer._load_base_state(state)
        buffer._watermark_floor = float(state["watermark_floor"])
        for key, payload in state["sources"]:
            source = _SourceState(
                float(payload["lateness"]), baseline=float(payload["baseline"])
            )
            source.max_seen = float(payload["max_seen"])
            source.records_seen = payload["records_seen"]
            source.records_reordered = payload["records_reordered"]
            source.records_late = payload["records_late"]
            source.max_displacement_seen = float(payload["max_displacement_seen"])
            source.samples = [float(sample) for sample in payload["samples"]]
            source.since_refresh = payload["since_refresh"]
            buffer._sources[key] = source
        return buffer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiSourceReorderBuffer(lateness="
            f"{ADAPTIVE_LATENESS if self.adaptive else self.allowed_lateness!r}, "
            f"sources={len(self._sources)}, buffered={len(self._pending)}, "
            f"watermark={self.watermark})"
        )


def reorder_buffer_from_state(state: Mapping[str, Any]) -> ReorderBuffer:
    """Rebuild an *engine-owned* reorder buffer from a ``state_dict`` payload.

    Dispatches on the payload's ``kind`` tag.  Engines always own the
    multi-source buffer, so a single-watermark payload (written before the
    tag existed, or tagged ``"single"``) is **upgraded** via
    :meth:`MultiSourceReorderBuffer.from_single_state` -- the restored
    engine then supports ``register_source`` and ``source_id``-tagged
    records exactly like a fresh one, while sourceless streams resume
    byte-for-byte.  (To reconstruct a standalone ``ReorderBuffer`` as-is,
    call its own ``from_state``.)  Raises ``ValueError`` on an unknown
    kind.
    """
    kind = state.get("kind", "single")
    if kind == "single":
        return MultiSourceReorderBuffer.from_single_state(state)
    if kind == "multisource":
        return MultiSourceReorderBuffer.from_state(state)
    raise ValueError(f"unknown reorder buffer kind {kind!r} in snapshot state")


# ----------------------------------------------------------------------
# workload helpers: building multi-source arrival sequences
# ----------------------------------------------------------------------
def tag_sources(
    records: Iterable[StreamEdge],
    source_for: Callable[[int, StreamEdge], Optional[str]],
) -> List[StreamEdge]:
    """Return copies of ``records`` with ``source_id`` set by ``source_for``.

    ``source_for`` receives ``(index, record)`` and returns the source id
    (or ``None`` for the implicit default source).  Records are copied --
    the input stream is not mutated -- with all other fields preserved.
    """
    tagged: List[StreamEdge] = []
    for index, record in enumerate(records):
        copy = StreamEdge.from_dict(record.to_dict())
        copy.source_id = source_for(index, record)
        tagged.append(copy)
    return tagged


def split_by_source(records: Iterable[StreamEdge]) -> Dict[Optional[str], List[StreamEdge]]:
    """Group records by their ``source_id`` (order within each group preserved)."""
    groups: Dict[Optional[str], List[StreamEdge]] = {}
    for record in records:
        groups.setdefault(record.source_id, []).append(record)
    return groups


def skewed_interleave(
    per_source: Mapping[Optional[str], Sequence[StreamEdge]],
    lag: Union[Mapping[Optional[str], float], Callable[[Optional[str], float], float]],
) -> List[StreamEdge]:
    """Interleave per-source streams as a skewed merged feed (arrival order).

    Each source delivers its records FIFO (per-source arrival order equals
    its event-time order), but source ``s``'s record stamped ``ts`` only
    *arrives* at merged position ``ts + lag(s, ts)`` -- ``lag`` is either a
    constant per-source mapping or a callable, modelling collector clock
    skew and time-varying delivery delay.  Within a source, arrival times
    are forced non-decreasing (a collector that catches up delivers its
    backlog in order, it does not reorder it).  Returns the merged arrival
    sequence with every record tagged with its source id; ties are broken
    by source-key sort order (a ``None`` key -- untagged records, as
    :func:`split_by_source` groups them -- sorts first; ``lag`` must then
    cover ``None`` too) then in-source position, so the interleaving is
    deterministic.  Event timestamps are left untouched -- only the
    *order* models the skew.
    """
    lag_of: Callable[[Optional[str], float], float]
    if callable(lag):
        lag_of = lag
    else:
        lag_mapping = lag
        lag_of = lambda source, timestamp: lag_mapping[source]  # noqa: E731 - tiny adapter
    keyed: List[Tuple[float, int, int, Optional[str], StreamEdge]] = []
    # a None key (untagged records, as split_by_source produces for them)
    # sorts first rather than crashing the str/None comparison
    source_order = sorted(per_source, key=lambda name: (name is not None, name or ""))
    for source_index, source in enumerate(source_order):
        arrival_clock = _NEG_INF
        for position, record in enumerate(per_source[source]):
            arrival = record.timestamp + lag_of(source, record.timestamp)
            if arrival < arrival_clock:
                arrival = arrival_clock  # FIFO delivery within a source
            arrival_clock = arrival
            keyed.append((arrival, source_index, position, source, record))
    keyed.sort(key=lambda item: item[:3])
    merged: List[StreamEdge] = []
    for _, _, _, source, record in keyed:
        copy = StreamEdge.from_dict(record.to_dict())
        copy.source_id = source
        merged.append(copy)
    return merged
