"""Batching and replay utilities for edge streams.

The paper's formal statement (section 2.1) is batch-oriented: at step ``k+1``
a set of edges ``E_{k+1}`` arrives and the algorithm must return the new
matches.  These helpers slice an edge stream into such batches -- by count or
by time bucket -- and replay them through any callable (the engine, a
baseline, a statistics collector) while recording per-batch metrics.

Feeding batches to :meth:`StreamWorksEngine.process_batch` engages the
engine's batched ingest fast path (whole-batch graph ingest with deferred
eviction, one expiry sweep per matcher per batch, dispatch-index routing per
edge); larger batches amortise more bookkeeping at the cost of coarser
latency attribution.  ``batch_size`` (or ``bucket_seconds``) is therefore a
throughput knob: values in the hundreds work well for the synthetic
workloads in this repo.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from .edge_stream import EdgeStream, StreamEdge
from .metrics import LatencyRecorder, Stopwatch

__all__ = ["batch_by_count", "batch_by_time", "BatchReplay", "BatchResult"]


def batch_by_count(stream: Iterable[StreamEdge], batch_size: int) -> Iterator[List[StreamEdge]]:
    """Yield consecutive batches of ``batch_size`` records (last may be short)."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: List[StreamEdge] = []
    for edge in stream:
        batch.append(edge)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def batch_by_time(stream: Iterable[StreamEdge], bucket_seconds: float) -> Iterator[List[StreamEdge]]:
    """Yield batches whose records fall into consecutive time buckets.

    The stream must be time ordered; the first record anchors the first
    bucket.
    """
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    batch: List[StreamEdge] = []
    bucket_end: Optional[float] = None
    for edge in stream:
        if bucket_end is None:
            bucket_end = edge.timestamp + bucket_seconds
        while edge.timestamp >= bucket_end:
            yield batch
            batch = []
            bucket_end += bucket_seconds
        batch.append(edge)
    if batch:
        yield batch


class BatchResult:
    """Per-batch record produced by :class:`BatchReplay`."""

    __slots__ = ("index", "edges", "matches", "elapsed_s", "stream_time")

    def __init__(self, index: int, edges: int, matches: int, elapsed_s: float, stream_time: float):
        self.index = index
        self.edges = edges
        self.matches = matches
        self.elapsed_s = elapsed_s
        self.stream_time = stream_time

    def to_dict(self) -> Dict[str, float]:
        """Serialise to a dict (used by the reporting tables)."""
        return {
            "batch": float(self.index),
            "edges": float(self.edges),
            "matches": float(self.matches),
            "elapsed_s": self.elapsed_s,
            "stream_time": self.stream_time,
        }


class BatchReplay:
    """Replay a stream in batches through a processing function.

    Parameters
    ----------
    process_batch:
        Callable receiving a list of :class:`StreamEdge` and returning the
        number of (new) matches it produced -- both the incremental engine
        and the repeated-search baseline expose such an entry point.
    """

    def __init__(self, process_batch: Callable[[Sequence[StreamEdge]], int]):
        self.process_batch = process_batch
        self.results: List[BatchResult] = []
        self.latency = LatencyRecorder()

    def run(
        self,
        stream: EdgeStream,
        batch_size: Optional[int] = None,
        bucket_seconds: Optional[float] = None,
    ) -> List[BatchResult]:
        """Replay ``stream`` and return the per-batch results.

        Exactly one of ``batch_size`` / ``bucket_seconds`` must be given.
        """
        if (batch_size is None) == (bucket_seconds is None):
            raise ValueError("specify exactly one of batch_size or bucket_seconds")
        if batch_size is not None:
            batches = batch_by_count(stream, batch_size)
        else:
            batches = batch_by_time(stream, float(bucket_seconds))
        for index, batch in enumerate(batches):
            stopwatch = Stopwatch()
            stopwatch.start()
            matches = self.process_batch(batch)
            elapsed = stopwatch.stop()
            self.latency.record(elapsed)
            stream_time = batch[-1].timestamp if batch else float("nan")
            self.results.append(BatchResult(index, len(batch), matches, elapsed, stream_time))
        return self.results

    def total_matches(self) -> int:
        """Return the sum of matches over all batches."""
        return sum(result.matches for result in self.results)

    def total_elapsed(self) -> float:
        """Return the total processing time over all batches (seconds)."""
        return sum(result.elapsed_s for result in self.results)

    def total_edges(self) -> int:
        """Return the number of edges replayed over all batches."""
        return sum(result.edges for result in self.results)

    def overall_rate(self) -> float:
        """Return edges per second across the whole replay (0.0 before any work)."""
        elapsed = self.total_elapsed()
        if elapsed <= 0:
            return 0.0
        return self.total_edges() / elapsed
