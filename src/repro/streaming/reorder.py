"""Event-time reordering: bounded-lateness buffers, watermarks, run splitting.

The paper's query semantics are defined over *event time* -- a match is
admissible when its temporal extent fits inside ``tW`` -- but real feeds
(netflow collectors, article wires) deliver records late and out of order.
Historically any internally out-of-order batch silently demoted the engine
to its slowest per-record path, so the most realistic workload ran on the
least optimised code.  This module provides the event-time ingestion layer
that keeps disordered streams on the batched fast path:

* :class:`ReorderBuffer` -- a bounded-lateness reorder buffer.  Records are
  appended to a pending list that is stable-sorted by timestamp on release
  (near-linear on its almost-sorted shape); the *watermark* trails the
  largest timestamp seen by ``allowed_lateness``.  Once the watermark
  passes a record's timestamp nothing earlier can still arrive (by the
  lateness contract), so the watermark-closed prefix is released as a
  sorted, in-order batch -- exactly what the engines' batched ingest fast
  path requires.  Records arriving *below* the watermark are genuinely
  late and handled by an explicit :class:`LatePolicy` with counters, never
  silently.
* :func:`ordered_run_slices` -- split a batch at its inversion points into
  maximal non-decreasing runs, so engines can keep the ordered stretches of
  a disordered batch on the batched path instead of demoting the whole
  batch.
* :func:`bounded_shuffle` / :func:`max_time_displacement` -- workload
  helpers producing (and measuring) bounded-displacement disorder, used by
  the out-of-order experiment (E13), the benchmarks and the property tests.

Ordering the cheap admission check (one watermark comparison) ahead of the
expensive matching work is the same argument as predicate ordering for
expensive predicates: pay the cheap filter first, run the costly operator
only on records that passed it, and batch those so the operator amortises.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .edge_stream import StreamEdge

__all__ = [
    "LatePolicy",
    "ReorderBuffer",
    "bounded_shuffle",
    "max_time_displacement",
    "ordered_run_slices",
]


class LatePolicy:
    """Policy names for records arriving below the watermark.

    ``DROP`` (default) discards genuinely-late records, counting them --
    the classic streaming choice when downstream exactness matters more
    than completeness.  ``PROCESS_DEGRADED`` hands them back to the caller
    for immediate out-of-band processing on the exact per-record path:
    the record is not lost, but it is matched against whatever history the
    store still retains (earlier context may already be evicted), so its
    results carry best-effort rather than in-order semantics.
    """

    DROP = "drop"
    PROCESS_DEGRADED = "process_degraded"

    ALL = (DROP, PROCESS_DEGRADED)


def ordered_run_slices(records: Sequence[StreamEdge]) -> List[Tuple[int, int]]:
    """Split a batch at inversion points into maximal non-decreasing runs.

    Returns ``[(start, end), ...]`` half-open index slices covering
    ``records`` exactly; each slice's timestamps never move backwards, and
    each slice is as long as possible (a new run starts only where a record
    is stamped earlier than its predecessor).  An in-order batch yields the
    single slice ``[(0, len(records))]``.
    """
    if not records:
        return []
    slices: List[Tuple[int, int]] = []
    start = 0
    previous = records[0].timestamp
    for index in range(1, len(records)):
        timestamp = records[index].timestamp
        if timestamp < previous:
            slices.append((start, index))
            start = index
        previous = timestamp
    slices.append((start, len(records)))
    return slices


def max_time_displacement(records: Sequence[StreamEdge]) -> float:
    """Return the largest event-time lateness present in an arrival sequence.

    For each record this is how far its timestamp lies behind the running
    maximum of everything that arrived before it; the overall maximum is
    exactly the smallest ``allowed_lateness`` under which a
    :class:`ReorderBuffer` re-sorts the sequence without declaring anything
    late.  An in-order sequence has displacement ``0.0``.
    """
    displacement = 0.0
    running_max = float("-inf")
    for record in records:
        if running_max - record.timestamp > displacement:
            displacement = running_max - record.timestamp
        if record.timestamp > running_max:
            running_max = record.timestamp
    return displacement


def bounded_shuffle(
    records: Sequence[StreamEdge], max_displacement: int, seed: int = 0
) -> List[StreamEdge]:
    """Shuffle a sequence so no record moves more than ``max_displacement`` slots.

    Records are permuted within consecutive blocks of ``max_displacement + 1``
    positions (deterministically, from ``seed``), which bounds every record's
    positional displacement by ``max_displacement`` while producing dense
    local disorder -- the shape of a stream assembled from slightly-skewed
    parallel collectors.  ``max_displacement=0`` returns an unchanged copy.
    """
    if max_displacement < 0:
        raise ValueError("max_displacement must be >= 0")
    shuffled = list(records)
    if max_displacement == 0:
        return shuffled
    rng = random.Random(seed)
    block = max_displacement + 1
    for start in range(0, len(shuffled), block):
        segment = shuffled[start : start + block]
        rng.shuffle(segment)
        shuffled[start : start + block] = segment
    return shuffled


class ReorderBuffer:
    """Bounded-lateness reorder buffer with an explicit late-data policy.

    Parameters
    ----------
    allowed_lateness:
        The lateness horizon in stream-time units.  The watermark trails
        the largest timestamp seen by this amount; records within the
        horizon are re-sorted, records below it are *late* and handled by
        ``late_policy``.  ``0.0`` admits only non-decreasing input (every
        inversion is late); ``float("inf")`` buffers the entire stream
        until :meth:`flush`.
    late_policy:
        :attr:`LatePolicy.DROP` (default) or
        :attr:`LatePolicy.PROCESS_DEGRADED`; see :class:`LatePolicy`.

    The buffer releases records through :meth:`drain_ready`, which pops the
    watermark-closed prefix in ``(timestamp, arrival index)`` order.  The
    concatenation of all drained batches (plus a final :meth:`flush`) is
    therefore globally non-decreasing, and -- when nothing was late -- it
    is exactly the stable timestamp sort of the arrival sequence.
    """

    def __init__(self, allowed_lateness: float, late_policy: str = LatePolicy.DROP):
        allowed_lateness = float(allowed_lateness)
        if not allowed_lateness >= 0.0:  # also rejects NaN
            raise ValueError("allowed_lateness must be >= 0 (stream-time units)")
        if late_policy not in LatePolicy.ALL:
            raise ValueError(
                f"unknown late policy {late_policy!r}; expected one of {LatePolicy.ALL}"
            )
        self.allowed_lateness = allowed_lateness
        self.late_policy = late_policy
        #: Buffered records: a sorted prefix (the tail of the previous
        #: drain) followed by new arrivals in arrival order.  Draining
        #: stable-sorts by timestamp -- timsort is near-linear on this
        #: almost-sorted shape, and stability makes the release order the
        #: stable timestamp sort of the arrival sequence (a heap keyed by
        #: ``(timestamp, arrival index)`` would give the same order at
        #: roughly twice the per-batch admission cost).
        self._pending: List[StreamEdge] = []
        #: Smallest buffered timestamp -- lets a drain with nothing ready
        #: (watermark below everything buffered, e.g. per-record ingest
        #: with a wide or infinite lateness horizon) return without
        #: re-sorting the whole buffer each call.
        self._min_pending = float("inf")
        self._max_seen = float("-inf")
        # counters (exposed via stats())
        self.records_seen = 0
        #: Records that arrived behind the running maximum but within the
        #: lateness horizon -- the disorder the buffer absorbed.
        self.records_reordered = 0
        #: Records below the watermark on arrival (genuinely late).
        self.records_late = 0
        self.records_late_dropped = 0
        self.records_late_degraded = 0
        #: Records released through drain_ready()/flush().
        self.records_released = 0
        #: Largest event-time displacement observed on arrival (late or not).
        self.max_displacement_seen = 0.0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """The event-time watermark: largest timestamp seen minus the lateness."""
        if self._max_seen == float("-inf"):
            return float("-inf")
        return self._max_seen - self.allowed_lateness

    def offer(self, record: StreamEdge) -> Optional[StreamEdge]:
        """Admit one record; return it back only if it is late *and* the
        policy is :attr:`LatePolicy.PROCESS_DEGRADED` (the caller must then
        process it immediately, out of band).  Returns ``None`` otherwise
        (admitted into the buffer, or dropped under :attr:`LatePolicy.DROP`).
        """
        self.records_seen += 1
        displacement = self._max_seen - record.timestamp
        if displacement > self.max_displacement_seen:
            self.max_displacement_seen = displacement
        if displacement > self.allowed_lateness:
            self.records_late += 1
            if self.late_policy == LatePolicy.PROCESS_DEGRADED:
                self.records_late_degraded += 1
                return record
            self.records_late_dropped += 1
            return None
        if displacement > 0:
            self.records_reordered += 1
        self._pending.append(record)
        if record.timestamp < self._min_pending:
            self._min_pending = record.timestamp
        if record.timestamp > self._max_seen:
            self._max_seen = record.timestamp
        return None

    def offer_all(self, records: Iterable[StreamEdge]) -> List[StreamEdge]:
        """Admit many records; return the late ones handed back by the policy."""
        late: List[StreamEdge] = []
        for record in records:
            handed_back = self.offer(record)
            if handed_back is not None:
                late.append(handed_back)
        return late

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def drain_ready(self) -> List[StreamEdge]:
        """Pop and return the watermark-closed prefix as a sorted batch.

        Every returned record has ``timestamp <= watermark``; by the
        lateness contract nothing that could precede them can still arrive,
        so the batch is final and internally non-decreasing.
        """
        watermark = self.watermark
        if not self._pending or watermark < self._min_pending:
            return []
        self._pending.sort(key=attrgetter("timestamp"))
        cut = bisect_right(self._pending, watermark, key=attrgetter("timestamp"))
        ready = self._pending[:cut]
        del self._pending[:cut]
        self._min_pending = (
            self._pending[0].timestamp if self._pending else float("inf")
        )
        self.records_released += len(ready)
        return ready

    def flush(self) -> List[StreamEdge]:
        """Pop and return everything still buffered, sorted (end of stream)."""
        self._pending.sort(key=attrgetter("timestamp"))
        remainder = self._pending
        self._pending = []
        self._min_pending = float("inf")
        self.records_released += len(remainder)
        return remainder

    def __len__(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Serialise the buffer: pending records (arrival order) + counters.

        The pending list is stored in its exact current order -- a sorted
        prefix followed by new arrivals -- because the next drain's stable
        sort depends on it: two records with equal timestamps release in
        arrival order, and a restored buffer must release them identically.
        The ``kind`` key tells the loader which buffer class to rebuild
        (:func:`repro.streaming.sources.reorder_buffer_from_state`).
        """
        return {
            "kind": "single",
            "allowed_lateness": self.allowed_lateness,
            "late_policy": self.late_policy,
            "pending": [record.to_dict() for record in self._pending],
            "min_pending": self._min_pending,
            "max_seen": self._max_seen,
            "records_seen": self.records_seen,
            "records_reordered": self.records_reordered,
            "records_late": self.records_late,
            "records_late_dropped": self.records_late_dropped,
            "records_late_degraded": self.records_late_degraded,
            "records_released": self.records_released,
            "max_displacement_seen": self.max_displacement_seen,
        }

    def _load_base_state(self, state: Dict[str, object]) -> None:
        """Restore the base-class fields from a :meth:`state_dict` payload.

        The single shared restoration block: subclasses' loaders call this
        for the pending list and counters so a field added to
        :meth:`state_dict` only needs one matching loader change.
        """
        self._pending = [StreamEdge.from_dict(payload) for payload in state["pending"]]
        self._min_pending = float(state["min_pending"])
        self._max_seen = float(state["max_seen"])
        self.records_seen = state["records_seen"]
        self.records_reordered = state["records_reordered"]
        self.records_late = state["records_late"]
        self.records_late_dropped = state["records_late_dropped"]
        self.records_late_degraded = state["records_late_degraded"]
        self.records_released = state["records_released"]
        self.max_displacement_seen = float(state["max_displacement_seen"])

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ReorderBuffer":
        """Rebuild a buffer from :meth:`state_dict` output (exact resume:
        the restored buffer releases future records identically).  Loaders
        that may encounter either buffer kind should dispatch through
        :func:`repro.streaming.sources.reorder_buffer_from_state` instead."""
        buffer = cls(state["allowed_lateness"], late_policy=state["late_policy"])
        buffer._load_base_state(state)
        return buffer

    def stats(self) -> Dict[str, float]:
        """Return admission/lateness counters as a plain JSON-safe dict.

        Keys: configuration (``allowed_lateness``, ``late_policy``), the
        current ``watermark`` and ``buffered`` depth, and the admission
        counters (``records_seen`` / ``records_reordered`` /
        ``records_late`` + per-policy splits / ``records_released`` /
        ``max_displacement_seen``) -- the dictionary surfaced as
        ``engine.metrics()["reorder"]`` and documented in
        ``docs/operations.md``.
        """
        return {
            "allowed_lateness": self.allowed_lateness,
            "late_policy": self.late_policy,
            "watermark": self.watermark,
            "buffered": float(len(self._pending)),
            "records_seen": float(self.records_seen),
            "records_reordered": float(self.records_reordered),
            "records_late": float(self.records_late),
            "records_late_dropped": float(self.records_late_dropped),
            "records_late_degraded": float(self.records_late_degraded),
            "records_released": float(self.records_released),
            "max_displacement_seen": self.max_displacement_seen,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReorderBuffer(lateness={self.allowed_lateness}, "
            f"policy={self.late_policy!r}, buffered={len(self._pending)}, "
            f"watermark={self.watermark})"
        )
