"""Match events and event sinks.

When the incremental matcher completes a match, the engine wraps it into a
:class:`MatchEvent` -- the thing a StreamWorks user actually consumes: which
registered query fired, which data vertices/edges are involved, when the
triggering edge arrived and how long after the event's first edge the
detection happened (the *detection latency* the paper's motivation is all
about).

Sinks decouple the engine from what users do with events: collect them,
call back into application code, or print a log line.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..isomorphism.match import Match

__all__ = [
    "MatchEvent",
    "EventSink",
    "CollectingSink",
    "CallbackSink",
    "CountingSink",
    "MultiSink",
    "QueryFilterSink",
    "merge_events",
]


class MatchEvent:
    """A complete match of a registered query, as delivered to the user."""

    __slots__ = ("query_name", "match", "detected_at", "sequence", "trigger_index")

    def __init__(
        self,
        query_name: str,
        match: Match,
        detected_at: float,
        sequence: int,
        trigger_index: Optional[int] = None,
    ):
        self.query_name = query_name
        self.match = match
        #: Stream time (timestamp of the edge that completed the match).
        self.detected_at = detected_at
        #: Monotone per-engine event number.
        self.sequence = sequence
        #: Index (within the emitting engine's ingest stream, 0-based) of the
        #: edge whose arrival completed the match; ``None`` when the emitter
        #: does not track it.  The sharded engine uses this to merge
        #: per-shard events back into the exact single-engine order.
        self.trigger_index = trigger_index

    @property
    def detection_latency(self) -> float:
        """Stream-time lag between the event's first edge and its detection."""
        return self.detected_at - self.match.earliest

    @property
    def span(self) -> float:
        """Temporal extent of the matched subgraph."""
        return self.match.span

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dict (vertex bindings + edge ids)."""
        return {
            "query": self.query_name,
            "sequence": self.sequence,
            "detected_at": self.detected_at,
            "detection_latency": self.detection_latency,
            "span": self.span,
            "vertices": dict(self.match.vertex_map),
            "edges": sorted(self.match.data_edge_ids()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchEvent(query={self.query_name!r}, seq={self.sequence}, "
            f"t={self.detected_at}, {self.match.describe()})"
        )


class EventSink:
    """Interface: receives every :class:`MatchEvent` the engine emits."""

    def deliver(self, event: MatchEvent) -> None:
        raise NotImplementedError


class CollectingSink(EventSink):
    """Store every event in memory (the default sink)."""

    def __init__(self) -> None:
        self.events: List[MatchEvent] = []

    def deliver(self, event: MatchEvent) -> None:
        self.events.append(event)

    def for_query(self, query_name: str) -> List[MatchEvent]:
        """Return the collected events of one registered query."""
        return [event for event in self.events if event.query_name == query_name]

    def clear(self) -> None:
        """Drop all collected events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MatchEvent]:
        return iter(self.events)


class CallbackSink(EventSink):
    """Invoke a user callback per event (errors propagate to the caller)."""

    def __init__(self, callback: Callable[[MatchEvent], None]):
        self.callback = callback

    def deliver(self, event: MatchEvent) -> None:
        self.callback(event)


class QueryFilterSink(EventSink):
    """Forward only the events of one named query to an inner sink.

    The engine wraps per-query ``on_match`` callbacks in this filter so a
    callback registered for query A never sees query B's events (and can be
    detached as a unit when A is unregistered).
    """

    def __init__(self, query_name: str, inner: EventSink):
        self.query_name = query_name
        self.inner = inner

    def deliver(self, event: MatchEvent) -> None:
        if event.query_name == self.query_name:
            self.inner.deliver(event)


class CountingSink(EventSink):
    """Count events per query without retaining them (cheap for benchmarks)."""

    def __init__(self) -> None:
        self.total = 0
        self.per_query: Dict[str, int] = {}

    def deliver(self, event: MatchEvent) -> None:
        self.total += 1
        self.per_query[event.query_name] = self.per_query.get(event.query_name, 0) + 1


def merge_events(*event_lists: Sequence[MatchEvent]) -> List[MatchEvent]:
    """Merge several event lists into one deterministic order.

    Events are ordered by ``(detected_at, sequence, query name)`` -- the
    detection timestamp first, with ties broken by the emitting engine's
    sequence number and then the query name.  Events fully tied on all
    three keys (possible when merging outputs of independent engines, whose
    sequence numbers collide) keep concatenation order: stable within each
    input list, and between lists in the order the lists are passed.

    This is the generic merger for event lists that share (or don't care
    about) a sequence space -- splitting one engine's output by query and
    recombining, interleaving replay runs, and the like.  It is *not* how
    the sharded engine reconstructs single-engine order: that requires the
    triggering edge's global stream index, which
    :class:`~repro.core.sharded.ShardedStreamEngine` tracks internally via
    :attr:`MatchEvent.trigger_index`.
    """
    combined: List[MatchEvent] = []
    for events in event_lists:
        combined.extend(events)
    combined.sort(key=lambda event: (event.detected_at, event.sequence, event.query_name))
    return combined


class MultiSink(EventSink):
    """Fan an event out to several sinks."""

    def __init__(self, sinks: Optional[Iterable[EventSink]] = None):
        self.sinks: List[EventSink] = list(sinks or [])

    def add(self, sink: EventSink) -> None:
        """Attach another sink."""
        self.sinks.append(sink)

    def remove(self, sink: EventSink) -> bool:
        """Detach a sink; returns ``False`` when it was not attached."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            return False
        return True

    def deliver(self, event: MatchEvent) -> None:
        for sink in self.sinks:
            sink.deliver(event)
