"""Text/structured visualisation substitutes for the demo's UI (Figs. 4-7)."""

from .ascii import (
    render_match,
    render_match_table,
    render_node_counts,
    render_query,
    render_sjtree,
)
from .export import graph_to_dot, graph_to_json, matches_to_json, query_to_dot
from .geo import EventGrid, location_of_match, subnet_of_vertex
from .snapshots import EmergingMatchTracker, Snapshot

__all__ = [
    "EmergingMatchTracker",
    "EventGrid",
    "Snapshot",
    "graph_to_dot",
    "graph_to_json",
    "location_of_match",
    "matches_to_json",
    "query_to_dot",
    "render_match",
    "render_match_table",
    "render_node_counts",
    "render_query",
    "render_sjtree",
    "subnet_of_vertex",
]
