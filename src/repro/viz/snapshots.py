"""Emerging-match snapshots (substitute for paper Fig. 7).

Fig. 7 shows, for several different SJ-Tree query plans, snapshots of a
dynamic computer network with the partially-matched pattern highlighted and a
percentage indicating "the fraction of query graph being matched as measured
by the number of edges".  The :class:`EmergingMatchTracker` records exactly
that time series for one matcher: after every processed edge (or at a chosen
sampling interval) it snapshots

* the best matched-edge fraction across all stored partial matches,
* the number of partial matches stored per SJ-Tree node, and
* the cumulative number of complete matches,

which is what the E5 benchmark prints side by side for each query plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.matcher import ContinuousQueryMatcher

__all__ = ["Snapshot", "EmergingMatchTracker"]


class Snapshot:
    """One sampled point of matching progress."""

    __slots__ = ("stream_time", "edges_processed", "matched_fraction", "stored_partial", "complete_matches", "per_node")

    def __init__(
        self,
        stream_time: float,
        edges_processed: int,
        matched_fraction: float,
        stored_partial: int,
        complete_matches: int,
        per_node: Dict[int, int],
    ):
        self.stream_time = stream_time
        self.edges_processed = edges_processed
        self.matched_fraction = matched_fraction
        self.stored_partial = stored_partial
        self.complete_matches = complete_matches
        self.per_node = per_node

    def to_dict(self) -> Dict[str, object]:
        """Serialise for reporting."""
        return {
            "stream_time": self.stream_time,
            "edges_processed": self.edges_processed,
            "matched_fraction": self.matched_fraction,
            "stored_partial": self.stored_partial,
            "complete_matches": self.complete_matches,
            "per_node": dict(self.per_node),
        }


class EmergingMatchTracker:
    """Sample the matching progress of one :class:`ContinuousQueryMatcher`."""

    def __init__(self, matcher: ContinuousQueryMatcher, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.matcher = matcher
        self.sample_every = sample_every
        self.snapshots: List[Snapshot] = []
        self._since_last_sample = 0

    def observe(self, stream_time: float) -> Optional[Snapshot]:
        """Record a snapshot if the sampling interval has elapsed; return it if taken."""
        self._since_last_sample += 1
        if self._since_last_sample < self.sample_every:
            return None
        self._since_last_sample = 0
        return self.force_snapshot(stream_time)

    def force_snapshot(self, stream_time: float) -> Snapshot:
        """Record a snapshot unconditionally and return it."""
        snapshot = Snapshot(
            stream_time=stream_time,
            edges_processed=self.matcher.stats.edges_processed,
            matched_fraction=self.matcher.matched_edge_fraction(),
            stored_partial=self.matcher.stored_partial_matches(),
            complete_matches=self.matcher.stats.complete_matches,
            per_node={
                node_id: count
                for node_id, count in self.matcher.tree.match_counts_by_node().items()
            },
        )
        self.snapshots.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # series extraction
    # ------------------------------------------------------------------
    def fraction_series(self) -> List[float]:
        """Return the matched-fraction time series."""
        return [snapshot.matched_fraction for snapshot in self.snapshots]

    def stored_series(self) -> List[int]:
        """Return the stored-partial-match time series."""
        return [snapshot.stored_partial for snapshot in self.snapshots]

    def complete_series(self) -> List[int]:
        """Return the cumulative complete-match time series."""
        return [snapshot.complete_matches for snapshot in self.snapshots]

    def time_series(self) -> List[float]:
        """Return the stream-time axis of the snapshots."""
        return [snapshot.stream_time for snapshot in self.snapshots]

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        """Return the first stream time at which the matched fraction reached ``fraction``."""
        for snapshot in self.snapshots:
            if snapshot.matched_fraction >= fraction:
                return snapshot.stream_time
        return None

    def peak_stored(self) -> int:
        """Return the largest number of simultaneously stored partial matches."""
        return max(self.stored_series(), default=0)

    def render(self, width: int = 60) -> str:
        """Render the matched-fraction series as a simple text sparkline table."""
        if not self.snapshots:
            return "(no snapshots)"
        lines = ["stream_time  fraction  stored  complete"]
        step = max(1, len(self.snapshots) // width)
        for snapshot in self.snapshots[::step]:
            bar = "#" * int(snapshot.matched_fraction * 20)
            lines.append(
                f"{snapshot.stream_time:>11.2f}  {snapshot.matched_fraction:>7.0%}  "
                f"{snapshot.stored_partial:>6}  {snapshot.complete_matches:>8}  {bar}"
            )
        return "\n".join(lines)
