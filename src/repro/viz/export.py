"""Export helpers: DOT and JSON serialisations of graphs, queries and matches.

The demo adapts Gephi to render data-graph snapshots with partial and
complete matches highlighted.  The reproduction exports the same information
as Graphviz DOT (with matched elements coloured) and as JSON, so users with a
local Graphviz/Gephi installation can recreate the figures, and so that
results can be archived in a structured form.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..graph.property_graph import PropertyGraph
from ..isomorphism.match import Match
from ..query.query_graph import QueryGraph

__all__ = ["graph_to_dot", "query_to_dot", "matches_to_json", "graph_to_json"]

_PALETTE = ("red", "blue", "green", "orange", "purple", "brown", "cyan", "magenta")


def _quote(value) -> str:
    return '"' + str(value).replace('"', '\\"') + '"'


def graph_to_dot(
    graph: PropertyGraph,
    matches: Sequence[Match] = (),
    name: str = "data_graph",
    include_timestamps: bool = True,
) -> str:
    """Render a property graph as DOT, highlighting matched vertices/edges.

    Each match gets its own colour from a small palette (cycled), mirroring
    the demo's colour-coded partial matches.
    """
    store = graph.graph if hasattr(graph, "graph") else graph
    vertex_colors: Dict[object, str] = {}
    edge_colors: Dict[int, str] = {}
    for index, match in enumerate(matches):
        color = _PALETTE[index % len(_PALETTE)]
        for data_vertex in match.vertex_map.values():
            vertex_colors.setdefault(data_vertex, color)
        for edge in match.edge_map.values():
            edge_colors.setdefault(edge.id, color)

    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    newline = "\\n"
    for vertex in store.vertices():
        vertex_text = f"{vertex.id}{newline}({vertex.label})"
        attributes = [f"label={_quote(vertex_text)}"]
        if vertex.id in vertex_colors:
            attributes.append(f"color={vertex_colors[vertex.id]}")
            attributes.append("penwidth=2")
        lines.append(f"  {_quote(vertex.id)} [{', '.join(attributes)}];")
    for edge in store.edges():
        label = edge.label
        if include_timestamps:
            label += f"\\nt={edge.timestamp:g}"
        attributes = [f"label={_quote(label)}"]
        if edge.id in edge_colors:
            attributes.append(f"color={edge_colors[edge.id]}")
            attributes.append("penwidth=2")
        lines.append(f"  {_quote(edge.source)} -> {_quote(edge.target)} [{', '.join(attributes)}];")
    lines.append("}")
    return "\n".join(lines)


def query_to_dot(query: QueryGraph, name: Optional[str] = None) -> str:
    """Render a query graph as DOT (variables as node labels, constraints as edge labels)."""
    graph_name = (name or query.name).replace("-", "_").replace(":", "_")
    lines = [f"digraph {graph_name} {{", "  node [shape=box, style=rounded];"]
    for vertex in query.vertices():
        label = vertex.name
        if vertex.label:
            label += f":{vertex.label}"
        predicate = vertex.predicate.describe()
        if predicate != "*":
            label += f"\\n{predicate}"
        lines.append(f"  {_quote(vertex.name)} [label={_quote(label)}];")
    for edge in query.edges():
        label = edge.label or "*"
        predicate = edge.predicate.describe()
        if predicate != "*":
            label += f"\\n{predicate}"
        style = "" if edge.directed else ", dir=none"
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} [label={_quote(label)}{style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def graph_to_json(graph: PropertyGraph) -> str:
    """Serialise a property graph as a JSON document with vertex and edge arrays."""
    store = graph.graph if hasattr(graph, "graph") else graph
    payload = {
        "vertices": [vertex.to_dict() for vertex in store.vertices()],
        "edges": [edge.to_dict() for edge in store.edges()],
    }
    return json.dumps(payload, indent=2, default=str)


def matches_to_json(matches: Iterable[Match], query: Optional[QueryGraph] = None) -> str:
    """Serialise matches as JSON (vertex bindings, edge bindings, span)."""
    records: List[Dict[str, object]] = []
    for match in matches:
        record: Dict[str, object] = {
            "vertices": {str(k): str(v) for k, v in match.vertex_map.items()},
            "edges": {
                str(query_edge_id): edge.to_dict() for query_edge_id, edge in match.edge_map.items()
            },
            "span": match.span,
            "earliest": match.earliest,
            "latest": match.latest,
        }
        if query is not None:
            record["query"] = query.name
        records.append(record)
    return json.dumps(records, indent=2, default=str)
