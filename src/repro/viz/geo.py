"""Geospatial / grid aggregation views (substitutes for Figs. 5 and 6).

The demo shows query hits on a map keyed by a location vertex attribute
(Fig. 5) and a grid of subnetworks lighting up as a DDoS cascades across them
(Fig. 6).  Both are aggregations of match events along two axes -- a spatial
key and a time bucket -- so this module provides exactly that: an
:class:`EventGrid` accumulator plus text rendering.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..streaming.events import MatchEvent

__all__ = ["EventGrid", "location_of_match", "subnet_of_vertex"]


def location_of_match(event: MatchEvent, location_variable: str = "loc") -> Optional[str]:
    """Extract the data vertex bound to the query's location variable."""
    value = event.match.vertex_map.get(location_variable)
    return None if value is None else str(value)


def subnet_of_vertex(vertex_id: str) -> Optional[str]:
    """Return the /24 prefix of a dotted-quad IP vertex id (``"10.0.3"``), else ``None``."""
    parts = str(vertex_id).split(".")
    if len(parts) != 4:
        return None
    return ".".join(parts[:3])


class EventGrid:
    """Aggregate match events into (spatial key, time bucket) cells.

    Parameters
    ----------
    bucket_seconds:
        Width of the time buckets.
    key_function:
        Maps a :class:`MatchEvent` to its spatial key (a location vertex, a
        subnet, a topic...).  Events mapping to ``None`` are dropped but
        counted in :attr:`skipped`.
    """

    def __init__(
        self,
        bucket_seconds: float,
        key_function: Callable[[MatchEvent], Optional[str]],
    ):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self.key_function = key_function
        self._cells: Dict[Tuple[str, int], int] = defaultdict(int)
        self._first_detection: Dict[str, float] = {}
        self.skipped = 0
        self.total = 0

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def bucket_of(self, timestamp: float) -> int:
        """Return the integer bucket index of a timestamp."""
        return int(timestamp // self.bucket_seconds)

    def add(self, event: MatchEvent) -> None:
        """Fold one match event into the grid."""
        key = self.key_function(event)
        if key is None:
            self.skipped += 1
            return
        bucket = self.bucket_of(event.detected_at)
        self._cells[(key, bucket)] += 1
        self.total += 1
        if key not in self._first_detection or event.detected_at < self._first_detection[key]:
            self._first_detection[key] = event.detected_at

    def add_all(self, events: Iterable[MatchEvent]) -> None:
        """Fold many events into the grid."""
        for event in events:
            self.add(event)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Return the spatial keys seen, ordered by first detection time."""
        return sorted(self._first_detection, key=lambda key: self._first_detection[key])

    def buckets(self) -> List[int]:
        """Return the sorted bucket indexes that contain at least one event."""
        return sorted({bucket for _, bucket in self._cells})

    def count(self, key: str, bucket: int) -> int:
        """Return the number of events in one cell."""
        return self._cells.get((key, bucket), 0)

    def counts_by_key(self) -> Dict[str, int]:
        """Return total events per spatial key."""
        totals: Dict[str, int] = defaultdict(int)
        for (key, _), count in self._cells.items():
            totals[key] += count
        return dict(totals)

    def first_detection(self, key: str) -> Optional[float]:
        """Return the stream time of the first event for a key."""
        return self._first_detection.get(key)

    def detection_order(self) -> List[str]:
        """Return keys ordered by when they first lit up (the Fig. 6 cascade order)."""
        return self.keys()

    def rows(self) -> List[Dict[str, object]]:
        """Return one dict per cell -- the machine-readable Fig. 5 table."""
        result = []
        for (key, bucket), count in sorted(self._cells.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            result.append(
                {
                    "key": key,
                    "bucket": bucket,
                    "bucket_start": bucket * self.bucket_seconds,
                    "count": count,
                }
            )
        return result

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, max_keys: int = 20, cell_width: int = 5) -> str:
        """Render the grid as a text heat table (keys as rows, buckets as columns)."""
        keys = self.keys()[:max_keys]
        buckets = self.buckets()
        if not keys or not buckets:
            return "(empty grid)"
        key_width = max(len("key"), max(len(key) for key in keys))
        header = "key".ljust(key_width) + " | " + " ".join(
            f"t{bucket}".rjust(cell_width) for bucket in buckets
        )
        lines = [header, "-" * len(header)]
        for key in keys:
            cells = " ".join(
                (str(self.count(key, bucket)) if self.count(key, bucket) else ".").rjust(cell_width)
                for bucket in buckets
            )
            lines.append(key.ljust(key_width) + " | " + cells)
        if len(self.keys()) > max_keys:
            lines.append(f"... ({len(self.keys()) - max_keys} more keys)")
        return "\n".join(lines)
