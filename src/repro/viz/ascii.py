"""ASCII rendering of SJ-Trees, decompositions and matches.

The demo paper invests heavily in visualisation (Figs. 4-7).  A terminal
reproduction obviously cannot ship Gephi and a map widget, but the *content*
of those views -- which primitive sits where in the SJ-Tree, how far each
partial match has progressed, which data vertices a match binds -- is plain
structured information, rendered here as text so benchmarks can print it and
tests can assert on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.sjtree import SJTree, SJTreeNode
from ..isomorphism.match import Match
from ..query.query_graph import QueryGraph

__all__ = ["render_query", "render_sjtree", "render_match", "render_match_table", "render_node_counts"]


def render_query(query: QueryGraph) -> str:
    """Render a query graph as an indented vertex/edge listing."""
    return query.describe()


def _node_label(tree: SJTree, node: SJTreeNode, show_matches: bool) -> str:
    edges = sorted(node.subgraph.edge_ids())
    kind = "leaf" if node.is_leaf else ("root" if node.is_root else "join")
    descriptions = ", ".join(tree.query.edge(edge_id).describe() for edge_id in edges)
    label = f"[{node.id}:{kind}] {{{descriptions}}}"
    if not node.is_leaf and node.cut_vertices:
        label += f" cut={list(node.cut_vertices)}"
    if show_matches:
        label += f" matches={node.match_count()}"
    return label


def render_sjtree(tree: SJTree, show_matches: bool = True) -> str:
    """Render the SJ-Tree top-down with box-drawing indentation.

    Example output::

        [4:root] {a1 -[mentions]-> k, ...} cut=['k', 'loc'] matches=2
        ├── [3:join] {...} cut=['k', 'loc'] matches=5
        │   ├── [0:leaf] {a1 -[mentions]-> k, a1 -[locatedIn]-> loc} matches=12
        │   └── [1:leaf] {a2 -[mentions]-> k, a2 -[locatedIn]-> loc} matches=12
        └── [2:leaf] {a3 -[mentions]-> k, a3 -[locatedIn]-> loc} matches=12
    """
    lines: List[str] = []

    def render(node_id: int, prefix: str, is_last: bool, is_root: bool) -> None:
        node = tree.node(node_id)
        if is_root:
            lines.append(_node_label(tree, node, show_matches))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + _node_label(tree, node, show_matches))
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = [c for c in (node.left_id, node.right_id) if c is not None]
        for index, child in enumerate(children):
            render(child, child_prefix, index == len(children) - 1, False)

    render(tree.root_id, "", True, True)
    return "\n".join(lines)


def render_match(match: Match, query: Optional[QueryGraph] = None) -> str:
    """Render one match: vertex bindings plus (optionally) the bound data edges."""
    lines = [f"match span={match.span:.3f} ({len(match.edge_map)} edges)"]
    for query_vertex, data_vertex in sorted(match.vertex_map.items()):
        lines.append(f"  {query_vertex} -> {data_vertex}")
    for query_edge_id, edge in sorted(match.edge_map.items()):
        description = f"edge {query_edge_id}"
        if query is not None and query.has_edge(query_edge_id):
            description = query.edge(query_edge_id).describe()
        lines.append(
            f"  [{description}] = {edge.source} -[{edge.label}]-> {edge.target} @ {edge.timestamp:.3f}"
        )
    return "\n".join(lines)


def render_match_table(matches: Sequence[Match], columns: Optional[Sequence[str]] = None) -> str:
    """Render matches as a fixed-width table of their vertex bindings.

    ``columns`` selects and orders the query variables shown; by default all
    variables of the first match are shown in sorted order.
    """
    if not matches:
        return "(no matches)"
    if columns is None:
        columns = sorted(matches[0].vertex_map.keys())
    header = ["#"] + list(columns) + ["span"]
    rows = [header]
    for index, match in enumerate(matches):
        rows.append(
            [str(index)]
            + [str(match.vertex_map.get(column, "-")) for column in columns]
            + [f"{match.span:.2f}"]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row_index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if row_index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def render_node_counts(tree: SJTree) -> str:
    """Render one line per SJ-Tree node with its stored match count (Fig. 7 style)."""
    total_edges = max(1, tree.query.edge_count())
    lines = []
    for node_id in sorted(tree.nodes):
        node = tree.node(node_id)
        fraction = node.subgraph.edge_count() / total_edges
        bar = "#" * node.match_count() if node.match_count() <= 40 else "#" * 40 + "+"
        lines.append(
            f"node {node_id:>2} ({node.subgraph.edge_count()}/{total_edges} edges, "
            f"{fraction:>4.0%}): {node.match_count():>5} {bar}"
        )
    return "\n".join(lines)
