"""Experiment harness: per-figure/table reproduction functions, reporting, CLI."""

from .experiments import ALL_EXPERIMENTS
from .reporting import format_report, format_table, monotonic_non_decreasing, save_json, speedup
from .runner import main, run_experiments

__all__ = [
    "ALL_EXPERIMENTS",
    "format_report",
    "format_table",
    "main",
    "monotonic_non_decreasing",
    "run_experiments",
    "save_json",
    "speedup",
]
