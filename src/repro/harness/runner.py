"""Command-line entry point: run reproduction experiments and print their tables.

Installed as the ``streamworks`` console script::

    streamworks --list
    streamworks E2 E5 --scale 0.5
    streamworks all --scale 1.0 --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .experiments import ALL_EXPERIMENTS
from .reporting import format_report

__all__ = ["main", "run_experiments"]


def run_experiments(ids: Sequence[str], scale: float = 1.0) -> Dict[str, dict]:
    """Run the named experiments (or all of them for ``["all"]``) and return results."""
    if len(ids) == 1 and ids[0].lower() == "all":
        ids = list(ALL_EXPERIMENTS.keys())
    results: Dict[str, dict] = {}
    for experiment_id in ids:
        key = experiment_id.upper()
        if key not in ALL_EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known ids: {', '.join(ALL_EXPERIMENTS)}"
            )
        results[key] = ALL_EXPERIMENTS[key](scale=scale)
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="streamworks",
        description="Run StreamWorks reproduction experiments (see DESIGN.md / EXPERIMENTS.md).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (E1..E10) or 'all' (default)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor (default 1.0)")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--json", metavar="PATH", help="also dump all results as JSON to PATH")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id, function in ALL_EXPERIMENTS.items():
            first_line = (function.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id}: {first_line}")
        return 0

    try:
        results = run_experiments(args.experiments, scale=args.scale)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    for experiment_id, result in results.items():
        print(format_report(f"{experiment_id}: {result.get('experiment', '')}", result))
        print()

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, default=str)
        print(f"results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
