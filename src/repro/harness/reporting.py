"""Plain-text reporting helpers for the experiment harness.

Every experiment in :mod:`repro.harness.experiments` returns a dictionary
containing (at least) a ``rows`` list of flat dictionaries.  The helpers here
render those rows as aligned text tables -- the reproduction's stand-in for
the paper's figures -- and provide simple shape checks (monotonicity,
dominance) that EXPERIMENTS.md references.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_report", "save_json", "monotonic_non_decreasing", "speedup"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as an aligned text table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used in insertion order.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [list(columns)]
    for row in rows:
        table.append([_format_value(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def format_report(title: str, result: Mapping[str, Any], columns: Optional[Sequence[str]] = None) -> str:
    """Render an experiment result: title, scalar summary lines, then the rows table."""
    lines = [f"== {title} =="]
    for key, value in result.items():
        if key == "rows" or isinstance(value, (list, dict)):
            continue
        lines.append(f"{key}: {_format_value(value)}")
    rows = result.get("rows")
    if rows:
        lines.append(format_table(rows, columns))
    return "\n".join(lines)


def save_json(path: str, result: Mapping[str, Any]) -> None:
    """Persist an experiment result as JSON (benchmarks archive their outputs)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, default=str)


def monotonic_non_decreasing(values: Iterable[float]) -> bool:
    """Return ``True`` when the series never decreases (used in shape checks)."""
    values = list(values)
    return all(values[i] <= values[i + 1] for i in range(len(values) - 1))


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Return baseline/improved, guarding against a zero denominator."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds
