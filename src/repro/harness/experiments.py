"""Experiment harness: one function per reproduced figure/table (see DESIGN.md).

Every function is deterministic (seeded generators), takes a ``scale``
parameter so tests can run a small version and the benchmarks the full
version, and returns a plain dictionary with

* ``rows`` -- the table/series the paper artefact corresponds to, ready for
  :func:`repro.harness.reporting.format_table`;
* scalar summary fields (totals, speedups, shape-check booleans).

The experiment ids (E1..E10) map to paper artefacts as documented in
DESIGN.md section 4 and EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.naive_incremental import NaiveIncrementalEngine
from ..baselines.repeated_search import RepeatedSearchEngine
from ..core.decomposition import Strategy
from ..core.engine import EngineConfig, StreamWorksEngine
from ..core.sharded import ShardConfig, ShardedStreamEngine
from ..core.matcher import ContinuousQueryMatcher
from ..core.planner import PlannerConfig, QueryPlanner
from ..graph.dynamic_graph import DynamicGraph
from ..graph.window import TimeWindow
from ..isomorphism.vf2 import SubgraphMatcher
from ..query.query_graph import QueryGraph
from ..queries.cyber import (
    data_exfiltration_query,
    port_scan_query,
    smurf_ddos_query,
    worm_propagation_query,
)
from ..queries.news import common_topic_location_query, labelled_topic_query
from ..stats.selectivity import SelectivityEstimator
from ..stats.summarizer import GraphSummary, StreamSummarizer
from ..streaming.batching import BatchReplay
from ..streaming.edge_stream import EdgeStream, StreamEdge, merge_streams
from ..streaming.async_ingest import AsyncIngestFrontend
from ..streaming.metrics import Stopwatch
from ..streaming.reorder import ReorderBuffer, bounded_shuffle, max_time_displacement
from ..streaming.sources import (
    MultiSourceReorderBuffer,
    skewed_interleave,
    split_by_source,
    tag_sources,
)
from ..viz.geo import EventGrid, location_of_match, subnet_of_vertex
from ..viz.snapshots import EmergingMatchTracker
from ..sketch import DedupMemory
from ..workloads.attacks import AttackInjector, high_cardinality_flood
from ..workloads.drifting import DriftingConfig, DriftingGenerator
from ..workloads.netflow import NetflowConfig, NetflowGenerator
from ..workloads.nyt import NewsStreamConfig, NewsStreamGenerator
from ..workloads.rmat import RmatConfig, RmatGenerator

__all__ = [
    "experiment_fig2_news_decomposition",
    "experiment_fig3_cyber_queries",
    "experiment_fig5_news_map",
    "experiment_fig6_ddos_cascade",
    "experiment_fig7_query_plans",
    "experiment_tab1_throughput",
    "experiment_tab2_incremental_vs_repeated",
    "experiment_tab3_selectivity_ablation",
    "experiment_tab4_summarization",
    "experiment_tab5_window_sweep",
    "experiment_multiquery_dispatch",
    "experiment_sharded_scaling",
    "experiment_out_of_order_throughput",
    "experiment_checkpoint_recovery",
    "experiment_multisource_ingest",
    "experiment_adaptive_replan",
    "experiment_sketch_membership",
    "experiment_columnar_hot_path",
    "ALL_EXPERIMENTS",
]


# ----------------------------------------------------------------------
# shared workload builders
# ----------------------------------------------------------------------
def _news_workload(
    article_count: int,
    bursts: Sequence[Tuple[str, str, float]],
    seed: int = 17,
    mean_interarrival: float = 2.0,
):
    generator = NewsStreamGenerator(
        NewsStreamConfig(seed=seed, mean_interarrival=mean_interarrival)
    )
    stream, events = generator.stream_with_bursts(article_count, bursts)
    return stream, events, generator


def _netflow_with_attacks(
    record_count: int,
    seed: int = 11,
    smurf_times: Sequence[float] = (),
    worm_times: Sequence[float] = (),
    scan_times: Sequence[float] = (),
    exfil_times: Sequence[float] = (),
    subnet_count: int = 8,
    reflector_count: int = 4,
):
    generator = NetflowGenerator(NetflowConfig(seed=seed, subnet_count=subnet_count))
    background = generator.stream(record_count)
    injector = AttackInjector(generator, seed=seed + 1)
    pieces = [background]
    for t in smurf_times:
        pieces.append(injector.smurf_ddos(t, reflector_count=reflector_count))
    for t in worm_times:
        pieces.append(injector.worm_propagation(t))
    for t in scan_times:
        pieces.append(injector.port_scan(t))
    for t in exfil_times:
        pieces.append(injector.data_exfiltration(t))
    return merge_streams(*pieces, name="netflow_with_attacks"), generator, injector


def _summary_from_stream(stream: EdgeStream, window: Optional[float] = None) -> GraphSummary:
    """Build planning statistics by replaying a stream prefix through a summarizer."""
    graph = DynamicGraph(TimeWindow(window) if window else TimeWindow(None))
    summarizer = StreamSummarizer(track_triads=True, triad_sample_cap=16)
    for record in stream:
        edge = graph.ingest(
            record.source,
            record.target,
            record.label,
            record.timestamp,
            record.attrs,
            source_label=record.source_label,
            target_label=record.target_label,
        )
        summarizer.observe(graph, edge)
    return summarizer.summary()


# ----------------------------------------------------------------------
# E1 (Fig. 2): SJ-Tree decomposition of the news query
# ----------------------------------------------------------------------
def experiment_fig2_news_decomposition(scale: float = 1.0, seed: int = 17) -> Dict[str, object]:
    """Reproduce Fig. 2: decompose the "3 articles share keyword+location" query.

    Reports the chosen primitives, their selectivity estimates, and -- after
    running the stream -- how many matches accumulated at each SJ-Tree level.
    """
    article_count = max(50, int(200 * scale))
    bursts = [
        ("politics", "washington", 120.0),
        ("accident", "paris", 260.0),
        ("politics", "london", 400.0),
    ]
    stream, planted, _ = _news_workload(article_count, bursts, seed=seed)
    query = common_topic_location_query(3)
    window = 60.0

    summary = _summary_from_stream(stream.limit(len(stream) // 3))
    planner = QueryPlanner(summary, PlannerConfig(strategy=Strategy.SELECTIVITY))
    plan = planner.plan(query)

    graph = DynamicGraph(TimeWindow(window))
    matcher = ContinuousQueryMatcher(
        query, plan.decomposition, graph, TimeWindow(window), dedupe_structural=True
    )
    for record in stream:
        edge = graph.ingest(
            record.source,
            record.target,
            record.label,
            record.timestamp,
            record.attrs,
            source_label=record.source_label,
            target_label=record.target_label,
        )
        matcher.process_edge(edge)

    rows = []
    for node_id in sorted(matcher.tree.nodes):
        node = matcher.tree.node(node_id)
        rows.append(
            {
                "node": node_id,
                "kind": "leaf" if node.is_leaf else ("root" if node.is_root else "join"),
                "query_edges": node.subgraph.edge_count(),
                "cut": ",".join(node.cut_vertices) if node.cut_vertices else "-",
                "matches_inserted": node.total_inserted,
                "matches_stored": node.match_count(),
            }
        )
    return {
        "experiment": "E1_fig2_news_decomposition",
        "article_count": article_count,
        "window": window,
        "primitives": plan.primitive_count(),
        "strategy": plan.strategy,
        "complete_matches": matcher.stats.complete_matches,
        "planted_bursts": len(planted),
        "plan_description": plan.describe(),
        "estimates": plan.estimates,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E2 (Fig. 3): cyber-attack query catalogue
# ----------------------------------------------------------------------
def experiment_fig3_cyber_queries(scale: float = 1.0, seed: int = 11) -> Dict[str, object]:
    """Reproduce Fig. 3: run the four cyber queries against traffic with planted attacks."""
    record_count = max(500, int(2000 * scale))
    duration = record_count * 0.05
    smurf_times = [duration * 0.3, duration * 0.8]
    worm_times = [duration * 0.45]
    scan_times = [duration * 0.6]
    exfil_times = [duration * 0.7]
    stream, _, _ = _netflow_with_attacks(
        record_count,
        seed=seed,
        smurf_times=smurf_times,
        worm_times=worm_times,
        scan_times=scan_times,
        exfil_times=exfil_times,
    )

    queries = {
        "smurf_ddos": (smurf_ddos_query(3), 10.0, len(smurf_times)),
        "worm_propagation": (worm_propagation_query(), 30.0, len(worm_times)),
        "port_scan": (port_scan_query(3), 5.0, len(scan_times)),
        "data_exfiltration": (data_exfiltration_query(), 30.0, len(exfil_times)),
    }

    engine = StreamWorksEngine(config=EngineConfig(dedupe_structural=True, track_triads=False))
    for name, (query, window, _) in queries.items():
        engine.register_query(query, name=name, window=window)
    engine.process_stream(stream)

    rows = []
    for name, (query, window, planted) in queries.items():
        events = engine.events(name)
        latencies = [event.detection_latency for event in events]
        rows.append(
            {
                "query": name,
                "query_edges": query.edge_count(),
                "window": window,
                "planted_attacks": planted,
                "events": len(events),
                "detected": int(bool(events)),
                "mean_detection_latency": sum(latencies) / len(latencies) if latencies else 0.0,
            }
        )
    return {
        "experiment": "E2_fig3_cyber_queries",
        "stream_edges": len(stream),
        "all_attacks_detected": all(row["events"] >= row["planted_attacks"] for row in rows),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E3 (Fig. 5): map view of news query hits
# ----------------------------------------------------------------------
def experiment_fig5_news_map(scale: float = 1.0, seed: int = 19) -> Dict[str, object]:
    """Reproduce Fig. 5: labelled topic queries aggregated by location and time bucket."""
    article_count = max(80, int(300 * scale))
    bursts = [
        ("politics", "washington", 100.0),
        ("politics", "london", 300.0),
        ("accident", "paris", 200.0),
        ("protest", "cairo", 420.0),
    ]
    stream, planted, _ = _news_workload(article_count, bursts, seed=seed)
    topics = sorted({topic for topic, _, _ in bursts})

    engine = StreamWorksEngine(config=EngineConfig(dedupe_structural=True, track_triads=False))
    for topic in topics:
        engine.register_query(labelled_topic_query(topic, article_count=3), name=f"topic:{topic}", window=60.0)
    engine.process_stream(stream)

    rows = []
    grids: Dict[str, EventGrid] = {}
    for topic in topics:
        grid = EventGrid(bucket_seconds=60.0, key_function=lambda e: location_of_match(e, "loc"))
        grid.add_all(engine.events(f"topic:{topic}"))
        grids[topic] = grid
        for cell in grid.rows():
            rows.append(
                {
                    "topic": topic,
                    "location": cell["key"],
                    "bucket_start": cell["bucket_start"],
                    "events": cell["count"],
                }
            )
    planted_pairs = {(topic, f"loc:{location}") for topic, location, _ in bursts}
    detected_pairs = {(row["topic"], row["location"]) for row in rows}
    return {
        "experiment": "E3_fig5_news_map",
        "topics": topics,
        "planted_events": len(planted),
        "planted_pairs_detected": sum(1 for pair in planted_pairs if pair in detected_pairs),
        "planted_pairs_total": len(planted_pairs),
        "rows": rows,
        "grids": {topic: grid.render() for topic, grid in grids.items()},
    }


# ----------------------------------------------------------------------
# E4 (Fig. 6): Smurf DDoS cascade across subnetworks
# ----------------------------------------------------------------------
def experiment_fig6_ddos_cascade(scale: float = 1.0, seed: int = 13) -> Dict[str, object]:
    """Reproduce Fig. 6: detect the cascade order of a multi-subnet Smurf attack."""
    record_count = max(400, int(1500 * scale))
    subnet_count = 6
    generator = NetflowGenerator(NetflowConfig(seed=seed, subnet_count=subnet_count, host_count=180))
    background = generator.stream(record_count)
    injector = AttackInjector(generator, seed=seed + 1)
    cascade_start = record_count * 0.05 * 0.3
    cascade, plan = injector.smurf_cascade(
        cascade_start, subnet_count=subnet_count, stage_gap=8.0, reflector_count=5
    )
    stream = merge_streams(background, cascade, name="ddos_cascade")

    engine = StreamWorksEngine(config=EngineConfig(dedupe_structural=True, track_triads=False))
    engine.register_query(smurf_ddos_query(3), name="smurf", window=10.0)
    engine.process_stream(stream)

    grid = EventGrid(
        bucket_seconds=8.0,
        key_function=lambda event: subnet_of_vertex(event.match.vertex_map.get("broadcast", "")),
    )
    grid.add_all(engine.events("smurf"))

    rows = []
    detection_order = grid.detection_order()
    for stage, (subnet, injected_at) in enumerate(zip(plan.subnet_order, plan.start_times)):
        key = f"10.0.{subnet}"
        first = grid.first_detection(key)
        rows.append(
            {
                "stage": stage,
                "subnet": key,
                "injected_at": injected_at,
                "first_detection": first if first is not None else float("nan"),
                "detection_lag": (first - injected_at) if first is not None else float("nan"),
                "detected": int(first is not None),
            }
        )
    expected_order = [f"10.0.{subnet}" for subnet in plan.subnet_order]
    detected_in_order = [key for key in detection_order if key in set(expected_order)]
    return {
        "experiment": "E4_fig6_ddos_cascade",
        "stream_edges": len(stream),
        "subnets_attacked": len(plan.subnet_order),
        "subnets_detected": sum(row["detected"] for row in rows),
        "cascade_order_preserved": detected_in_order == [k for k in expected_order if k in detected_in_order],
        "grid": grid.render(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E5 (Fig. 7): emerging matches under different query plans
# ----------------------------------------------------------------------
def experiment_fig7_query_plans(scale: float = 1.0, seed: int = 23) -> Dict[str, object]:
    """Reproduce Fig. 7: track match progress under different SJ-Tree plans."""
    record_count = max(300, int(1200 * scale))
    duration = record_count * 0.05
    stream, generator, injector = _netflow_with_attacks(
        record_count,
        seed=seed,
        smurf_times=[duration * 0.4, duration * 0.75],
        reflector_count=5,
    )
    query = smurf_ddos_query(3)
    window = 10.0
    summary = _summary_from_stream(stream.limit(len(stream) // 4))

    strategies = [
        Strategy.SELECTIVITY,
        Strategy.ANTI_SELECTIVE,
        Strategy.EDGE_BY_EDGE,
        Strategy.BALANCED_PAIRS,
    ]
    rows = []
    trackers: Dict[str, EmergingMatchTracker] = {}
    complete_counts = set()
    for strategy in strategies:
        planner = QueryPlanner(summary, PlannerConfig(strategy=strategy))
        plan = planner.plan(query)
        graph = DynamicGraph(TimeWindow(window))
        matcher = ContinuousQueryMatcher(
            query, plan.decomposition, graph, TimeWindow(window), dedupe_structural=True
        )
        tracker = EmergingMatchTracker(matcher, sample_every=max(1, len(stream) // 200))
        stopwatch = Stopwatch()
        stopwatch.start()
        for record in stream:
            edge = graph.ingest(
                record.source,
                record.target,
                record.label,
                record.timestamp,
                record.attrs,
                source_label=record.source_label,
                target_label=record.target_label,
            )
            matcher.process_edge(edge)
            tracker.observe(edge.timestamp)
        elapsed = stopwatch.stop()
        trackers[strategy] = tracker
        complete_counts.add(matcher.stats.complete_matches)
        rows.append(
            {
                "strategy": strategy,
                "primitives": plan.primitive_count(),
                "complete_matches": matcher.stats.complete_matches,
                "time_to_full_match": tracker.time_to_fraction(1.0) or float("nan"),
                "peak_stored_partials": tracker.peak_stored(),
                "leaf_matches": matcher.stats.leaf_matches_found,
                "joins_attempted": matcher.stats.joins_attempted,
                "runtime_s": elapsed,
            }
        )
    return {
        "experiment": "E5_fig7_query_plans",
        "stream_edges": len(stream),
        "window": window,
        "all_plans_agree_on_matches": len(complete_counts) == 1,
        "fraction_series": {name: tracker.fraction_series() for name, tracker in trackers.items()},
        "stored_series": {name: tracker.stored_series() for name, tracker in trackers.items()},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E6 (Table 1): streaming throughput and latency
# ----------------------------------------------------------------------
def experiment_tab1_throughput(scale: float = 1.0, seed: int = 31) -> Dict[str, object]:
    """Reproduce the demo-setup throughput claim: sustained rate vs stream size."""
    sizes = [int(size * scale) for size in (1000, 2500, 5000, 10000)]
    sizes = [max(200, size) for size in sizes]
    rows = []
    for size in sizes:
        duration = size * 0.05
        stream, _, _ = _netflow_with_attacks(
            size, seed=seed, smurf_times=[duration * 0.5], reflector_count=4
        )
        engine = StreamWorksEngine(
            config=EngineConfig(dedupe_structural=True, track_triads=False)
        )
        engine.register_query(smurf_ddos_query(3), name="smurf", window=10.0)
        engine.register_query(port_scan_query(3), name="scan", window=5.0)
        stopwatch = Stopwatch()
        stopwatch.start()
        engine.process_stream(stream)
        elapsed = stopwatch.stop()
        latency = engine.latency.summary()
        rows.append(
            {
                "stream_edges": len(stream),
                "elapsed_s": elapsed,
                "edges_per_s": len(stream) / elapsed if elapsed > 0 else float("inf"),
                "latency_p50_ms": latency["p50"] * 1000,
                "latency_p99_ms": latency["p99"] * 1000,
                "events": engine.collector.__len__(),
                "retained_edges": engine.graph.edge_count(),
            }
        )
    rates = [row["edges_per_s"] for row in rows]
    return {
        "experiment": "E6_tab1_throughput",
        "sizes": sizes,
        "rate_stays_flat": max(rates) / max(1e-9, min(rates)) < 5.0,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E7 (Table 2): incremental vs repeated search
# ----------------------------------------------------------------------
def experiment_tab2_incremental_vs_repeated(
    scale: float = 1.0, seed: int = 37, batch_size: int = 50
) -> Dict[str, object]:
    """Reproduce the core claim: incremental SJ-Tree search vs per-batch re-search.

    The window is deliberately long relative to the batch span: the
    repeated-search baseline must re-enumerate every embedding in the
    retained graph after each batch, while the incremental engine only does
    work in the neighbourhood of the new edges -- that asymmetry is the
    paper's core argument for incremental processing.
    """
    article_count = max(60, int(250 * scale))
    bursts = [
        ("politics", "washington", 80.0),
        ("economy", "london", 200.0),
        ("politics", "tokyo", 330.0),
    ]
    stream, _, _ = _news_workload(article_count, bursts, seed=seed)
    query = common_topic_location_query(2)
    window = 300.0

    # incremental engine
    engine = StreamWorksEngine(config=EngineConfig(dedupe_structural=True, track_triads=False))
    engine.register_query(query, name="news", window=window)
    incremental_replay = BatchReplay(lambda batch: len(engine.process_batch(batch)))
    incremental_replay.run(stream, batch_size=batch_size)

    # repeated-search baseline
    baseline = RepeatedSearchEngine(query, window=window, dedupe_structural=True)
    baseline_replay = BatchReplay(lambda batch: len(baseline.process_batch(batch)))
    baseline_replay.run(stream, batch_size=batch_size)

    rows = []
    for incremental, repeated in zip(incremental_replay.results, baseline_replay.results):
        rows.append(
            {
                "batch": incremental.index,
                "edges": incremental.edges,
                "incremental_s": incremental.elapsed_s,
                "repeated_s": repeated.elapsed_s,
                "incremental_matches": incremental.matches,
                "repeated_matches": repeated.matches,
            }
        )
    incremental_total = incremental_replay.total_elapsed()
    repeated_total = baseline_replay.total_elapsed()
    return {
        "experiment": "E7_tab2_incremental_vs_repeated",
        "stream_edges": len(stream),
        "batch_size": batch_size,
        "incremental_total_s": incremental_total,
        "repeated_total_s": repeated_total,
        "speedup": repeated_total / incremental_total if incremental_total > 0 else float("inf"),
        "incremental_matches": incremental_replay.total_matches(),
        "repeated_matches": baseline_replay.total_matches(),
        # Periodic re-search only observes the graph at batch boundaries, so
        # matches whose window closes mid-batch are invisible to it -- the
        # timeliness blind spot the paper's continuous approach avoids.  The
        # incremental engine therefore reports at least as many matches.
        "repeated_missed_matches": incremental_replay.total_matches()
        - baseline_replay.total_matches(),
        "incremental_finds_all_repeated_finds": incremental_replay.total_matches()
        >= baseline_replay.total_matches(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E8 (Table 3): selectivity-driven join order ablation
# ----------------------------------------------------------------------
def experiment_tab3_selectivity_ablation(scale: float = 1.0, seed: int = 41) -> Dict[str, object]:
    """Quantify how much the selective-first join order reduces stored partial matches.

    Two news workloads are compared:

    * ``correlated_story`` mixes frequent (shared keyword, shared location)
      and rare (shared cited person) relations, so the primitive that gates
      partial-match creation matters -- exactly the situation section 3.1's
      third intuition targets; the selective-first order should store far
      fewer partial matches and attempt far fewer joins.
    * ``common_topic_location`` (the Fig. 2 query) is fully symmetric -- every
      primitive has the same selectivity -- and acts as a control: join order
      cannot help there, and both orders should do the same amount of work.
    """
    from ..queries.news import correlated_story_query

    article_count = max(60, int(250 * scale))
    bursts = [("politics", "washington", 100.0), ("politics", "berlin", 280.0)]
    news_stream, _, _ = _news_workload(article_count, bursts, seed=seed)
    control_stream, _, _ = _news_workload(
        max(50, int(180 * scale)),
        [("economy", "london", 90.0), ("economy", "tokyo", 220.0)],
        seed=seed + 1,
    )

    workloads = [
        ("news/correlated_story", news_stream, correlated_story_query(), 60.0),
        ("news/common_topic_location(control)", control_stream, common_topic_location_query(3), 60.0),
    ]
    rows = []
    for workload_name, stream, query, window in workloads:
        summary = _summary_from_stream(stream.limit(len(stream) // 3))
        per_strategy = {}
        for strategy in (Strategy.SELECTIVITY, Strategy.ANTI_SELECTIVE):
            planner = QueryPlanner(summary, PlannerConfig(strategy=strategy))
            plan = planner.plan(query)
            graph = DynamicGraph(TimeWindow(window))
            matcher = ContinuousQueryMatcher(
                query, plan.decomposition, graph, TimeWindow(window), dedupe_structural=True
            )
            stopwatch = Stopwatch()
            stopwatch.start()
            for record in stream:
                edge = graph.ingest(
                    record.source,
                    record.target,
                    record.label,
                    record.timestamp,
                    record.attrs,
                    source_label=record.source_label,
                    target_label=record.target_label,
                )
                matcher.process_edge(edge)
            elapsed = stopwatch.stop()
            per_strategy[strategy] = matcher
            rows.append(
                {
                    "workload": workload_name,
                    "strategy": strategy,
                    "complete_matches": matcher.stats.complete_matches,
                    "peak_stored_partials": matcher.stats.peak_stored_matches,
                    "leaf_matches": matcher.stats.leaf_matches_found,
                    "joins_attempted": matcher.stats.joins_attempted,
                    "runtime_s": elapsed,
                }
            )
    selective = [row for row in rows if row["strategy"] == Strategy.SELECTIVITY]
    anti = [row for row in rows if row["strategy"] == Strategy.ANTI_SELECTIVE]
    reductions = [
        (a["peak_stored_partials"] + 1) / (s["peak_stored_partials"] + 1)
        for s, a in zip(selective, anti)
    ]
    return {
        "experiment": "E8_tab3_selectivity_ablation",
        "partial_match_reduction_factors": reductions,
        "selective_never_worse": all(
            s["peak_stored_partials"] <= a["peak_stored_partials"] for s, a in zip(selective, anti)
        ),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E9 (Table 4): summarization cost and estimate accuracy
# ----------------------------------------------------------------------
def experiment_tab4_summarization(scale: float = 1.0, seed: int = 43) -> Dict[str, object]:
    """Measure statistics collection cost and selectivity-estimate accuracy."""
    edge_count = max(500, int(3000 * scale))
    workloads = [
        ("rmat", RmatGenerator(RmatConfig(seed=seed)).stream(edge_count)),
        ("netflow", NetflowGenerator(NetflowConfig(seed=seed + 1)).stream(edge_count)),
        (
            "news",
            NewsStreamGenerator(NewsStreamConfig(seed=seed + 2)).background_stream(
                max(100, edge_count // 4)
            ),
        ),
    ]
    rows = []
    accuracy_rows = []
    for name, stream in workloads:
        for triads in (True, False):
            graph = DynamicGraph(TimeWindow(None))
            summarizer = StreamSummarizer(track_triads=triads, triad_sample_cap=16)
            stopwatch = Stopwatch()
            stopwatch.start()
            for record in stream:
                edge = graph.ingest(
                    record.source,
                    record.target,
                    record.label,
                    record.timestamp,
                    record.attrs,
                    source_label=record.source_label,
                    target_label=record.target_label,
                )
                summarizer.observe(graph, edge)
            elapsed = stopwatch.stop()
            summary = summarizer.summary()
            rows.append(
                {
                    "workload": name,
                    "triads": triads,
                    "edges": len(stream),
                    "seconds": elapsed,
                    "edges_per_s": len(stream) / elapsed if elapsed > 0 else float("inf"),
                    "edge_types": len(summary.edge_labels),
                    "signatures": len(summary.signatures),
                    "triad_patterns": summary.triads.distinct_patterns() if triads else 0,
                }
            )
        # estimate accuracy on the news workload's query primitives
        if name == "news":
            summary = _summary_from_stream(stream)
            estimator = SelectivityEstimator(summary)
            query = common_topic_location_query(3)
            graph = DynamicGraph(TimeWindow(None))
            for record in stream:
                graph.ingest(
                    record.source,
                    record.target,
                    record.label,
                    record.timestamp,
                    record.attrs,
                    source_label=record.source_label,
                    target_label=record.target_label,
                )
            matcher = SubgraphMatcher(graph)
            from ..core.decomposition import enumerate_pair_primitives

            for primitive in enumerate_pair_primitives(query)[:4]:
                estimated = estimator.estimate_primitive(query, primitive)
                actual = matcher.count_matches(primitive)
                accuracy_rows.append(
                    {
                        "primitive": primitive.name,
                        "estimated": estimated,
                        "actual": actual,
                        "ratio": (estimated + 1) / (actual + 1),
                    }
                )
    return {
        "experiment": "E9_tab4_summarization",
        "rows": rows,
        "estimate_accuracy": accuracy_rows,
        "estimates_within_10x": all(0.1 <= row["ratio"] <= 10 for row in accuracy_rows)
        if accuracy_rows
        else True,
    }


# ----------------------------------------------------------------------
# E10 (Table 5): time-window semantics
# ----------------------------------------------------------------------
def experiment_tab5_window_sweep(scale: float = 1.0, seed: int = 47) -> Dict[str, object]:
    """Check the tW semantics: matches vs window size, with fast and slow planted patterns."""
    record_count = max(300, int(1200 * scale))
    duration = record_count * 0.05
    generator = NetflowGenerator(NetflowConfig(seed=seed))
    background = generator.stream(record_count)
    injector = AttackInjector(generator, seed=seed + 1)
    # fast scans (span ~0.02 * 3) and slow scans (span ~8 * 3)
    fast = [injector.port_scan(duration * f, port_count=4, spacing=0.01) for f in (0.2, 0.5)]
    slow = [injector.port_scan(duration * f, port_count=4, spacing=8.0) for f in (0.35, 0.7)]
    stream = merge_streams(background, *fast, *slow, name="window_sweep")
    query = port_scan_query(3)

    windows = [1.0, 10.0, 40.0, 200.0]
    rows = []
    previous_events = -1
    monotone = True
    spans_ok = True
    for window in windows:
        engine = StreamWorksEngine(config=EngineConfig(dedupe_structural=True, track_triads=False))
        engine.register_query(query, name="scan", window=window)
        engine.process_stream(stream)
        events = engine.events("scan")
        if any(event.span >= window for event in events):
            spans_ok = False
        if len(events) < previous_events:
            monotone = False
        previous_events = len(events)
        rows.append(
            {
                "window": window,
                "events": len(events),
                "max_span": max((event.span for event in events), default=0.0),
                "stored_partials": engine.queries["scan"].matcher.stored_partial_matches(),
            }
        )
    return {
        "experiment": "E10_tab5_window_sweep",
        "stream_edges": len(stream),
        "events_monotone_in_window": monotone,
        "all_spans_below_window": spans_ok,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E11: cross-query dispatch index under heavy multi-query registration
# ----------------------------------------------------------------------
def _label_disjoint_chain_queries(query_count: int, chain_length: int) -> List[QueryGraph]:
    """Build ``query_count`` path queries over mutually disjoint edge labels."""
    queries = []
    for index in range(query_count):
        query = QueryGraph(f"chain{index}")
        for position in range(chain_length + 1):
            query.add_vertex(f"v{position}", "Host")
        for position in range(chain_length):
            query.add_edge(f"v{position}", f"v{position + 1}", f"rel{index}_{position}")
        queries.append(query)
    return queries


def _multiquery_dispatch_stream(
    query_count: int,
    edge_count: int,
    seed: int,
    chain_length: int,
    vertex_pool: int = 40,
    plant_probability: float = 0.08,
    interarrival: float = 0.02,
) -> List[StreamEdge]:
    """Generate a stream whose edges each target exactly one query's labels.

    Most records are single noise edges carrying a random label of a random
    query; occasionally a complete chain instance is planted so every query
    fires now and then.
    """
    rng = random.Random(seed)
    records: List[StreamEdge] = []
    timestamp = 0.0
    while len(records) < edge_count:
        query_index = rng.randrange(query_count)
        if rng.random() < plant_probability:
            vertices = [
                f"q{query_index}v{rng.randrange(vertex_pool)}" for _ in range(chain_length + 1)
            ]
            for position in range(chain_length):
                timestamp += interarrival
                records.append(
                    StreamEdge(
                        vertices[position],
                        vertices[position + 1],
                        f"rel{query_index}_{position}",
                        timestamp,
                        source_label="Host",
                        target_label="Host",
                    )
                )
        else:
            timestamp += interarrival
            records.append(
                StreamEdge(
                    f"q{query_index}v{rng.randrange(vertex_pool)}",
                    f"q{query_index}v{rng.randrange(vertex_pool)}",
                    f"rel{query_index}_{rng.randrange(chain_length)}",
                    timestamp,
                    source_label="Host",
                    target_label="Host",
                )
            )
    return records[:edge_count]


def experiment_multiquery_dispatch(
    scale: float = 1.0,
    seed: int = 53,
    query_count: int = 20,
    chain_length: int = 6,
    batch_size: int = 200,
    columnar: bool = True,
) -> Dict[str, object]:
    """Measure the cross-query dispatch index under heavy multi-query load.

    ``query_count`` label-disjoint chain queries are registered, so any edge
    can seed the leaves of exactly one query.  The same stream is replayed
    through three configurations:

    * ``seed_scan`` -- dispatch index disabled: every leaf of every query is
      searched per edge (the pre-index hot loop, per-edge cost linear in the
      total number of registered primitives);
    * ``indexed`` -- dispatch index enabled, edge-at-a-time ingest;
    * ``indexed_batched`` -- dispatch index plus the batched ingest fast path.

    All three must report the identical set of complete matches; the indexed
    configurations should be several times faster since they only touch the
    one query an edge can affect.  ``columnar`` selects the ingest execution
    strategy for every mode (compiled columnar vs. interpreted, identical
    events either way), so baseline tooling can record both.
    """
    edge_count = max(400, int(4000 * scale))
    window = 10.0
    queries = _label_disjoint_chain_queries(query_count, chain_length)
    records = _multiquery_dispatch_stream(query_count, edge_count, seed, chain_length)

    def build_engine(use_index: bool) -> StreamWorksEngine:
        engine = StreamWorksEngine(
            config=EngineConfig(
                collect_statistics=False,
                record_latency=False,
                use_dispatch_index=use_index,
                columnar=columnar,
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    modes = [
        ("seed_scan", False, "single"),
        ("indexed", True, "single"),
        ("indexed_batched", True, "batched"),
    ]
    rows = []
    match_sets: Dict[str, set] = {}
    event_orders: Dict[str, List[tuple]] = {}
    dispatch_stats: Dict[str, object] = {}
    for mode_name, use_index, ingest_mode in modes:
        engine = build_engine(use_index)
        stopwatch = Stopwatch()
        stopwatch.start()
        if ingest_mode == "batched":
            for start in range(0, len(records), batch_size):
                engine.process_batch(records[start : start + batch_size])
        else:
            for record in records:
                engine.process_record(record)
        elapsed = stopwatch.stop()
        keyed = [
            (event.query_name, event.match.identity()) for event in engine.collector.events
        ]
        match_sets[mode_name] = set(keyed)
        event_orders[mode_name] = keyed
        if use_index and ingest_mode == "single":
            dispatch_stats = engine.dispatch.stats()
        rows.append(
            {
                "mode": mode_name,
                "edges": len(records),
                "elapsed_s": elapsed,
                "edges_per_s": len(records) / elapsed if elapsed > 0 else float("inf"),
                "events": len(keyed),
                # deterministic work measure: how many (edge, matcher) visits
                # actually ran (the seed scan visits every matcher per edge)
                "matcher_edge_visits": sum(
                    registration.matcher.stats.edges_processed
                    for registration in engine.queries.values()
                ),
            }
        )
    by_mode = {row["mode"]: row for row in rows}
    seed_elapsed = by_mode["seed_scan"]["elapsed_s"]
    for row in rows:
        row["speedup_vs_seed"] = (
            seed_elapsed / row["elapsed_s"] if row["elapsed_s"] > 0 else float("inf")
        )
    return {
        "experiment": "E11_multiquery_dispatch",
        "query_count": query_count,
        "registered_leaves": query_count * -(-chain_length // 2),
        "stream_edges": len(records),
        "batch_size": batch_size,
        "match_sets_identical": (
            match_sets["seed_scan"] == match_sets["indexed"] == match_sets["indexed_batched"]
        ),
        "event_order_identical": event_orders["seed_scan"] == event_orders["indexed"],
        "speedup_indexed": by_mode["indexed"]["speedup_vs_seed"],
        "speedup_batched": by_mode["indexed_batched"]["speedup_vs_seed"],
        "work_reduction": (
            by_mode["seed_scan"]["matcher_edge_visits"]
            / max(1, by_mode["indexed"]["matcher_edge_visits"])
        ),
        "dispatch": dispatch_stats,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E12: query-sharded engine scaling and conformance
# ----------------------------------------------------------------------
def experiment_sharded_scaling(
    scale: float = 1.0,
    seed: int = 61,
    query_count: int = 20,
    chain_length: int = 6,
    batch_size: int = 200,
    shard_counts: Sequence[int] = (1, 2, 4),
    workers: int = 4,
) -> Dict[str, object]:
    """Measure query sharding on a label-disjoint multi-query workload.

    ``query_count`` label-disjoint chain queries are registered (so routing
    sends each record to exactly one shard) and the same stream is replayed
    through:

    * ``single`` -- the unsharded :class:`StreamWorksEngine` (batched);
    * ``serial xN`` -- :class:`ShardedStreamEngine` with N shards on the
      in-process serial scheduler, for each N in ``shard_counts``;
    * ``pool x<max>`` -- the largest shard count again, on the
      ``multiprocessing`` worker-pool scheduler (skipped when the platform
      cannot fork).

    Every configuration must produce the identical event list (same
    matches, same order, same sequence numbers) -- ``conformant`` reports
    that.  Serial sharding is a correctness baseline, not an optimisation:
    it pays routing overhead without parallel execution, so its throughput
    sits at or slightly below the single engine's.  The parallel payoff is
    ``speedup_parallel`` (pool vs. the smallest serial shard count run,
    ``baseline_mode``), which needs real cores:
    ``cpu_count`` records what the host offered, and callers asserting
    scaling thresholds should gate on it.
    """
    edge_count = max(400, int(4000 * scale))
    window = 10.0
    queries = _label_disjoint_chain_queries(query_count, chain_length)
    records = _multiquery_dispatch_stream(query_count, edge_count, seed, chain_length)

    def engine_config() -> EngineConfig:
        return EngineConfig(collect_statistics=False, record_latency=False)

    def register_all(engine) -> None:
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)

    def canonical(events) -> List[tuple]:
        return [
            (event.query_name, event.match.portable_identity(), event.detected_at, event.sequence)
            for event in events
        ]

    def replay(engine) -> list:
        collected = []
        for start in range(0, len(records), batch_size):
            collected.extend(engine.process_batch(records[start : start + batch_size]))
        return collected

    pool_shards = max(shard_counts)
    # the pool row is a real worker pool or nothing: with workers=0 (or no
    # fork) it would silently measure another serial run under a parallel
    # label
    pool_ok = workers > 0 and ShardedStreamEngine.fork_available()
    modes: List[Tuple[str, Optional[int], int]] = [("single", None, 0)]
    modes.extend((f"serial x{count}", count, 0) for count in shard_counts)
    if pool_ok:
        modes.append((f"pool x{pool_shards}", pool_shards, workers))

    rows = []
    canonical_events: Dict[str, List[tuple]] = {}
    routing_stats: Dict[str, object] = {}
    for mode_name, shard_count, mode_workers in modes:
        if shard_count is None:
            engine = StreamWorksEngine(config=engine_config())
        else:
            engine = ShardedStreamEngine(
                config=ShardConfig(
                    shard_count=shard_count, workers=mode_workers, engine=engine_config()
                )
            )
        register_all(engine)
        if shard_count is not None:
            # pay the one-time scheduler startup (pool fork/spawn) outside
            # the stopwatch; the measurement is steady-state throughput
            engine.start()
        stopwatch = Stopwatch()
        stopwatch.start()
        collected = replay(engine)
        elapsed = stopwatch.stop()
        # canonicalisation (frozensets + sorts per match) happens outside
        # the stopwatch -- the measurement is ingest throughput
        keyed = canonical(collected)
        canonical_events[mode_name] = keyed
        if shard_count == pool_shards and mode_workers == 0:
            routing_stats = engine.router.stats()
        if shard_count is not None:
            engine.close()
        rows.append(
            {
                "mode": mode_name,
                "shards": shard_count if shard_count is not None else 1,
                "workers": mode_workers,
                "edges": len(records),
                "elapsed_s": elapsed,
                "edges_per_s": len(records) / elapsed if elapsed > 0 else float("inf"),
                "events": len(keyed),
            }
        )

    reference = canonical_events["single"]
    conformant = all(keyed == reference for keyed in canonical_events.values())
    by_mode = {row["mode"]: row for row in rows}
    # the speedup baseline is the smallest serial shard count actually run
    # (callers may pass shard_counts without 1)
    baseline_mode = f"serial x{min(shard_counts)}"
    baseline_elapsed = by_mode[baseline_mode]["elapsed_s"]
    for row in rows:
        row["speedup_vs_baseline"] = (
            baseline_elapsed / row["elapsed_s"] if row["elapsed_s"] > 0 else float("inf")
        )
    pool_mode = f"pool x{pool_shards}"
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        cpu_count = os.cpu_count() or 1
    return {
        "experiment": "E12_sharded_scaling",
        "query_count": query_count,
        "stream_edges": len(records),
        "batch_size": batch_size,
        "shard_counts": list(shard_counts),
        "conformant": conformant,
        "parallel_capable": pool_ok,
        "cpu_count": cpu_count,
        "baseline_mode": baseline_mode,
        "speedup_serial_max": by_mode[f"serial x{pool_shards}"]["speedup_vs_baseline"],
        "speedup_parallel": by_mode[pool_mode]["speedup_vs_baseline"] if pool_ok else None,
        "routing": routing_stats,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E13: event-time reordering keeps disordered streams on the fast path
# ----------------------------------------------------------------------
def experiment_out_of_order_throughput(
    scale: float = 1.0,
    seed: int = 67,
    query_count: int = 20,
    chain_length: int = 6,
    batch_size: int = 200,
    max_displacement: int = 64,
    shard_count: int = 2,
    columnar: bool = True,
) -> Dict[str, object]:
    """Measure event-time ingestion (reorder buffer + watermark) under disorder.

    The same multi-query stream as E11/E12 (``query_count`` label-disjoint
    chains) is shuffled with bounded positional displacement
    (``max_displacement``) -- the shape of a feed assembled from
    slightly-skewed parallel collectors -- and replayed through:

    * ``sorted_oracle`` -- the sorted stream on the batched fast path: the
      reference match set/order and the throughput ceiling;
    * ``fallback_seed_scan`` -- the shuffled stream per record with the
      dispatch index off: the engine's slowest standing out-of-order path
      (every leaf of every query per record), E11's baseline;
    * ``fallback_per_record`` -- the shuffled stream per record with the
      index on: exactly what ``process_batch`` used to silently demote
      out-of-order batches to;
    * ``runsplit_batched`` -- the shuffled stream through ``process_batch``
      directly: disordered batches split at inversion points, ordered runs
      keep the fast path;
    * ``reordered`` -- ``EngineConfig(allowed_lateness=...)`` sized from the
      stream's measured displacement: the reorder buffer re-sorts within
      the lateness horizon and releases watermark-closed prefixes onto the
      fast path (nothing is late, nothing drops);
    * ``reordered sharded xN`` -- the same event-time config on the
      query-sharded engine (parent-level buffer, conformance must hold).

    The windows are wide relative to the disorder, so every mode can find
    every match and the comparison is equal-work: ``recall`` (fraction of
    oracle matches found) is 1.0 everywhere, and the ``reordered`` modes
    must be *identical* to the oracle as an event multiset
    (``reordered_exact``).  ``fast_path_retained`` checks the deterministic
    part of the claim: the reordered engine pushed every record through the
    batched fast path (``ingest_paths`` counters), where the old behaviour
    pushed every record of a disordered batch down the per-record path.
    ``columnar`` selects the ingest execution strategy for every mode
    (identical events either way), so baseline tooling can record both.
    """
    edge_count = max(400, int(4000 * scale))
    window = 10.0
    queries = _label_disjoint_chain_queries(query_count, chain_length)
    records = _multiquery_dispatch_stream(query_count, edge_count, seed, chain_length)
    shuffled = bounded_shuffle(records, max_displacement, seed=seed + 1)
    lateness = max_time_displacement(shuffled)
    sorted_records = sorted(shuffled, key=lambda record: record.timestamp)

    def build_engine(use_index: bool = True, allowed_lateness: Optional[float] = None):
        engine = StreamWorksEngine(
            config=EngineConfig(
                collect_statistics=False,
                record_latency=False,
                use_dispatch_index=use_index,
                allowed_lateness=allowed_lateness,
                columnar=columnar,
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def build_sharded(allowed_lateness: Optional[float]):
        engine = ShardedStreamEngine(
            config=ShardConfig(
                shard_count=shard_count,
                engine=EngineConfig(
                    collect_statistics=False,
                    record_latency=False,
                    allowed_lateness=allowed_lateness,
                    columnar=columnar,
                ),
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def multiset(events) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for event in events:
            key = (event.query_name, event.match.portable_identity())
            counts[key] = counts.get(key, 0) + 1
        return counts

    def replay_per_record(engine, stream) -> list:
        collected = []
        for record in stream:
            collected.extend(engine.process_record(record))
        return collected

    def replay_batched(engine, stream) -> list:
        collected = []
        for start in range(0, len(stream), batch_size):
            collected.extend(engine.process_batch(stream[start : start + batch_size]))
        collected.extend(engine.flush())
        return collected

    modes = [
        ("sorted_oracle", lambda: (build_engine(), replay_batched, sorted_records)),
        ("fallback_seed_scan", lambda: (build_engine(use_index=False), replay_per_record, shuffled)),
        ("fallback_per_record", lambda: (build_engine(), replay_per_record, shuffled)),
        ("runsplit_batched", lambda: (build_engine(), replay_batched, shuffled)),
        ("reordered", lambda: (build_engine(allowed_lateness=lateness), replay_batched, shuffled)),
        (
            f"reordered sharded x{shard_count}",
            lambda: (build_sharded(allowed_lateness=lateness), replay_batched, shuffled),
        ),
    ]
    rows = []
    multisets: Dict[str, Dict[tuple, int]] = {}
    reorder_stats: Dict[str, object] = {}
    ingest_paths: Dict[str, object] = {}
    for mode_name, make in modes:
        engine, replay, stream = make()
        stopwatch = Stopwatch()
        stopwatch.start()
        events = replay(engine, stream)
        elapsed = stopwatch.stop()
        multisets[mode_name] = multiset(events)
        if mode_name == "reordered":
            metrics = engine.metrics()
            reorder_stats = metrics["reorder"]
            ingest_paths = metrics["ingest_paths"]
        if hasattr(engine, "close"):
            engine.close()
        rows.append(
            {
                "mode": mode_name,
                "edges": len(stream),
                "elapsed_s": elapsed,
                "edges_per_s": len(stream) / elapsed if elapsed > 0 else float("inf"),
                "events": sum(multisets[mode_name].values()),
            }
        )

    oracle = multisets["sorted_oracle"]
    oracle_total = sum(oracle.values())
    by_mode = {row["mode"]: row for row in rows}
    for row in rows:
        found = multisets[row["mode"]]
        correct = sum(min(count, oracle.get(key, 0)) for key, count in found.items())
        row["recall"] = correct / oracle_total if oracle_total else 1.0
        for baseline in ("fallback_seed_scan", "fallback_per_record"):
            baseline_elapsed = by_mode[baseline]["elapsed_s"]
            row[f"speedup_vs_{baseline.removeprefix('fallback_')}"] = (
                baseline_elapsed / row["elapsed_s"] if row["elapsed_s"] > 0 else float("inf")
            )
    reordered_sharded = f"reordered sharded x{shard_count}"
    return {
        "experiment": "E13_out_of_order_throughput",
        "query_count": query_count,
        "stream_edges": len(records),
        "batch_size": batch_size,
        "max_displacement": max_displacement,
        "allowed_lateness": lateness,
        "reordered_exact": multisets["reordered"] == oracle,
        "reordered_sharded_exact": multisets[reordered_sharded] == oracle,
        "runsplit_recall": by_mode["runsplit_batched"]["recall"],
        "fallback_recall": by_mode["fallback_per_record"]["recall"],
        # the deterministic half of the claim: every shuffled record rode the
        # batched fast path; nothing fell back, nothing was late or dropped
        "fast_path_retained": (
            ingest_paths.get("batched_fast_path") == len(shuffled)
            and ingest_paths.get("per_record_path") == 0
            and reorder_stats.get("records_late") == 0
        ),
        "speedup_vs_seed_scan": by_mode["reordered"]["speedup_vs_seed_scan"],
        "speedup_vs_per_record": by_mode["reordered"]["speedup_vs_per_record"],
        "reorder": reorder_stats,
        "ingest_paths": ingest_paths,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E14: crash-consistent checkpoint/restore vs replay-from-scratch
# ----------------------------------------------------------------------
def experiment_checkpoint_recovery(
    scale: float = 1.0,
    seed: int = 71,
    query_count: int = 12,
    chain_length: int = 4,
    batch_size: int = 100,
    windows: Sequence[float] = (2.5, 5.0, 10.0, 20.0),
    shard_count: int = 2,
) -> Dict[str, object]:
    """Measure checkpoint/restore against replaying the stream from scratch.

    Two claims are measured on the E11/E12 multi-query workload:

    * **Exact resume** (the correctness half, asserted at every scale):
      process half the stream, ``checkpoint()``, ``restore()`` into a fresh
      engine, feed the remainder -- the full event history (matches, order,
      sequence numbers) must be byte-identical to the uninterrupted run.
      Checked for the single engine and the ``shard_count``-shard serial
      sharded engine (the crash-at-every-boundary matrix lives in
      ``tests/test_checkpoint.py``; this is the harness-level smoke).
    * **Recovery cost** (the performance half): for each window in
      ``windows``, restoring from a snapshot is compared with the only
      alternative after a crash -- replaying the processed prefix from
      scratch.  Replay cost grows with everything the engine ever saw
      (fixed here: the same prefix re-run per window), while snapshot size
      and checkpoint/restore time grow only with the *live* state
      (windowed store + in-flight partials), so the sweep shows snapshot
      cost tracking the window while restore stays ahead of replay across
      the board -- most dramatically when the window (live state) is small
      relative to the history.  ``rows`` reports snapshot bytes,
      checkpoint/restore/replay seconds and the restore-vs-replay speedup
      per window.
    """
    import tempfile

    edge_count = max(400, int(4000 * scale))
    queries = _label_disjoint_chain_queries(query_count, chain_length)
    records = _multiquery_dispatch_stream(query_count, edge_count, seed, chain_length)
    half = (len(records) // (2 * batch_size)) * batch_size or min(batch_size, len(records))

    def build_single(window: float) -> StreamWorksEngine:
        engine = StreamWorksEngine(
            config=EngineConfig(collect_statistics=False, record_latency=False)
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def build_sharded(window: float) -> ShardedStreamEngine:
        engine = ShardedStreamEngine(
            config=ShardConfig(
                shard_count=shard_count,
                engine=EngineConfig(collect_statistics=False, record_latency=False),
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def replay(engine, slice_records) -> None:
        for start in range(0, len(slice_records), batch_size):
            engine.process_batch(slice_records[start : start + batch_size])

    def canonical(events) -> List[tuple]:
        return [
            (event.query_name, event.match.portable_identity(), event.detected_at, event.sequence)
            for event in events
        ]

    recovery_window = windows[len(windows) // 2]
    identical: Dict[str, bool] = {}
    with tempfile.TemporaryDirectory(prefix="streamworks-e14-") as tmp:
        # --- exact-resume smoke: single and sharded ---------------------
        for mode, build, engine_cls in (
            ("single", build_single, StreamWorksEngine),
            (f"sharded x{shard_count}", build_sharded, ShardedStreamEngine),
        ):
            oracle = build(recovery_window)
            replay(oracle, records)
            reference = canonical(oracle.events())
            crashed = build(recovery_window)
            replay(crashed, records[:half])
            path = os.path.join(tmp, "recovery.snap")
            crashed.checkpoint(path)
            del crashed  # the crash: only the snapshot survives
            resumed = engine_cls.restore(path)
            replay(resumed, records[half:])
            identical[mode] = canonical(resumed.events()) == reference

        # --- recovery cost vs window size -------------------------------
        rows = []
        for window in windows:
            engine = build_single(window)
            replay(engine, records[:half])
            path = os.path.join(tmp, f"w{window}.snap")
            stopwatch = Stopwatch()
            stopwatch.start()
            engine.checkpoint(path)
            checkpoint_s = stopwatch.stop()
            snapshot_bytes = os.path.getsize(path)
            stored_partials = sum(
                registration.matcher.stored_partial_matches()
                for registration in engine.queries.values()
            )
            stopwatch.start()
            restored = StreamWorksEngine.restore(path)
            restore_s = stopwatch.stop()
            # the crash alternative: rebuild the same state by replaying the
            # prefix from scratch into a fresh engine
            fresh = build_single(window)
            stopwatch.start()
            replay(fresh, records[:half])
            replay_s = stopwatch.stop()
            rows.append(
                {
                    "window": window,
                    "prefix_records": half,
                    "graph_edges": restored.graph.edge_count(),
                    "stored_partials": stored_partials,
                    "snapshot_kib": snapshot_bytes / 1024.0,
                    "checkpoint_s": checkpoint_s,
                    "restore_s": restore_s,
                    "replay_s": replay_s,
                    "restore_speedup": replay_s / restore_s if restore_s > 0 else float("inf"),
                }
            )

    return {
        "experiment": "E14_checkpoint_recovery",
        "query_count": query_count,
        "stream_edges": len(records),
        "batch_size": batch_size,
        "checkpoint_at": half,
        "recovery_window": recovery_window,
        "identical_single": identical["single"],
        "identical_sharded": identical[f"sharded x{shard_count}"],
        "max_restore_speedup": max(row["restore_speedup"] for row in rows),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E15: multi-source event time -- per-source watermarks vs one global one
# ----------------------------------------------------------------------
def experiment_multisource_ingest(
    scale: float = 1.0,
    seed: int = 79,
    query_count: int = 12,
    chain_length: int = 4,
    batch_size: int = 100,
    source_count: int = 4,
    shard_count: int = 2,
) -> Dict[str, object]:
    """Measure per-source watermarks against a single global watermark.

    The E11/E12 multi-query stream is split round-robin across
    ``source_count`` collectors, and each collector's records arrive with a
    *time-varying* delivery lag (small at the edges of the stream, spiking
    in the middle third) -- the shape of real per-collector feeds whose
    clocks skew independently.  Per-collector streams stay internally
    ordered; all disorder in the merged arrival sequence is inter-source
    skew.

    **Buffer-level comparison** (deterministic, asserted at every scale)
    replays the identical arrival sequence through three release policies:

    * ``global_small`` -- one global watermark with the lateness each
      *source* actually needs (zero: every collector is internally
      ordered).  The fast collector drags the watermark past the slow
      ones: their records are declared late and lost (``recall < 1``).
    * ``global_exact`` -- one global watermark with the lateness the
      *merged* stream needs (its measured maximum displacement, i.e. the
      worst-case skew).  Nothing is lost, but the horizon trails by the
      worst case **always**, so every record is released late (high mean
      staleness) and the buffer holds the worst case permanently.
    * ``per_source`` -- one watermark per collector, released on the
      minimum across active sources, lateness zero.  Nothing is lost
      *and* the horizon tracks the collectors' actual current lag, so
      release staleness and buffered depth undercut ``global_exact``
      whenever the skew is below its worst case.

    **Idle-source comparison**: the slowest collector goes silent two
    thirds in.  Without a timeout the min-watermark freezes (the held
    tail grows with everything after the silence); with
    ``idle_source_timeout`` the silent source is excluded and the tail
    stays bounded -- both remain exact.

    **Engine-level conformance** (asserted at every scale): the
    multi-source engine (single, ``shard_count``-sharded, and sharded
    behind the :class:`AsyncIngestFrontend`) must emit exactly the
    sorted-merge oracle's match multiset with zero late records; wall
    clock is reported for context (the async row additionally proves the
    synchronous-equivalence contract end to end).
    """
    edge_count = max(400, int(4000 * scale))
    window = 10.0
    queries = _label_disjoint_chain_queries(query_count, chain_length)
    records = _multiquery_dispatch_stream(query_count, edge_count, seed, chain_length)
    span = records[-1].timestamp - records[0].timestamp
    max_lag = span * 0.08
    source_names = [f"collector{index}" for index in range(source_count)]
    spike_start, spike_end = (
        records[0].timestamp + span / 3.0,
        records[0].timestamp + 2.0 * span / 3.0,
    )

    def lag(source: str, timestamp: float) -> float:
        base = max_lag * source_names.index(source) / max(1, source_count - 1)
        if spike_start <= timestamp <= spike_end:
            return base
        return base * 0.125

    tagged = tag_sources(records, lambda index, record: source_names[index % source_count])
    arrival = skewed_interleave(split_by_source(tagged), lag)
    global_lateness = max_time_displacement(arrival)

    # --- buffer-level release comparison --------------------------------
    def replay_buffer(buffer) -> Dict[str, float]:
        stream_clock = float("-inf")
        staleness_total = 0.0
        released = 0
        peak_depth = 0
        for start in range(0, len(arrival), batch_size):
            chunk = arrival[start : start + batch_size]
            buffer.offer_all(chunk)
            for record in chunk:
                if record.timestamp > stream_clock:
                    stream_clock = record.timestamp
            if len(buffer) > peak_depth:
                peak_depth = len(buffer)
            for record in buffer.drain_ready():
                staleness_total += stream_clock - record.timestamp
                released += 1
        tail = buffer.flush()
        for record in tail:
            staleness_total += stream_clock - record.timestamp
            released += 1
        stats = buffer.stats()
        return {
            "released": released,
            "late_dropped": stats["records_late_dropped"],
            "recall": released / len(arrival),
            "mean_staleness": staleness_total / released if released else 0.0,
            "peak_buffered": peak_depth,
            "tail_before_flush": len(tail),
        }

    def per_source_buffer(idle_timeout=None) -> MultiSourceReorderBuffer:
        buffer = MultiSourceReorderBuffer(0.0, idle_timeout=idle_timeout)
        for name in source_names:
            buffer.register_source(name)
        return buffer

    buffer_modes = [
        ("global_small", ReorderBuffer(0.0)),
        ("global_exact", ReorderBuffer(global_lateness)),
        ("per_source", per_source_buffer()),
    ]
    buffer_rows = []
    for mode_name, buffer in buffer_modes:
        row = {"mode": mode_name}
        row.update(replay_buffer(buffer))
        buffer_rows.append(row)
    by_buffer = {row["mode"]: row for row in buffer_rows}

    # --- idle-source comparison: slowest collector goes silent ----------
    cutoff = records[0].timestamp + 2.0 * span / 3.0
    silent_arrival = [
        record
        for record in arrival
        if record.source_id != source_names[-1] or record.timestamp <= cutoff
    ]
    idle_rows = []
    for mode_name, timeout in (("idle_frozen", None), ("idle_timeout", max_lag * 2 or 1.0)):
        buffer = per_source_buffer(idle_timeout=timeout)
        for start in range(0, len(silent_arrival), batch_size):
            chunk = silent_arrival[start : start + batch_size]
            buffer.offer_all(chunk)
            buffer.drain_ready()
        tail = buffer.flush()
        idle_rows.append(
            {
                "mode": mode_name,
                "tail_before_flush": len(tail),
                "late": buffer.records_late,
                "released": buffer.records_released,
            }
        )
    by_idle = {row["mode"]: row for row in idle_rows}

    # --- engine-level conformance + wall clock --------------------------
    def build_single(allowed_lateness: Optional[float]) -> StreamWorksEngine:
        engine = StreamWorksEngine(
            config=EngineConfig(
                collect_statistics=False,
                record_latency=False,
                allowed_lateness=allowed_lateness,
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def build_sharded() -> ShardedStreamEngine:
        engine = ShardedStreamEngine(
            config=ShardConfig(
                shard_count=shard_count,
                engine=EngineConfig(
                    collect_statistics=False, record_latency=False, allowed_lateness=0.0
                ),
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"chain{index}", window=window)
        return engine

    def register_sources(engine) -> None:
        for name in source_names:
            engine.register_source(name)

    def multiset(events) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for event in events:
            key = (event.query_name, event.match.portable_identity())
            counts[key] = counts.get(key, 0) + 1
        return counts

    def replay_batched(engine, stream) -> list:
        collected = []
        for start in range(0, len(stream), batch_size):
            collected.extend(engine.process_batch(stream[start : start + batch_size]))
        collected.extend(engine.flush())
        return collected

    def replay_async(engine, stream) -> list:
        register_sources(engine)
        frontend = AsyncIngestFrontend(engine)
        collected = []
        for start in range(0, len(stream), batch_size):
            frontend.submit(stream[start : start + batch_size])
            collected.extend(frontend.drain())
        collected.extend(frontend.close())
        return collected

    def build_registered(factory):
        engine = factory()
        register_sources(engine)
        return engine

    sorted_arrival = sorted(arrival, key=lambda record: record.timestamp)
    modes = [
        ("sorted_oracle", lambda: (build_single(None), replay_batched, sorted_arrival)),
        (
            "multisource",
            lambda: (build_registered(lambda: build_single(0.0)), replay_batched, arrival),
        ),
        (
            f"multisource sharded x{shard_count}",
            lambda: (build_registered(build_sharded), replay_batched, arrival),
        ),
        (
            f"async sharded x{shard_count}",
            lambda: (build_sharded(), replay_async, arrival),
        ),
    ]
    engine_rows = []
    multisets: Dict[str, Dict[tuple, int]] = {}
    reorder_stats: Dict[str, object] = {}
    for mode_name, make in modes:
        engine, replay, stream = make()
        stopwatch = Stopwatch()
        stopwatch.start()
        events = replay(engine, stream)
        elapsed = stopwatch.stop()
        multisets[mode_name] = multiset(events)
        if mode_name == "multisource":
            reorder_stats = engine.metrics()["reorder"]
        if hasattr(engine, "close"):
            engine.close()
        engine_rows.append(
            {
                "mode": mode_name,
                "edges": len(stream),
                "elapsed_s": elapsed,
                "edges_per_s": len(stream) / elapsed if elapsed > 0 else float("inf"),
                "events": sum(multisets[mode_name].values()),
            }
        )

    oracle = multisets["sorted_oracle"]
    per_source_row = by_buffer["per_source"]
    global_exact_row = by_buffer["global_exact"]
    return {
        "experiment": "E15_multisource_ingest",
        "stream_edges": len(arrival),
        "source_count": source_count,
        "batch_size": batch_size,
        "max_lag": max_lag,
        "global_lateness_needed": global_lateness,
        # the tentpole, in numbers: same per-source lateness, three outcomes
        "global_small_recall": by_buffer["global_small"]["recall"],
        "per_source_recall": per_source_row["recall"],
        "per_source_late": per_source_row["late_dropped"],
        "staleness_global_exact": global_exact_row["mean_staleness"],
        "staleness_per_source": per_source_row["mean_staleness"],
        "staleness_improvement": (
            global_exact_row["mean_staleness"] / per_source_row["mean_staleness"]
            if per_source_row["mean_staleness"] > 0
            else float("inf")
        ),
        "peak_depth_global_exact": global_exact_row["peak_buffered"],
        "peak_depth_per_source": per_source_row["peak_buffered"],
        "idle_frozen_tail": by_idle["idle_frozen"]["tail_before_flush"],
        "idle_timeout_tail": by_idle["idle_timeout"]["tail_before_flush"],
        # engine-level conformance flags
        "multisource_exact": multisets["multisource"] == oracle,
        "multisource_sharded_exact": multisets[f"multisource sharded x{shard_count}"] == oracle,
        "async_exact": multisets[f"async sharded x{shard_count}"] == oracle,
        "multisource_zero_late": reorder_stats.get("records_late") == 0,
        "reorder": reorder_stats,
        "buffer_rows": buffer_rows,
        "idle_rows": idle_rows,
        "rows": engine_rows,
    }


# ----------------------------------------------------------------------
# E16: online adaptive replanning from live selectivity
# ----------------------------------------------------------------------
def experiment_adaptive_replan(
    scale: float = 1.0,
    seed: int = 7,
    batch_size: int = 50,
    replan_threshold: float = 0.5,
    replan_check_every: int = 100,
    shard_count: int = 2,
) -> Dict[str, object]:
    """Measure the closed plan-adaptation loop on a drifting-selectivity stream.

    The paper leaves plan adaptation from continuously collected statistics
    as future work; this experiment exercises the implemented loop end to
    end.  A :class:`DriftingGenerator` stream inverts its edge-label mix one
    third of the way in, so the selectivity ordering a static plan locked in
    at registration is wrong for the remaining two thirds.  Three runs see
    the identical stream:

    * ``static`` -- plans fixed at registration, the baseline;
    * ``adaptive`` -- ``replan_threshold``/``replan_check_every`` armed, so
      the engine re-decomposes drifted plans mid-stream and migrates the
      live partial-match state;
    * ``adaptive_sharded`` -- the same loop under the ``shard_count``-sharded
      engine (parent-paced cadence).

    Asserted at every scale (all deterministic):

    * **conformance** -- both adaptive runs emit byte-for-byte the static
      run's events (same matches, order, sequence numbers): replanning
      changes only the cost of detection, never the answer;
    * **liveness** -- replans demonstrably fired (``triggers_fired > 0``),
      so the conformance claim is not vacuous;
    * **work** -- total matcher work (leaf matches found + joins attempted,
      the deterministic proxy wall-clock throughput follows) does not
      exceed the static baseline: adapting to the drift never costs match
      work.

    Wall-clock throughput for the static and adaptive runs is reported for
    context; it is not asserted (interpreter noise dwarfs the margin at
    smoke scale).
    """
    record_count = max(600, int(6000 * scale))
    drift_at = record_count // 3
    records = list(
        DriftingGenerator(DriftingConfig(seed=seed, drift_at=drift_at)).stream(record_count)
    )

    def chain(name: str, labels: Sequence[Optional[str]]) -> QueryGraph:
        query = QueryGraph(name)
        for position in range(len(labels) + 1):
            query.add_vertex(f"v{position}")
        for position, label in enumerate(labels):
            query.add_edge(f"v{position}", f"v{position + 1}", label)
        return query

    query_specs = [
        ("long", chain("long", ["alpha", "gamma", "alpha", "alpha"]), 1.0),
        ("ggg", chain("ggg", ["gamma", "gamma", "gamma"]), 0.5),
        ("ab", chain("ab", ["alpha", "beta"]), 0.5),
    ]

    def adaptive_engine_config() -> EngineConfig:
        return EngineConfig(
            replan_threshold=replan_threshold, replan_check_every=replan_check_every
        )

    def run(engine) -> Tuple[List[Tuple], float, Dict[str, object]]:
        for name, query, window in query_specs:
            engine.register_query(query, name=name, window=window)
        events: List[object] = []
        with Stopwatch() as watch:
            for start in range(0, len(records), batch_size):
                events.extend(engine.process_batch(records[start : start + batch_size]))
        metrics = engine.metrics()
        canonical = [
            (event.query_name, event.match.portable_identity(), event.sequence)
            for event in events
        ]
        return canonical, watch.elapsed, metrics

    def matcher_work(metrics: Dict[str, object]) -> int:
        if "shards" in metrics:  # sharded metrics nest the per-engine sections
            return sum(
                stats["joins_attempted"] + stats["leaf_matches_found"]
                for shard in metrics["shards"].values()
                for stats in shard["queries"].values()
            )
        return sum(
            stats["joins_attempted"] + stats["leaf_matches_found"]
            for stats in metrics["queries"].values()
        )

    static_events, static_elapsed, static_metrics = run(StreamWorksEngine())
    adaptive_events, adaptive_elapsed, adaptive_metrics = run(
        StreamWorksEngine(config=adaptive_engine_config())
    )
    sharded_events, sharded_elapsed, sharded_metrics = run(
        ShardedStreamEngine(
            config=ShardConfig(shard_count=shard_count, engine=adaptive_engine_config())
        )
    )

    replan = adaptive_metrics["replan"]
    sharded_replan = sharded_metrics["replan"]
    static_work = matcher_work(static_metrics)
    adaptive_work = matcher_work(adaptive_metrics)
    rows = [
        {
            "mode": mode,
            "events": len(events),
            "elapsed_s": round(elapsed, 4),
            "records_per_s": round(len(records) / elapsed, 1) if elapsed else 0.0,
        }
        for mode, events, elapsed in (
            ("static", static_events, static_elapsed),
            ("adaptive", adaptive_events, adaptive_elapsed),
            (f"adaptive_sharded_x{shard_count}", sharded_events, sharded_elapsed),
        )
    ]
    return {
        "experiment": "E16_adaptive_replan",
        "records": record_count,
        "drift_at": drift_at,
        "replan_threshold": replan_threshold,
        "replan_check_every": replan_check_every,
        "adaptive_conformant": adaptive_events == static_events,
        "sharded_conformant": sharded_events == static_events,
        "triggers_fired": replan["triggers_fired"],
        "plans_applied": replan["plans_applied"],
        "partials_migrated": replan["partials_migrated"],
        "plan_versions": replan["plan_versions"],
        "sharded_triggers_fired": sharded_replan["triggers_fired"],
        "static_matcher_work": static_work,
        "adaptive_matcher_work": adaptive_work,
        "work_ratio": round(adaptive_work / static_work, 4) if static_work else 1.0,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E17: sketch-accelerated membership (Bloom-fronted dispatch + bounded dedup)
# ----------------------------------------------------------------------
def experiment_sketch_membership(
    scale: float = 1.0,
    seed: int = 41,
    batch_size: int = 50,
    signal_every: int = 12,
    dedup_budget: int = 2048,
    window: float = 5.0,
) -> Dict[str, object]:
    """Measure the sketch layer on its design-point workload and pin exactness.

    An adversarial high-cardinality flood (every record a brand-new edge
    label) is the dispatch index's worst case: each record misses the
    entry dict only after the engine has resolved both endpoint vertices.
    The counting-Bloom front answers the same misses from two CRC probes
    before any graph access.  Two engines see the identical stream with
    statistics collection off (so the timed loop is the dispatch path):

    * ``sketch_off`` -- the exact dispatch index, the baseline;
    * ``sketch_on`` -- ``sketch_dispatch`` + ``dedup_memory_budget`` armed.

    Asserted at every scale (deterministic):

    * **exactness** -- both runs emit byte-for-byte identical events;
    * **liveness** -- the front rejected exactly the flood records (the
      unique labels), so the throughput claim is about real rejections;
    * **bounded memory** -- the dedup store's *measured* high-water mark
      stays within ``dedup_budget`` while a second, pure-DedupMemory phase
      pushes ``>= 1M * scale`` distinct keys through a retention horizon
      and checks in-horizon suppression recall stays exact.

    Wall-clock speedup of the negative-lookup path is reported for context
    (``dispatch_speedup``); it is not asserted (interpreter noise).
    """
    record_count = max(6_000, int(60_000 * scale))
    records = high_cardinality_flood(record_count, seed=seed, signal_every=signal_every)
    flood_records = sum(1 for record in records if record.label != "signal")

    def signal_query() -> QueryGraph:
        query = QueryGraph("sig")
        query.add_vertex("v0")
        query.add_vertex("v1")
        query.add_edge("v0", "v1", "signal")
        return query

    def run(config: EngineConfig) -> Tuple[List[object], float, Dict[str, object], StreamWorksEngine]:
        engine = StreamWorksEngine(config=config)
        engine.register_query(signal_query(), name="sig", window=window)
        events: List[object] = []
        with Stopwatch() as watch:
            for start in range(0, len(records), batch_size):
                events.extend(engine.process_batch(records[start : start + batch_size]))
        canonical = [
            (event.query_name, event.match.portable_identity(), event.sequence)
            for event in events
        ]
        return canonical, watch.elapsed, engine.metrics(), engine

    off_config = EngineConfig(collect_statistics=False)
    on_config = EngineConfig(
        collect_statistics=False,
        sketch_dispatch=True,
        dedup_memory_budget=dedup_budget,
    )
    off_events, off_elapsed, _, off_engine = run(off_config)
    on_events, on_elapsed, on_metrics, on_engine = run(on_config)

    # isolated negative-lookup timing: the exact path pays two endpoint
    # resolutions plus the candidates() probe for every unbindable label;
    # the front answers the same question from its counting cells.  Runs
    # against the post-stream engines (metrics above were already captured).
    probe_count = max(100_000, int(1_000_000 * scale))
    probe_labels = [f"miss{index}" for index in range(probe_count)]

    def negative_lookup_elapsed(engine: StreamWorksEngine) -> float:
        graph, dispatch = engine.graph, engine.dispatch
        if dispatch.sketch_enabled:
            with Stopwatch() as watch:
                for label in probe_labels:
                    dispatch.front_rejects(label)
            return watch.elapsed
        with Stopwatch() as watch:
            for label in probe_labels:
                source_label = (
                    graph.vertex("S0").label if graph.has_vertex("S0") else None
                )
                target_label = (
                    graph.vertex("T0").label if graph.has_vertex("T0") else None
                )
                dispatch.candidates(label, source_label, target_label)
        return watch.elapsed

    exact_lookup_elapsed = negative_lookup_elapsed(off_engine)
    front_lookup_elapsed = negative_lookup_elapsed(on_engine)

    sketch = on_metrics["sketch"]
    front = sketch["dispatch_front"]
    dedup = sketch["dedup_memory"]
    assert on_events == off_events, (
        "sketch-fronted run diverged from the exact dispatch baseline"
    )
    assert len(off_events) > 0, "flood carried no detectable signal -- vacuous"
    assert front["rejections"] == flood_records, (
        f"front rejected {front['rejections']} of {flood_records} flood records"
    )
    assert dedup["peak_entries"] <= dedup_budget

    # phase 2: bounded dedup memory under >= 1M * scale distinct keys.
    # The horizon holds 10k live keys, the budget double that: horizon
    # expiry is the active bound, the regime where suppression stays exact.
    key_count = max(105_000, int(1_050_000 * scale))
    memory_budget = 20_000
    horizon = TimeWindow(1_000.0)
    memory = DedupMemory(budget=memory_budget, front_buckets=4096, seed=seed)
    step = 0.1
    recall_failures = 0
    for index in range(key_count):
        now = index * step
        memory.add(f"key{index}", now)
        if index % 4096 == 0:
            memory.expire(horizon, now)
        if index % 25_000 == 0 and index >= 5_000:
            # 5k steps ago = 500 time units: comfortably inside the horizon
            if not memory.seen(f"key{index - 5_000}"):
                recall_failures += 1
    memory.expire(horizon, key_count * step)
    memory_stats = memory.stats()
    assert memory_stats["peak_entries"] <= memory_budget, (
        f"dedup store peaked at {memory_stats['peak_entries']} entries "
        f"(budget {memory_budget})"
    )
    assert recall_failures == 0, (
        f"{recall_failures} in-horizon keys were forgotten -- suppression broke"
    )

    rows = [
        {
            "mode": mode,
            "events": len(events),
            "elapsed_s": round(elapsed, 4),
            "records_per_s": round(len(records) / elapsed, 1) if elapsed else 0.0,
        }
        for mode, events, elapsed in (
            ("sketch_off", off_events, off_elapsed),
            ("sketch_on", on_events, on_elapsed),
        )
    ]
    return {
        "experiment": "E17_sketch_membership",
        "records": record_count,
        "flood_records": flood_records,
        "events": len(on_events),
        "events_identical": on_events == off_events,
        "front_rejections": front["rejections"],
        "front_false_positives": front["false_positives"],
        "dedup_budget": dedup_budget,
        "dedup_peak_entries": dedup["peak_entries"],
        "dispatch_speedup": round(off_elapsed / on_elapsed, 4) if on_elapsed else 1.0,
        "negative_lookups": probe_count,
        "negative_lookup_speedup": (
            round(exact_lookup_elapsed / front_lookup_elapsed, 4)
            if front_lookup_elapsed
            else 1.0
        ),
        "memory_keys": key_count,
        "memory_budget": memory_budget,
        "memory_peak_entries": memory_stats["peak_entries"],
        "memory_bound_held": memory_stats["peak_entries"] <= memory_budget,
        "memory_evictions_horizon": memory_stats["evictions_horizon"],
        "memory_evictions_budget": memory_stats["evictions_budget"],
        "memory_recall_failures": recall_failures,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# E18: compiled columnar hot path vs. the interpreted per-record path
# ----------------------------------------------------------------------
def _predicate_banded_chain_queries(query_count: int, chain_length: int) -> List[QueryGraph]:
    """Chain queries sharing one hot label alphabet, separated by predicates.

    Every query uses the same edge labels ``hot_0..hot_{L-1}``, so label
    routing alone cannot tell them apart: each hot record reaches a leaf of
    every query and the *predicate* decides.  Query ``i`` accepts only
    ``bytes`` inside its private band ``[i*1000, i*1000+60]``, wrapped in a
    composition deep enough that the interpreted walk pays generator and
    dispatch overhead per node -- the exact work the compiler flattens.
    """
    from ..query.predicates import And, AttrCompare, AttrExists, AttrIn, AttrRange, Or

    queries = []
    for index in range(query_count):
        low = index * 1000
        query = QueryGraph(f"band{index}")
        for position in range(chain_length + 1):
            query.add_vertex(f"v{position}", "Host")
        for position in range(chain_length):
            predicate = And(
                [
                    AttrExists("bytes"),
                    AttrIn("proto", ["tcp", "udp"]),
                    AttrCompare("port", ">=", 1),
                    AttrRange("port", low=0, high=65535),
                    Or(
                        [
                            AttrRange("bytes", low=low, high=low + 60),
                            AttrCompare("port", "<", 0),
                        ]
                    ),
                    AttrCompare("port", "<=", 1024),
                ]
            )
            query.add_edge(f"v{position}", f"v{position + 1}", f"hot_{position}", predicate=predicate)
        queries.append(query)
    return queries


def _columnar_hot_path_stream(
    query_count: int,
    edge_count: int,
    seed: int,
    chain_length: int,
    vertex_pool: int = 60,
    plant_probability: float = 0.02,
    noise_label_probability: float = 0.25,
    interarrival: float = 0.002,
) -> List[StreamEdge]:
    """Generate the stream E18's predicate-heavy design point calls for.

    Three record populations, all deterministic from ``seed``:

    * **inert noise** -- labels no query references (``cold*``): the
      vectorized prefilter answers these from the memoised label column;
    * **predicate misses** -- hot labels with ``bytes`` outside every
      query's band: they reach a leaf of every query and die in the
      predicate, the compiled-check win;
    * **plants** -- complete chain instances with in-band ``bytes`` for one
      query: real matches, keeping the conformance check non-vacuous.
    """
    rng = random.Random(seed)
    records: List[StreamEdge] = []
    timestamp = 0.0
    miss_low = query_count * 1000 + 500  # above every band
    while len(records) < edge_count:
        timestamp += interarrival
        roll = rng.random()
        if roll < plant_probability:
            query_index = rng.randrange(query_count)
            vertices = [f"p{rng.randrange(vertex_pool)}" for _ in range(chain_length + 1)]
            band_low = query_index * 1000
            for position in range(chain_length):
                timestamp += interarrival
                records.append(
                    StreamEdge(
                        vertices[position],
                        vertices[position + 1],
                        f"hot_{position}",
                        timestamp,
                        attrs={
                            "bytes": band_low + rng.randrange(61),
                            "proto": "tcp",
                            "port": rng.randrange(1, 1025),
                        },
                        source_label="Host",
                        target_label="Host",
                    )
                )
        elif roll < plant_probability + noise_label_probability:
            records.append(
                StreamEdge(
                    f"n{rng.randrange(vertex_pool)}",
                    f"n{rng.randrange(vertex_pool)}",
                    f"cold{rng.randrange(40)}",
                    timestamp,
                    attrs={"bytes": rng.randrange(1_000_000), "proto": "udp"},
                    source_label="Host",
                    target_label="Host",
                )
            )
        else:
            records.append(
                StreamEdge(
                    f"h{rng.randrange(vertex_pool)}",
                    f"h{rng.randrange(vertex_pool)}",
                    f"hot_{rng.randrange(chain_length)}",
                    timestamp,
                    attrs={
                        "bytes": miss_low + rng.randrange(1_000_000),
                        "proto": rng.choice(["tcp", "udp"]),
                        "port": rng.randrange(1, 1025),
                    },
                    source_label="Host",
                    target_label="Host",
                )
            )
    return records[:edge_count]


def experiment_columnar_hot_path(
    scale: float = 1.0,
    seed: int = 71,
    query_count: int = 24,
    chain_length: int = 4,
    batch_size: int = 200,
    window: float = 2.0,
) -> Dict[str, object]:
    """Measure the compiled columnar hot path on its design-point workload.

    ``query_count`` chain queries share one hot label alphabet and differ
    only in per-edge predicate bands, so every hot record reaches a leaf of
    every query and predicate evaluation dominates the per-record cost --
    the work the one-time compiler (and the vectorized prefilter in front
    of it) exists to remove.  The identical stream is replayed through:

    * ``interpreted`` -- ``EngineConfig(columnar=False)``: per-record
      predicate-tree walks, the pre-columnar semantics verbatim;
    * ``columnar`` -- ``columnar=True`` (the default): struct-of-arrays
      batches, memoised label prefiltering, compiled predicate closures.

    **Asserted at every scale** (deterministic, so the CI smoke checks it
    too): both runs emit byte-for-byte identical events -- same matches,
    order, detection timestamps and sequence numbers.  The wall-clock
    multiple (``speedup_columnar``) is reported at every scale but only
    *thresholded* at full scale, by ``benchmarks/bench_columnar.py``.
    """
    edge_count = max(600, int(8000 * scale))
    queries = _predicate_banded_chain_queries(query_count, chain_length)
    records = _columnar_hot_path_stream(query_count, edge_count, seed, chain_length)

    def build_engine(columnar: bool) -> StreamWorksEngine:
        engine = StreamWorksEngine(
            config=EngineConfig(
                collect_statistics=False,
                record_latency=False,
                columnar=columnar,
            )
        )
        for index, query in enumerate(queries):
            engine.register_query(query, name=f"band{index}", window=window)
        return engine

    def canonical(events) -> List[tuple]:
        return [
            (event.query_name, event.match.portable_identity(), event.detected_at, event.sequence)
            for event in events
        ]

    rows = []
    event_lists: Dict[str, List[tuple]] = {}
    columnar_stats: Dict[str, object] = {}
    for mode_name, columnar in (("interpreted", False), ("columnar", True)):
        engine = build_engine(columnar)
        stopwatch = Stopwatch()
        stopwatch.start()
        for start in range(0, len(records), batch_size):
            engine.process_batch(records[start : start + batch_size])
        elapsed = stopwatch.stop()
        event_lists[mode_name] = canonical(engine.collector.events)
        if columnar:
            columnar_stats = engine.metrics()["columnar"]
        rows.append(
            {
                "mode": mode_name,
                "edges": len(records),
                "elapsed_s": elapsed,
                "edges_per_s": len(records) / elapsed if elapsed > 0 else float("inf"),
                "events": len(event_lists[mode_name]),
            }
        )
    by_mode = {row["mode"]: row for row in rows}
    interpreted_elapsed = by_mode["interpreted"]["elapsed_s"]
    columnar_elapsed = by_mode["columnar"]["elapsed_s"]
    return {
        "experiment": "E18_columnar_hot_path",
        "query_count": query_count,
        "chain_length": chain_length,
        "stream_edges": len(records),
        "batch_size": batch_size,
        "events": len(event_lists["columnar"]),
        "events_identical": event_lists["interpreted"] == event_lists["columnar"],
        "speedup_columnar": (
            interpreted_elapsed / columnar_elapsed if columnar_elapsed > 0 else float("inf")
        ),
        "compiled_queries": columnar_stats.get("compiled_queries", 0),
        "compiled_checks": columnar_stats.get("compiled_checks", 0),
        "batches_vectorized": columnar_stats.get("batches_vectorized", 0),
        "records_prefiltered": columnar_stats.get("records_prefiltered", 0),
        "dispatch_memo_hits": columnar_stats.get("dispatch_memo_hits", 0),
        "leaves_pruned": columnar_stats.get("leaves_pruned", 0),
        "range_scans": columnar_stats.get("range_scans", 0),
        "rows": rows,
    }


#: Experiment id -> callable, used by the CLI runner and the benchmarks.
ALL_EXPERIMENTS = {
    "E1": experiment_fig2_news_decomposition,
    "E2": experiment_fig3_cyber_queries,
    "E3": experiment_fig5_news_map,
    "E4": experiment_fig6_ddos_cascade,
    "E5": experiment_fig7_query_plans,
    "E6": experiment_tab1_throughput,
    "E7": experiment_tab2_incremental_vs_repeated,
    "E8": experiment_tab3_selectivity_ablation,
    "E9": experiment_tab4_summarization,
    "E10": experiment_tab5_window_sweep,
    "E11": experiment_multiquery_dispatch,
    "E12": experiment_sharded_scaling,
    "E13": experiment_out_of_order_throughput,
    "E14": experiment_checkpoint_recovery,
    "E15": experiment_multisource_ingest,
    "E16": experiment_adaptive_replan,
    "E17": experiment_sketch_membership,
    "E18": experiment_columnar_hot_path,
}
