"""Probabilistic membership sketches with exactness-preserving fronts.

This package accelerates the engine's hot membership questions -- "does this
edge label bind anything?", "have we reported this match?", "how often does
this label/signature occur?" -- with small, deterministic sketches:

* :class:`CountingBloomFilter` -- fronts the dispatch index; counting cells
  make unregistration exact.
* :class:`CuckooFilter` -- fronts the bounded dedup store; fingerprints
  support exact deletion on eviction.
* :class:`CountMinSketch` -- bounded-memory label/signature counters behind
  ``EngineConfig(sketch_stats=...)``.
* :class:`DedupMemory` -- cuckoo front + bounded exact confirm store with
  deterministic (anchor, seq) eviction.

Every structure hashes with explicit seeds (never builtin ``hash()``), is
approximate only in the false-positive direction, and round-trips its cell
layout byte-exactly through ``state_dict()`` / ``from_state()`` so
checkpoint/restore replays future probes identically.  The differential
suite in ``tests/test_sketch.py`` pins the governing contract: sketch-on
engine runs are byte-for-byte identical to sketch-off runs.
"""

from .bloom import CountingBloomFilter
from .countmin import CountMinSketch
from .cuckoo import CuckooFilter
from .dedup import DedupMemory

__all__ = [
    "CountingBloomFilter",
    "CountMinSketch",
    "CuckooFilter",
    "DedupMemory",
]
