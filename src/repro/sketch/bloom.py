"""Counting Bloom filter with deterministic seeded hashing.

Fronts the :class:`~repro.core.dispatch.DispatchIndex` negative-lookup path:
edge labels that bind no registered leaf are rejected from a few
cache-resident counter cells before any dict probe or vertex-label
resolution happens.  Counting cells (rather than plain bits) make deletion
exact, which :meth:`~repro.core.dispatch.DispatchIndex.unregister` relies on
-- skipping a decrement leaves stale cells behind and turns what should be
front rejections into observable false positives (the mutation meta-tests
pin exactly that signal).

The filter is approximate in one direction only: :meth:`might_contain` can
return ``True`` for an absent key (a false positive, absorbed by the exact
structures behind it) but never ``False`` for a present one.  All indexes
derive from :func:`repro.sketch.hashing.crc_pair`, so cell layout is a pure
function of the add/remove history and round-trips byte-exactly through
:meth:`state_dict` / :meth:`from_state`.
"""

from __future__ import annotations

from zlib import crc32

from typing import Any, Dict, List, Tuple

from .hashing import crc_pair

__all__ = ["CountingBloomFilter"]


def _round_up_pow2(value: int) -> int:
    size = 1
    while size < value:
        size <<= 1
    return size


class CountingBloomFilter:
    """A two-probe counting Bloom filter over ``bytes`` keys.

    Parameters
    ----------
    bits:
        Number of counter cells; rounded up to a power of two so probe
        indexes reduce with a mask.  Degenerate sizes (down to 8) are legal
        and useful in tests to force false-positive storms.
    seed:
        Hash seed; two filters with equal seeds and histories are
        cell-for-cell identical.
    """

    __slots__ = ("_size", "_mask", "_seed", "_cells", "_items")

    def __init__(self, bits: int = 2048, seed: int = 7):
        if bits < 2:
            raise ValueError("CountingBloomFilter bits must be >= 2")
        self._size = _round_up_pow2(int(bits))
        # derived from the persisted bits count, recomputed on from_state
        self._mask = self._size - 1  # repro-lint: ignore[snapshot-coverage]
        self._seed = int(seed)
        self._cells: List[int] = [0] * self._size
        self._items = 0

    def _indexes(self, key: bytes) -> Tuple[int, int]:
        low, high = crc_pair(key, self._seed)
        return low & self._mask, high & self._mask

    def add(self, key: bytes) -> None:
        """Record one occurrence of ``key``."""
        first, second = self._indexes(key)
        cells = self._cells
        cells[first] += 1
        cells[second] += 1
        self._items += 1

    def remove(self, key: bytes) -> None:
        """Remove one previously-added occurrence of ``key``.

        Callers must pair every ``remove`` with an earlier ``add`` of the
        same key; under that contract cells never underflow.  The defensive
        floor keeps a buggy caller from corrupting unrelated keys.
        """
        first, second = self._indexes(key)
        cells = self._cells
        if cells[first] > 0:
            cells[first] -= 1
        if cells[second] > 0:
            cells[second] -= 1
        if self._items > 0:
            self._items -= 1

    def might_contain(self, key: bytes) -> bool:
        """Return ``False`` only when ``key`` was definitely never added.

        This is the per-edge probe on the dispatch negative-lookup path, so
        the CRC split is inlined (one C call, no helper frames) -- it must
        stay cheaper than the endpoint resolutions it short-circuits.  The
        index derivation is the same ``crc_pair`` computation ``add`` and
        ``remove`` go through.
        """
        value = crc32(key, self._seed & 0xFFFFFFFF)
        cells = self._cells
        mask = self._mask
        return cells[value & 0xFFFF & mask] > 0 and cells[(value >> 16) & 0xFFFF & mask] > 0

    def clear(self) -> None:
        """Reset every cell to empty."""
        self._cells = [0] * self._size
        self._items = 0

    @property
    def bits(self) -> int:
        """Number of counter cells."""
        return self._size

    @property
    def seed(self) -> int:
        """Hash seed the cell layout derives from."""
        return self._seed

    def __len__(self) -> int:
        return self._items

    def fill_ratio(self) -> float:
        """Fraction of cells currently non-zero (diagnostic)."""
        occupied = sum(1 for cell in self._cells if cell > 0)
        return occupied / self._size

    def state_dict(self) -> Dict[str, Any]:
        """Serialise the filter; the cell array is captured verbatim."""
        return {
            "bits": self._size,
            "seed": self._seed,
            "items": self._items,
            "cells": list(self._cells),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "CountingBloomFilter":
        """Rebuild a filter that is cell-for-cell identical to the source."""
        filt = cls(bits=int(state["bits"]), seed=int(state["seed"]))
        cells = [int(cell) for cell in state["cells"]]
        if len(cells) != filt._size:
            raise ValueError(
                f"CountingBloomFilter state has {len(cells)} cells, expected {filt._size}"
            )
        filt._cells = cells
        filt._items = int(state["items"])
        return filt
