"""Deterministic seeded hashing shared by every sketch in this package.

All sketches in :mod:`repro.sketch` sit on hot membership paths whose
*observable* behaviour (events, counters, snapshot payloads) must be
byte-for-byte reproducible across processes and across checkpoint/restore.
Python's builtin ``hash()`` is ``PYTHONHASHSEED``-dependent and therefore
banned here (repro-lint enforces this for the whole ``sketch`` scope); the
helpers below derive every index from either

* :func:`zlib.crc32` seeded through its running-value parameter -- one C call
  per probe, cheap enough for the per-edge dispatch front, or
* ``hashlib.blake2b`` keyed with the seed -- slower but with independent
  output slices, used where multiple decorrelated rows are required
  (count-min).

Both are fully specified functions of ``(data, seed)`` with no process
state, so every filter's cell layout replays identically after a restore.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Tuple

__all__ = ["crc_hash", "crc_pair", "blake_row_indexes", "seed_key"]

_MASK32 = 0xFFFFFFFF


def crc_hash(data: bytes, seed: int) -> int:
    """Return a deterministic 32-bit hash of ``data`` under ``seed``."""
    return zlib.crc32(data, seed & _MASK32) & _MASK32


def crc_pair(data: bytes, seed: int) -> Tuple[int, int]:
    """Return two 16-bit values derived from one CRC pass.

    A single CRC is computed and split into its low and high halves.  The
    halves are not independent hash functions, but for the small element
    counts fronting the dispatch index the combined false-positive rate is
    far below the exact-confirm cost they guard, and one C call per probe
    keeps the negative-lookup path cheaper than the work it skips.
    """
    value = zlib.crc32(data, seed & _MASK32) & _MASK32
    return value & 0xFFFF, (value >> 16) & 0xFFFF


def seed_key(seed: int) -> bytes:
    """Render ``seed`` as the 8-byte key blake2b expects."""
    return (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")


def blake_row_indexes(data: bytes, seed: int, rows: int, modulus: int) -> Tuple[int, ...]:
    """Return ``rows`` decorrelated indexes in ``[0, modulus)`` for ``data``.

    One keyed blake2b digest is sliced into independent 4-byte windows, one
    per row -- the standard way to drive a count-min sketch from a single
    wide hash without per-row rehashing.
    """
    digest = hashlib.blake2b(data, digest_size=4 * rows, key=seed_key(seed)).digest()
    return tuple(
        int.from_bytes(digest[4 * row : 4 * row + 4], "big") % modulus for row in range(rows)
    )
