"""Bounded duplicate-suppression memory: sketch front + exact confirm store.

:class:`~repro.core.matcher.ContinuousQueryMatcher` must suppress a match it
has already reported, but remembering every identity forever is an
unbounded-memory liability under adversarial high-cardinality streams.
:class:`DedupMemory` replaces the matcher's grow-only sets with three layers:

1. a :class:`~repro.sketch.cuckoo.CuckooFilter` front that answers the
   common "never seen" case from two bucket probes,
2. an exact confirm store (``key -> (expiry anchor, insertion seq)``) that
   every sketch positive is checked against -- a front false positive can
   therefore never suppress a real emission, and a front miss is impossible
   by construction (no false negatives), so behaviour is byte-identical to
   the unbounded exact sets, and
3. deterministic eviction: horizon expiry drops entries whose earliest edge
   has left the graph retention window (the only mechanisms that can
   re-surface an old identity -- same-trigger re-discovery and replan
   migration replay -- both operate on retained edges only, so an entry
   whose anchor edge is evicted can never be probed again), and budget
   eviction pops the minimal ``(expiry anchor, seq)`` when the store
   exceeds ``budget``.  Both orders are total and replay identically after
   checkpoint/restore.

Keys are canonical strings (the matcher renders identities through the same
sorted-``repr`` canonicalisation its snapshots use), so the store is
directly JSON-serialisable and hash-seed independent.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from ..graph.window import TimeWindow
from .cuckoo import CuckooFilter

__all__ = ["DedupMemory"]

#: Expiry anchor for entries restored from legacy snapshots that predate
#: anchor tracking: ``+inf`` never expires and is evicted last under budget
#: pressure, which is the conservative (never-emit-a-duplicate) choice.
_LEGACY_ANCHOR = float("inf")


class DedupMemory:
    """Bounded exact membership memory fronted by a cuckoo filter.

    Parameters
    ----------
    budget:
        Maximum number of entries in the exact confirm store; ``None`` means
        unbounded (time-horizon expiry still applies).  When the budget is at
        least the number of identities alive inside the retention horizon,
        suppression is exact; the adversarial-memory tests measure the bound.
    front_buckets / front_fingerprint_bits:
        Cuckoo front geometry.  Degenerate settings (2 buckets, 2-bit
        fingerprints) force false-positive storms without ever changing
        observable behaviour -- the differential suite relies on that.
    seed:
        Hash seed for the front.
    """

    __slots__ = (
        "_budget",
        "_front",
        "_entries",
        "_heap",
        "_seq",
        "probes",
        "front_negatives",
        "front_false_positives",
        "confirms",
        "evictions_budget",
        "evictions_horizon",
        "peak_entries",
    )

    def __init__(
        self,
        budget: Optional[int] = None,
        front_buckets: int = 512,
        front_fingerprint_bits: int = 16,
        seed: int = 29,
    ):
        if budget is not None and budget < 1:
            raise ValueError("DedupMemory budget must be a positive integer or None")
        self._budget = budget
        self._front = CuckooFilter(
            buckets=front_buckets,
            fingerprint_bits=front_fingerprint_bits,
            seed=seed,
        )
        # Insertion-ordered: key -> (expiry anchor, insertion seq).
        self._entries: Dict[str, Tuple[float, int]] = {}
        # Min-heap of (anchor, seq, key); seq is unique so keys never compare.
        self._heap: List[Tuple[float, int, str]] = []  # repro-lint: ignore[snapshot-coverage]
        self._seq = 0
        self.probes = 0
        self.front_negatives = 0
        self.front_false_positives = 0
        self.confirms = 0
        self.evictions_budget = 0
        self.evictions_horizon = 0
        self.peak_entries = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def seen(self, key: str) -> bool:
        """Return ``True`` when ``key`` is in the confirm store.

        The cuckoo front screens first; a front *maybe* is always confirmed
        against the exact store, so a false positive costs one dict probe
        and can never cause a false suppression.
        """
        self.probes += 1
        if not self._front.might_contain(key.encode("utf-8")):
            self.front_negatives += 1
            return False
        if key in self._entries:
            self.confirms += 1
            return True
        self.front_false_positives += 1
        return False

    def add(self, key: str, anchor: float) -> None:
        """Record ``key`` with expiry ``anchor`` (its earliest edge time).

        Re-adding a live key is a no-op: the original anchor and insertion
        sequence keep governing its eviction order.
        """
        if key in self._entries:
            return
        self._front.add(key.encode("utf-8"))
        seq = self._seq
        self._seq += 1
        self._entries[key] = (anchor, seq)
        heapq.heappush(self._heap, (anchor, seq, key))
        if self._budget is not None:
            while len(self._entries) > self._budget:
                self._evict_oldest()
        size = len(self._entries)
        if size > self.peak_entries:
            self.peak_entries = size

    def _evict_oldest(self) -> None:
        while self._heap:
            anchor, seq, key = heapq.heappop(self._heap)
            live = self._entries.get(key)
            if live is not None and live[1] == seq:
                del self._entries[key]
                self._front.remove(key.encode("utf-8"))
                self.evictions_budget += 1
                return

    def expire(self, window: TimeWindow, now: float) -> int:
        """Drop entries whose anchor has left ``window`` at time ``now``.

        The caller passes the graph *retention* window and a conservative
        (batch-start) ``now``: an entry survives exactly as long as its
        earliest edge could still be in the retained graph, which is the
        longest horizon over which its identity could ever be re-derived.
        """
        dropped = 0
        while self._heap:
            anchor, seq, key = self._heap[0]
            if not window.is_expired(anchor, now):
                break
            heapq.heappop(self._heap)
            live = self._entries.get(key)
            if live is not None and live[1] == seq:
                del self._entries[key]
                self._front.remove(key.encode("utf-8"))
                self.evictions_horizon += 1
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of keys currently in the exact confirm store (measured)."""
        return len(self._entries)

    @property
    def budget(self) -> Optional[int]:
        """Configured entry budget (``None`` = unbounded)."""
        return self._budget

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Return the counter snapshot surfaced under ``metrics()["sketch"]``."""
        return {
            "budget": self._budget,
            "entries": len(self._entries),
            "peak_entries": self.peak_entries,
            "probes": self.probes,
            "front_negatives": self.front_negatives,
            "front_false_positives": self.front_false_positives,
            "confirms": self.confirms,
            "evictions_budget": self.evictions_budget,
            "evictions_horizon": self.evictions_horizon,
        }

    def clear(self) -> None:
        """Forget everything (counters included)."""
        self._front.clear()
        self._entries = {}
        self._heap = []
        self._seq = 0
        self.probes = 0
        self.front_negatives = 0
        self.front_false_positives = 0
        self.confirms = 0
        self.evictions_budget = 0
        self.evictions_horizon = 0
        self.peak_entries = 0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialise entries (insertion order), front state, and counters."""
        return {
            "budget": self._budget,
            "entries": [
                [key, anchor, seq] for key, (anchor, seq) in self._entries.items()
            ],
            "seq": self._seq,
            "front": self._front.state_dict(),
            "probes": self.probes,
            "front_negatives": self.front_negatives,
            "front_false_positives": self.front_false_positives,
            "confirms": self.confirms,
            "evictions_budget": self.evictions_budget,
            "evictions_horizon": self.evictions_horizon,
            "peak_entries": self.peak_entries,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore from :meth:`state_dict`; eviction order replays exactly."""
        budget = state["budget"]
        self._budget = None if budget is None else int(budget)
        self._entries = {
            str(key): (float(anchor), int(seq)) for key, anchor, seq in state["entries"]
        }
        self._heap = [(anchor, seq, key) for key, (anchor, seq) in self._entries.items()]
        heapq.heapify(self._heap)
        self._seq = int(state["seq"])
        self._front = CuckooFilter.from_state(state["front"])
        self.probes = int(state["probes"])
        self.front_negatives = int(state["front_negatives"])
        self.front_false_positives = int(state["front_false_positives"])
        self.confirms = int(state["confirms"])
        self.evictions_budget = int(state["evictions_budget"])
        self.evictions_horizon = int(state["evictions_horizon"])
        self.peak_entries = int(state["peak_entries"])

    def load_legacy_keys(self, keys: List[str]) -> None:
        """Seed the store from a pre-sketch snapshot's bare key list.

        Legacy snapshots carry no expiry anchors; restored entries get
        ``+inf`` anchors so they never time-expire and are budget-evicted
        last -- a superset of the old unbounded-set behaviour, which keeps
        the no-duplicate-emission contract intact across the upgrade.
        """
        for key in keys:
            self.add(key, _LEGACY_ANCHOR)
